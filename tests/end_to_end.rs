//! Workspace-level integration tests through the `rain` facade: the full
//! pipeline (SQL parsing → provenance execution → complaint encoding →
//! influence ranking → train-rank-fix) on every complaint shape.

use rain::core::prelude::*;
use rain::data::dblp::DblpConfig;
use rain::data::digits::DigitsConfig;
use rain::data::enron::{self, EnronConfig};
use rain::data::flip_labels_where;
use rain::model::{LogisticRegression, SoftmaxRegression};
use rain::sql::{run_query, Database, ExecOptions, Value};

#[test]
fn facade_reexports_work_together() {
    // Touch one item from every crate through the facade.
    let _ = rain::linalg::Matrix::identity(2);
    let _ = rain::ilp::IlpProblem::new();
    let _ = rain::influence::InfluenceConfig::default();
    let _ = rain::core::Method::Holistic;
}

#[test]
fn dblp_value_complaint_end_to_end() {
    let w = DblpConfig::small().generate(1);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 1);
    let mut db = Database::new();
    db.register("pairs", w.query_table());
    let session = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)))
        .with_query(
            QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
                .with_complaint(Complaint::scalar_eq(w.true_match_count() as f64)),
        );
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len().min(30)))
        .unwrap();
    assert!(report.auccr(&truth) > 0.5, "auccr {}", report.auccr(&truth));
}

#[test]
fn enron_like_predicate_complaint_end_to_end() {
    let w = EnronConfig::small().generate(2);
    let mut train = w.train.clone();
    let truth = rain::data::relabel_where(&mut train, |_, x, _| x[enron::HTTP] != 0.0, 1);
    assert!(!truth.is_empty());
    let mut db = Database::new();
    db.register("enron", w.query_table());
    let target = w.true_spam_count_with(enron::HTTP) as f64;
    let session = DebugSession::new(db, train, Box::new(LogisticRegression::new(w.vocab, 0.01)))
        .with_query(
            QuerySpec::new(
                "SELECT COUNT(*) FROM enron WHERE predict(*) = 1 \
                     AND text LIKE '%http%'",
            )
            .with_complaint(Complaint::scalar_eq(target)),
        );
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len()))
        .unwrap();
    assert!(
        *report.recall_curve(&truth).last().unwrap() > 0.4,
        "recall {:?}",
        report.recall_curve(&truth).last()
    );
}

#[test]
fn join_delete_complaints_end_to_end() {
    // Digits join: 1s × 7s should be empty; complain about joined pairs.
    let w = DigitsConfig {
        n_train: 250,
        n_query: 150,
    }
    .generate(3);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.6, |_| 7, 3);
    let mut db = Database::new();
    db.register("left", w.query_table_for(&[1], 40));
    db.register("right", w.query_table_for(&[7], 40));
    let sql = "SELECT * FROM left l, right r WHERE predict(l) = predict(r)";
    // Find the joined pairs under the corrupted model and complain.
    let mut model = SoftmaxRegression::new(
        rain::data::digits::N_PIXELS,
        rain::data::digits::N_CLASSES,
        0.01,
    );
    rain::model::train_lbfgs(&mut model, &train, &Default::default());
    let out = run_query(&db, &model, sql, ExecOptions::debug()).unwrap();
    let mut complaints = Vec::new();
    for prov in &out.row_prov {
        if let rain::sql::BoolProv::PredEq { left, right } = prov {
            let li = out.predvars.info(*left);
            let ri = out.predvars.info(*right);
            complaints.push(Complaint::join_delete(&li.table, li.row, &ri.table, ri.row));
        }
    }
    assert!(
        !complaints.is_empty(),
        "corruption should cause join results"
    );
    let session = DebugSession::new(
        db,
        train,
        Box::new(SoftmaxRegression::new(
            rain::data::digits::N_PIXELS,
            rain::data::digits::N_CLASSES,
            0.01,
        )),
    )
    .with_query(QuerySpec::new(sql).with_complaints(complaints));
    for method in [Method::TwoStep, Method::Holistic] {
        let report = session
            .run(method, &RunConfig::paper(truth.len().min(20)))
            .unwrap();
        assert!(report.failure.is_none(), "{method:?}: {:?}", report.failure);
        assert!(
            *report.recall_curve(&truth).last().unwrap() > 0.0,
            "{method:?} found nothing"
        );
    }
}

#[test]
fn group_by_avg_complaint_end_to_end() {
    use rain::data::adult::{AdultConfig, N_FEATURES};
    let w = AdultConfig::small().generate(4);
    let mut train = w.train.clone();
    let pred = w.corruption_predicate();
    let truth = flip_labels_where(&mut train, |id, x, y| pred(id, x, y), 0.6, |_| 1, 4);
    drop(pred);
    let mut db = Database::new();
    db.register("adult", w.query_table());
    // Target = clean-model output for the male group.
    let mut clean = LogisticRegression::new(N_FEATURES, 0.01);
    rain::model::train_lbfgs(&mut clean, &w.train, &Default::default());
    let q = "SELECT AVG(predict(*)) FROM adult GROUP BY gender";
    let out = run_query(&db, &clean, q, ExecOptions::default()).unwrap();
    let male_row = (0..out.table.n_rows())
        .find(|&r| out.table.value(r, 0) == Value::Str("male".into()))
        .unwrap();
    let target = match out.table.value(male_row, 1) {
        Value::Float(v) => v,
        _ => unreachable!(),
    };
    let session = DebugSession::new(
        db,
        train,
        Box::new(LogisticRegression::new(N_FEATURES, 0.01)),
    )
    .with_query(QuerySpec::new(q).with_complaint(Complaint::value_eq(male_row, 0, target)));
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len()))
        .unwrap();
    assert!(report.failure.is_none());
    // Duplicate-heavy Adult is hard (§6.5); just require progress.
    assert!(report.removed.len() == truth.len());
}

#[test]
fn group_by_predict_query_runs_with_provenance() {
    // Table 1's Q5 shape: GROUP BY over the model prediction itself.
    let w = DigitsConfig {
        n_train: 200,
        n_query: 100,
    }
    .generate(5);
    let mut model = SoftmaxRegression::new(
        rain::data::digits::N_PIXELS,
        rain::data::digits::N_CLASSES,
        0.01,
    );
    rain::model::train_lbfgs(&mut model, &w.train, &Default::default());
    let mut db = Database::new();
    let all: Vec<usize> = (0..10).collect();
    db.register("mnist", w.query_table_for(&all, 100));
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM mnist GROUP BY predict(*)",
        ExecOptions::debug(),
    )
    .unwrap();
    // Groups = predicted classes present; counts sum to the table size.
    let total: i64 = (0..out.table.n_rows())
        .map(|r| match out.table.value(r, 1) {
            Value::Int(v) => v,
            _ => 0,
        })
        .sum();
    assert_eq!(total, 100);
    // Every group's provenance covers all 100 candidate rows.
    for cells in &out.agg_cells {
        match &cells[0] {
            rain::sql::CellProv::Sum(s) => assert_eq!(s.terms.len(), 100),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn multi_query_sessions_combine_gradients() {
    // Two queries over the same corrupted model; combined complaints must
    // not do worse than the weaker single complaint.
    let w = DblpConfig::small().generate(6);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 6);
    let mut db = Database::new();
    db.register("pairs", w.query_table());
    let q1 = QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
        .with_complaint(Complaint::scalar_eq(w.true_match_count() as f64));
    let q2 = QuerySpec::new("SELECT AVG(predict(*)) FROM pairs").with_complaint(
        Complaint::scalar_eq(w.true_match_count() as f64 / w.query.len() as f64),
    );
    let mut session = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)));
    session.queries = vec![q1, q2];
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len().min(30)))
        .unwrap();
    assert!(report.auccr(&truth) > 0.5, "auccr {}", report.auccr(&truth));
}

#[test]
fn misspecified_direction_hurts_but_does_not_crash() {
    let w = DblpConfig::small().generate(7);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 7);
    let mut db = Database::new();
    db.register("pairs", w.query_table());
    // The corrupted model undercounts; a "Wrong" complaint asks for even
    // fewer matches.
    let mut model = LogisticRegression::new(17, 0.01);
    rain::model::train_lbfgs(&mut model, &train, &Default::default());
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM pairs WHERE predict(*) = 1",
        ExecOptions::default(),
    )
    .unwrap();
    let t = match out.scalar().unwrap() {
        Value::Int(v) => v as f64,
        _ => unreachable!(),
    };
    let session = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)))
        .with_query(
            QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
                .with_complaint(Complaint::scalar_eq((t * 0.8).max(0.0))),
        );
    let wrong = session
        .run(Method::Holistic, &RunConfig::paper(truth.len().min(30)))
        .unwrap();
    // A wrong-direction complaint should do clearly worse than chance-at-
    // finding-corruptions (which the Exact variant nails, per other tests).
    assert!(
        wrong.auccr(&truth) < 0.5,
        "wrong-direction auccr {}",
        wrong.auccr(&truth)
    );
}
