//! Quickstart: debug a Query 2.0 count complaint end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We build an entity-resolution workload, inject systematic label
//! corruption (half of the "match" training labels flipped to
//! "non-match"), run the paper's Q1 —
//! `SELECT COUNT(*) FROM dblp WHERE predict(*) = 1` — and complain that
//! the count is wrong. Rain's Holistic debugger then returns the training
//! records whose deletion best addresses the complaint.

use rain::core::prelude::*;
use rain::data::dblp::DblpConfig;
use rain::data::flip_labels_where;
use rain::model::LogisticRegression;
use rain::sql::Database;

fn main() {
    // 1. A workload: training pairs + queried pairs with 17 similarity
    //    features each (≈23% true matches).
    let workload = DblpConfig::default().generate(7);

    // 2. Systematic corruption: flip 50% of the match labels.
    let mut train = workload.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 7);
    println!(
        "corrupted {} of {} training records",
        truth.len(),
        train.len()
    );

    // 3. Register the queried relation and state the complaint: the
    //    count of predicted matches should equal the true match count.
    let mut db = Database::new();
    db.register("dblp", workload.query_table());
    let expected = workload.true_match_count() as f64;

    let session = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)))
        .with_query(
            QuerySpec::new("SELECT COUNT(*) FROM dblp WHERE predict(*) = 1")
                .with_complaint(Complaint::scalar_eq(expected)),
        );

    // 4. Train-rank-fix with the Holistic debugger.
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len()))
        .expect("debugging run");

    // 5. How well did we do? Recall@k against the ground truth.
    let recall = report.recall_curve(&truth);
    println!(
        "removed {} records over {} iterations",
        report.removed.len(),
        report.iterations.len()
    );
    println!("AUCCR          = {:.3}", report.auccr(&truth));
    println!("final recall   = {:.3}", recall.last().unwrap());
    let (t, e, r) = report.mean_timings();
    println!(
        "per-iteration  = {:.2}s train, {:.2}s encode, {:.2}s rank",
        t, e, r
    );
    println!(
        "first removals = {:?}",
        &report.removed[..10.min(report.removed.len())]
    );
}
