//! The serving layer end to end: boot a `rain-serve` server in-process,
//! then drive it over TCP the way an analyst's tooling would — create a
//! session, upload the DBLP entity-resolution workload, query (twice, to
//! see the skeleton cache hit), file a complaint, run the debugger as a
//! background job, poll for the report, and score it against the known
//! ground truth.
//!
//! Run with: `cargo run --release --example serve_dblp`

use rain::data::dblp::{DblpConfig, N_FEATURES};
use rain::data::flip_labels_where;
use rain::serve::json::Json;
use rain::serve::protocol::{dataset_to_json, table_to_json};
use rain::serve::{start, Client, ServerConfig};
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    // ---- The workload: DBLP-style matching with corrupted labels. ----
    // Half of the "match" training labels are flipped to "non-match";
    // the flipped ids are the ground truth the debugger should recover.
    let w = DblpConfig {
        n_train: 600,
        n_query: 300,
        ..Default::default()
    }
    .generate(7);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 7);
    println!(
        "workload: {} train pairs ({} corrupted), {} queried pairs",
        train.len(),
        truth.len(),
        w.query.len()
    );

    // ---- Server + client. ----
    let server = start(ServerConfig::default())?;
    println!("server listening on {}", server.addr());
    let mut client = Client::connect(server.addr())?;

    // ---- Session: a named unit of catalog + model + training set. ----
    client.post_ok(
        "/sessions",
        &Json::obj(vec![
            ("name", Json::str("analyst")),
            (
                "model",
                Json::obj(vec![
                    ("kind", Json::str("logistic")),
                    ("dim", Json::num(N_FEATURES as f64)),
                    ("l2", Json::num(0.01)),
                ]),
            ),
        ]),
    )?;
    client.post_ok(
        "/sessions/analyst/tables",
        &table_to_json("dblp", &w.query_table()),
    )?;
    client.post_ok("/sessions/analyst/train", &dataset_to_json(&train))?;
    println!("session 'analyst': table 'dblp' registered, training set uploaded");

    // ---- Query twice: miss, then skeleton-cache hit. ----
    let sql = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1";
    let q = Json::obj(vec![("sql", Json::str(sql))]);
    for round in 1..=2 {
        let resp = client.post_ok("/sessions/analyst/query", &q)?;
        let rows = resp.get("result").unwrap().get("rows").unwrap();
        println!(
            "query round {round}: {sql}\n  -> rows {rows}, cache {}",
            resp.get("cache").unwrap().as_str().unwrap_or("?"),
        );
    }

    // ---- Complain and debug in the background. ----
    let target = w.true_match_count() as f64;
    client.post_ok(
        "/sessions/analyst/complain",
        &Json::obj(vec![
            ("sql", Json::str(sql)),
            (
                "complaint",
                Json::obj(vec![
                    ("kind", Json::str("value")),
                    ("op", Json::str("eq")),
                    ("target", Json::num(target)),
                ]),
            ),
        ]),
    )?;
    println!("complaint filed: the count should be {target}");
    let run = client.post_ok(
        "/sessions/analyst/debug-run",
        &Json::obj(vec![
            ("method", Json::str("holistic")),
            ("budget", Json::num(truth.len().min(40) as f64)),
        ]),
    )?;
    let job = run.get("job").unwrap().as_i64().unwrap();
    println!("debug run queued as job {job}; polling…");

    let deadline = Instant::now() + Duration::from_secs(600);
    let report = loop {
        let v = client.get_ok(&format!("/jobs/{job}"))?;
        match v.get("status").unwrap().as_str().unwrap() {
            "done" => break v.get("report").unwrap().clone(),
            "failed" => panic!("job failed: {v}"),
            status => {
                assert!(Instant::now() < deadline, "job stuck in '{status}'");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };

    // ---- Score the explanation against the known ground truth. ----
    let removed: Vec<usize> = report
        .get("removed")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_usize().unwrap())
        .collect();
    let hits = removed.iter().filter(|id| truth.contains(id)).count();
    println!(
        "report: {} records removed over {} iterations, {}/{} are true corruptions (recall {:.2})",
        removed.len(),
        report.get("iterations").unwrap().as_arr().unwrap().len(),
        hits,
        removed.len(),
        hits as f64 / truth.len() as f64,
    );

    // ---- Server-wide stats. ----
    let stats = client.get_ok("/stats")?;
    println!(
        "stats: sessions {}, requests {}, cache {}, jobs {}",
        stats.get("sessions").unwrap(),
        stats.get("requests").unwrap(),
        stats.get("cache").unwrap(),
        stats.get("jobs").unwrap(),
    );
    server.shutdown();
    println!("server shut down cleanly");
    Ok(())
}
