//! The entity-resolution use case from §2.1: a classifier used as a join
//! condition produces surprising join results, and the data scientist
//! complains about specific output tuples.
//!
//! ```text
//! cargo run --release --example entity_resolution
//! ```
//!
//! Two business listings are joined on `predict(pair) = 1` ("same
//! entity"). Corrupted training labels make the model link businesses
//! that are obviously different; the scientist points at a handful of
//! wrong join rows, and Rain traces them to the corrupted training pairs.

use rain::core::prelude::*;
use rain::data::dblp::{DblpConfig, N_FEATURES};
use rain::data::flip_labels_where;
use rain::model::{train_lbfgs, LogisticRegression};
use rain::sql::{run_query, Database, ExecOptions, Value};

fn main() {
    // Pair-similarity workload; matches are ~23% of pairs.
    let w = DblpConfig::default().generate(21);

    // Corruption in the opposite direction of the quickstart: 40% of
    // *non-match* pairs are labeled match, so the model over-links.
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 0, 0.4, |_| 1, 21);
    println!("corrupted {} non-match training labels", truth.len());

    let mut db = Database::new();
    db.register("pairs", w.query_table());

    // Train the corrupted model and look at the "same entity" listing.
    let mut model = LogisticRegression::new(N_FEATURES, 0.01);
    train_lbfgs(&mut model, &train, &Default::default());
    let out = run_query(
        &db,
        &model,
        "SELECT id FROM pairs WHERE predict(*) = 1",
        ExecOptions::debug(),
    )
    .expect("query");
    println!(
        "model links {} pairs as the same entity",
        out.table.n_rows()
    );

    // The scientist samples output rows and flags the ones that are
    // obviously wrong (ground truth says non-match).
    let mut complaints = Vec::new();
    for row in 0..out.table.n_rows() {
        let Value::Int(id) = out.table.value(row, 0) else {
            continue;
        };
        if w.query.y(id as usize) == 0 && complaints.len() < 25 {
            complaints.push(Complaint::prediction_is("pairs", id as usize, 0));
        }
    }
    println!(
        "scientist files {} complaints about wrong links",
        complaints.len()
    );

    let session = DebugSession::new(
        db,
        train,
        Box::new(LogisticRegression::new(N_FEATURES, 0.01)),
    )
    .with_query(
        QuerySpec::new("SELECT id FROM pairs WHERE predict(*) = 1").with_complaints(complaints),
    );

    // These are unambiguous labeled mispredictions, so the §5.1 heuristic
    // picks TwoStep.
    let method = Method::Auto.resolve(&session.queries);
    println!("optimizer heuristic selects: {}", method.name());
    let report = session
        .run(Method::Auto, &RunConfig::paper(truth.len().min(200)))
        .expect("debugging run");
    println!(
        "AUCCR {:.3}, final recall {:.3}",
        report.auccr(&truth),
        report.recall_curve(&truth).last().unwrap()
    );
}
