//! The CompanyX churn-cohort scenario from the paper's introduction
//! (Figure 1): a marketing query joins `users` with `logins`, filters the
//! recently-active users, and counts those the model predicts will churn.
//! A website change corrupts the scraped training labels; the customer's
//! monitoring chart drops; Rain traces the complaint back to the corrupted
//! training records.
//!
//! ```text
//! cargo run --release --example churn_cohort
//! ```

use rain::core::prelude::*;
use rain::linalg::{Matrix, RainRng};
use rain::model::{Dataset, LogisticRegression};
use rain::sql::table::{ColType, Column, Schema, Table};
use rain::sql::Database;

/// Synthesize user behaviour features; class 1 = "will churn".
fn users(n: usize, rng: &mut RainRng) -> (Dataset, Vec<bool>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut active = Vec::with_capacity(n);
    for _ in 0..n {
        let churn = rng.bernoulli(0.35);
        // sessions/week, cart adds, support tickets, days since purchase
        let x = vec![
            rng.normal_with(if churn { 1.0 } else { 4.0 }, 1.0),
            rng.normal_with(if churn { 0.5 } else { 2.0 }, 0.7),
            rng.normal_with(if churn { 2.0 } else { 0.5 }, 0.8),
            rng.normal_with(if churn { 40.0 } else { 10.0 }, 8.0) / 10.0,
        ];
        rows.push(x);
        labels.push(churn as usize);
        active.push(rng.bernoulli(0.7));
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Dataset::new(Matrix::from_rows(&refs), labels, 2), active)
}

fn main() {
    let mut rng = RainRng::seed_from_u64(11);
    let (train, _) = users(1500, &mut rng);
    let (query, active) = users(800, &mut rng);

    // "The checkout flow changed": successful transactions stop being
    // logged for engaged users, so retained heavy users get labeled as
    // churners. That's a *systematic* predicate-scoped corruption.
    let mut corrupted = train.clone();
    let truth = rain::data::flip_labels_where(
        &mut corrupted,
        |_, x, y| y == 0 && x[1] > 2.0, // retained users with many cart adds
        0.6,
        |_| 1,
        11,
    );
    println!("website change corrupted {} training labels", truth.len());

    // The warehouse: users (with model features) ⋈ logins.
    let user_table = rain::data::dataset_to_table(&query, Vec::new());
    let logins = Table::from_columns(
        Schema::new(&[("id", ColType::Int), ("active_last_month", ColType::Bool)]),
        vec![
            Column::Int((0..query.len() as i64).collect()),
            Column::Bool(active.clone()),
        ],
    );
    let mut db = Database::new();
    db.register("users", user_table);
    db.register("logins", logins);

    // Ground truth for the monitoring chart: active users who truly churn.
    let expected = (0..query.len())
        .filter(|&i| active[i] && query.y(i) == 1)
        .count() as f64;

    // Figure 1's query, verbatim in our dialect.
    let sql = "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id \
               WHERE l.active_last_month AND predict(u) = 1";

    let session = DebugSession::new(db, corrupted, Box::new(LogisticRegression::new(4, 0.01)))
        .with_query(QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(expected)));

    println!("customer complaint: the churn cohort should have ≈{expected} users");
    for method in [Method::Loss, Method::Holistic] {
        let report = session
            .run(method, &RunConfig::paper(truth.len()))
            .expect("debugging run");
        println!(
            "{:>8}: AUCCR {:.3}, final recall {:.3}",
            method.name(),
            report.auccr(&truth),
            report.recall_curve(&truth).last().unwrap(),
        );
    }
}
