//! Inspecting the query stack: bind a query, compare the naive plan with
//! the optimized plan (`EXPLAIN`-style), and see typed bind errors.
//!
//! ```text
//! cargo run --release --example explain_plan
//! ```

use rain::linalg::Matrix;
use rain::model::{Classifier, LogisticRegression};
use rain::sql::table::{ColType, Column, Schema, Table};
use rain::sql::{
    bind, execute, optimize, optimize_with, parse_select, Database, Engine, ExecOptions, IndexKind,
    OptimizerConfig, QueryPlan,
};

fn main() {
    // users(id, age) with churn features; logins(id, active).
    let users = Table::from_columns(
        Schema::new(&[("id", ColType::Int), ("age", ColType::Int)]),
        vec![
            Column::Int(vec![1, 2, 3, 4]),
            Column::Int(vec![25, 31, 47, 52]),
        ],
    )
    .with_features(Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0], &[-1.0]]));
    let logins = Table::from_columns(
        Schema::new(&[("id", ColType::Int), ("active", ColType::Bool)]),
        vec![
            Column::Int(vec![1, 2, 3, 4]),
            Column::Bool(vec![true, false, true, true]),
        ],
    );
    let mut db = Database::new();
    db.register("users", users);
    db.register("logins", logins);

    let sql = "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id \
               WHERE l.active = true AND u.age > 18 + 12 AND predict(u) = 1";
    println!("query:\n  {sql}\n");

    let stmt = parse_select(sql).expect("parses");
    let bound = bind(&stmt, &db).expect("binds");

    println!(
        "naive plan:\n{}",
        QueryPlan::naive(bound.clone(), &db).explain(&db)
    );
    let plan = optimize(bound, &db);
    println!("optimized plan:\n{}", plan.explain(&db));

    // The engine-annotated explain additionally shows the join strategy
    // and which predicate kernels each pushed-down filter compiles to.
    println!(
        "optimized plan on the vectorized engine:\n{}",
        plan.explain_engine(&db, Engine::Vectorized)
    );

    // Execute the optimized plan with a churn model.
    let mut model = LogisticRegression::new(1, 0.0);
    model.set_params(&[50.0, 0.0]);
    let out = execute(&db, &model, &plan, ExecOptions::debug()).expect("runs");
    println!("result:\n{}", out.table.to_tsv());
    println!("prediction variables captured: {}", out.predvars.len());

    // ---- The cost-based layer: join ordering + index access paths. ----
    // A star-shaped catalog written in its worst FROM order: two fact
    // tables first (no predicate links them — a cross product) and the
    // small filtered dimension last.
    let mut star = Database::new();
    let n_fact = 2_000i64;
    star.register(
        "facts_a",
        Table::from_columns(
            Schema::new(&[("k", ColType::Int)]),
            vec![Column::Int((0..n_fact).map(|i| i % 50).collect())],
        ),
    );
    star.register(
        "facts_b",
        Table::from_columns(
            Schema::new(&[("k", ColType::Int)]),
            vec![Column::Int((0..n_fact).map(|i| (i * 7) % 50).collect())],
        ),
    );
    star.register(
        "dims",
        Table::from_columns(
            Schema::new(&[("k", ColType::Int), ("grp", ColType::Int)]),
            vec![
                Column::Int((0..50).collect()),
                Column::Int((0..50).map(|i| i % 5).collect()),
            ],
        ),
    );
    star.create_index("dims", "k", IndexKind::Hash).unwrap();
    star.create_index("dims", "grp", IndexKind::Hash).unwrap();

    let star_sql = "SELECT COUNT(*) FROM facts_a a, facts_b b, dims d \
                    WHERE a.k = d.k AND b.k = d.k AND d.grp = 0";
    println!("\nstar query:\n  {star_sql}\n");
    let bound = bind(&parse_select(star_sql).unwrap(), &star).unwrap();
    let from_order = optimize_with(
        bound.clone(),
        &star,
        &OptimizerConfig {
            join_reorder: false,
            index_paths: false,
            ..Default::default()
        },
    );
    println!(
        "FROM-order plan (cost-based phases off):\n{}",
        from_order.explain_engine(&star, Engine::Vectorized)
    );
    let chosen = optimize(bound, &star);
    println!(
        "cost-based plan:\n{}",
        chosen.explain_engine(&star, Engine::Vectorized)
    );

    // The binder rejects bad queries with typed errors instead of panics.
    for bad in [
        "SELECT * FROM missing",
        "SELECT * FROM users u, logins l WHERE id = 1",
        "SELECT COUNT(*) FROM users WHERE age LIKE '%x%'",
        "SELECT COUNT(*) FROM logins WHERE predict(*) = 1",
    ] {
        let err = bind(&parse_select(bad).expect("parses"), &db).unwrap_err();
        println!("bind {bad:60} -> {err}");
    }
}
