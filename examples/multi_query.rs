//! Multi-query debugging (§6.5): two different dashboards — one grouped by
//! gender, one by age decade — both look wrong. Each complaint alone is
//! ambiguous about which training records are bad; together they
//! triangulate the corrupted subspace.
//!
//! ```text
//! cargo run --release --example multi_query
//! ```

use rain::core::prelude::*;
use rain::data::adult::{AdultConfig, N_FEATURES};
use rain::data::flip_labels_where;
use rain::model::{train_lbfgs, LogisticRegression};
use rain::sql::{run_query, Database, ExecOptions, Value};

const Q_GENDER: &str = "SELECT AVG(predict(*)) FROM adult GROUP BY gender";
const Q_AGE: &str = "SELECT AVG(predict(*)) FROM adult GROUP BY agedecade";

fn main() {
    let w = AdultConfig::default().generate(55);
    let mut train = w.train.clone();
    // The systematic error: half of the low-income males in their 40s get
    // labeled high-income.
    let pred = w.corruption_predicate();
    let truth = flip_labels_where(&mut train, |id, x, y| pred(id, x, y), 0.5, |_| 1, 55);
    drop(pred);
    println!(
        "corrupted {} training records (low-income ∧ male ∧ 40s)",
        truth.len()
    );

    let mut db = Database::new();
    db.register("adult", w.query_table());

    // "Last month's dashboards": what the clean model would report.
    let mut clean = LogisticRegression::new(N_FEATURES, 0.01);
    train_lbfgs(&mut clean, &w.train, &Default::default());
    let gender_out = run_query(&db, &clean, Q_GENDER, ExecOptions::default()).unwrap();
    let age_out = run_query(&db, &clean, Q_AGE, ExecOptions::default()).unwrap();
    let male_row = (0..gender_out.table.n_rows())
        .find(|&r| gender_out.table.value(r, 0) == Value::Str("male".into()))
        .expect("male group");
    let forties_row = (0..age_out.table.n_rows())
        .find(|&r| age_out.table.value(r, 0) == Value::Int(40))
        .expect("40s group");
    let male_target = match gender_out.table.value(male_row, 1) {
        Value::Float(v) => v,
        _ => unreachable!(),
    };
    let forties_target = match age_out.table.value(forties_row, 1) {
        Value::Float(v) => v,
        _ => unreachable!(),
    };
    println!("expected male avg {male_target:.3}, expected 40s avg {forties_target:.3}");

    let base = |queries: Vec<QuerySpec>| {
        let mut s = DebugSession::new(
            db.clone(),
            train.clone(),
            Box::new(LogisticRegression::new(N_FEATURES, 0.01)),
        );
        s.queries = queries;
        s
    };
    let gender_q =
        QuerySpec::new(Q_GENDER).with_complaint(Complaint::value_eq(male_row, 0, male_target));
    let age_q =
        QuerySpec::new(Q_AGE).with_complaint(Complaint::value_eq(forties_row, 0, forties_target));

    for (label, queries) in [
        ("gender complaint only", vec![gender_q.clone()]),
        ("age complaint only", vec![age_q.clone()]),
        ("both complaints", vec![gender_q, age_q]),
    ] {
        let report = base(queries)
            .run(Method::Holistic, &RunConfig::paper(truth.len()))
            .expect("run");
        println!(
            "{label:>22}: AUCCR {:.3}, final recall {:.3}",
            report.auccr(&truth),
            report.recall_curve(&truth).last().unwrap()
        );
    }
}
