//! The appendix-B optical-character-recognition example: a multi-digit
//! number is read by summing `10^position · predict(image)` over a table
//! of segmented digit images. A wrong number on the dashboard becomes a
//! value complaint over this weighted aggregate, and the relaxation of
//! appendix B (`Σᵢ 10^i Σⱼ j·pᵢⱼ`) traces it back to corrupted training
//! digits.
//!
//! ```text
//! cargo run --release --example ocr_reader
//! ```

use rain::core::prelude::*;
use rain::data::digits::{render_digit, DigitsConfig, N_CLASSES, N_PIXELS};
use rain::data::flip_labels_where;
use rain::linalg::{Matrix, RainRng};
use rain::model::{train_lbfgs, SoftmaxRegression};
use rain::sql::table::{ColType, Column, Schema, Table};
use rain::sql::{run_query, Database, ExecOptions};

fn main() {
    // Train a digit classifier on corrupted data: 60% of the training 1s
    // are labeled 7 (a labeling-function bug).
    let w = DigitsConfig::default().generate(88);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.6, |_| 7, 88);
    println!("corrupted {} training digits (1 -> 7)", truth.len());

    // The number on the scanned document: 9 4 1 (so position weights are
    // 100, 10, 1 from left to right).
    let digits_on_page = [9usize, 4, 1];
    let mut rng = RainRng::seed_from_u64(5);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &d in &digits_on_page {
        rows.push(render_digit(d, &mut rng));
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let table = Table::from_columns(
        Schema::new(&[("position", ColType::Int), ("weight", ColType::Int)]),
        vec![Column::Int(vec![2, 1, 0]), Column::Int(vec![100, 10, 1])],
    )
    .with_features(Matrix::from_rows(&refs));
    let mut db = Database::new();
    db.register("scan", table);

    // Appendix B's query: the numeric value of the whole number.
    let sql = "SELECT SUM(weight * predict(*)) AS number FROM scan";
    let mut model = SoftmaxRegression::new(N_PIXELS, N_CLASSES, 0.01);
    train_lbfgs(&mut model, &train, &Default::default());
    let out = run_query(&db, &model, sql, ExecOptions::default()).expect("query");
    println!(
        "document says 941; the corrupted model reads: {}",
        out.scalar().unwrap()
    );

    // Complain that the number should be 941 and debug.
    let session = DebugSession::new(
        db,
        train,
        Box::new(SoftmaxRegression::new(N_PIXELS, N_CLASSES, 0.01)),
    )
    .with_query(QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(941.0)));
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len()))
        .expect("debugging run");
    println!(
        "Holistic: AUCCR {:.3}, final recall {:.3}",
        report.auccr(&truth),
        report.recall_curve(&truth).last().unwrap()
    );
}
