//! The image-analysis use case from §2.1: a programmatic labeling
//! function mislabels digit images, and a join that should be empty
//! suddenly produces results. The complaint "this count should be 0" is
//! enough to find the mislabeled training images.
//!
//! ```text
//! cargo run --release --example image_join
//! ```

use rain::core::prelude::*;
use rain::data::digits::DigitsConfig;
use rain::data::flip_labels_where;
use rain::model::{train_lbfgs, SoftmaxRegression};
use rain::sql::{run_query, Database, ExecOptions};

fn main() {
    // A digit workload standing in for the hot-dog classifier: images of
    // digits 1–5 in one relation, 6–9 and 0 in the other, so an equi-join
    // on the predicted class should return nothing.
    let w = DigitsConfig::default().generate(33);

    // The "labeling function" bug: 50% of training 1s are labeled 7.
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 7, 33);
    println!(
        "labeling function corrupted {} images (1 -> 7)",
        truth.len()
    );

    let mut db = Database::new();
    db.register("left", w.query_table_for(&[1, 2, 3, 4, 5], 250));
    db.register("right", w.query_table_for(&[6, 7, 8, 9, 0], 250));

    let sql = "SELECT COUNT(*) FROM left l, right r WHERE predict(l) = predict(r)";

    // How bad is it before debugging?
    let mut model = SoftmaxRegression::new(
        rain::data::digits::N_PIXELS,
        rain::data::digits::N_CLASSES,
        0.01,
    );
    train_lbfgs(&mut model, &train, &Default::default());
    let out = run_query(&db, &model, sql, ExecOptions::default()).expect("query");
    println!(
        "join that should be empty returns: {} (user complains: should be 0)",
        out.scalar().unwrap()
    );

    let session = DebugSession::new(
        db,
        train,
        Box::new(SoftmaxRegression::new(
            rain::data::digits::N_PIXELS,
            rain::data::digits::N_CLASSES,
            0.01,
        )),
    )
    .with_query(QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(0.0)));

    for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
        let report = session
            .run(method, &RunConfig::paper(truth.len()))
            .expect("debugging run");
        let note = report.failure.clone().unwrap_or_default();
        println!(
            "{:>8}: AUCCR {:.3}, final recall {:.3} {}",
            method.name(),
            report.auccr(&truth),
            report.recall_curve(&truth).last().unwrap(),
            note
        );
    }
}
