//! # Rain: complaint-driven training data debugging for Query 2.0
//!
//! This crate is the facade of a from-scratch Rust reproduction of
//! *"Complaint-driven Training Data Debugging for Query 2.0"* (Wu, Flokas,
//! Wu & Wang, SIGMOD 2020). It re-exports the workspace crates:
//!
//! - [`linalg`] — dense linear-algebra kernels and seeded RNG helpers.
//! - [`model`] — differentiable classifiers (logistic / softmax / MLP),
//!   analytic gradients and Hessian-vector products, L-BFGS training.
//! - [`influence`] — influence-function engine (conjugate-gradient
//!   `H⁻¹v`, record scoring).
//! - [`sql`] — the Query 2.0 substrate: storage with a table catalog, a
//!   four-stage query stack (SQL parser → binder with typed `BindError`s →
//!   rule-based optimizer → SPJA executor with pushed-down scans), and
//!   provenance polynomials with their differentiable relaxation.
//! - [`ilp`] — simplex + branch-and-bound 0/1 ILP solver and the Tseitin
//!   linearization used by TwoStep.
//! - [`data`] — synthetic workload generators mirroring the paper's four
//!   datasets, with systematic label-corruption injection.
//! - [`core`] — the Rain system itself: complaints, TwoStep, Holistic,
//!   baselines, and the train–rank–fix driver.
//! - [`storage`] — durability: an append-only commitlog of catalog
//!   mutations with checksummed records, periodic full-state snapshots,
//!   and boot-time recovery that reconstructs sessions bit-identically.
//! - [`serve`] — the long-lived serving layer: session pool, per-session
//!   skeleton caches, a job runner for concurrent debug runs, and a
//!   hand-rolled JSON-over-HTTP wire protocol (std only).
//!
//! ## Quickstart
//!
//! ```
//! use rain::core::prelude::*;
//! use rain::data::dblp::DblpConfig;
//! use rain::data::flip_labels_where;
//! use rain::model::LogisticRegression;
//! use rain::sql::Database;
//!
//! // Generate an entity-resolution workload with systematic label noise:
//! // half of the "match" training labels flipped to "non-match".
//! let workload = DblpConfig::small().generate(7);
//! let mut train = workload.train.clone();
//! let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 7);
//!
//! // Ask Rain: "the COUNT of predicted matches should equal the clean count".
//! let mut db = Database::new();
//! db.register("pairs", workload.query_table());
//! let session = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)))
//!     .with_query(
//!         QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
//!             .with_complaint(Complaint::scalar_eq(workload.true_match_count() as f64)),
//!     );
//! let report = session
//!     .run(Method::Holistic, &RunConfig::paper(truth.len().min(20)))
//!     .unwrap();
//! let recall = report.recall_curve(&truth);
//! assert!(*recall.last().unwrap() > 0.0);
//! ```

pub use rain_core as core;
pub use rain_data as data;
pub use rain_ilp as ilp;
pub use rain_influence as influence;
pub use rain_linalg as linalg;
pub use rain_model as model;
pub use rain_serve as serve;
pub use rain_sql as sql;
pub use rain_storage as storage;
