//! Differential tests for the physical-plan layer: secondary indexes and
//! the access paths built over them must be *pure optimizations*.
//!
//! For every randomized case, the same query is planned twice — against a
//! catalog with indexes (so the optimizer can pick `index-scan` and
//! `index-nested-loop` paths) and against an index-free catalog (pure
//! sequential scans and hash joins) — and both plans run on both engines
//! at several thread counts. All executions must be **bit-identical**:
//! same rows in the same order, same provenance polynomials, same
//! prediction-variable registry. Indexes may change *how* tuples are
//! found, never *which* tuples in *which* order.
//!
//! Also covers stats staleness: appends bump the table's `(gen, delta)`
//! version, statistics recompute, indexes rebuild, estimates move, and
//! the skeleton cache re-prepares (re-costing the plan) on next checkout.

use rain_linalg::{Matrix, RainRng};
use rain_model::{Classifier, LogisticRegression};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, execute, optimize, parse_select, Database, Engine, ExecOptions, IndexKind, QueryCache,
    QueryOutput, Value,
};

const CASES: u64 = 96;

/// Deterministic step model: class 1 iff the (single) feature is positive.
fn step_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[50.0, 0.0]);
    m
}

fn feats(rng: &mut RainRng, n: usize) -> Matrix {
    Matrix::from_rows(
        &(0..n)
            .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
            .collect::<Vec<_>>()
            .iter()
            .map(|r| &r[..])
            .collect::<Vec<_>>(),
    )
}

/// Two featured tables with join-compatible columns. `nullable` punches
/// NULL holes into t2 so index builds must skip NULL keys exactly like
/// the hash-join build does.
fn random_db(rng: &mut RainRng, nullable: bool) -> Database {
    let n1 = 4 + rng.below(40);
    let n2 = 3 + rng.below(30);
    let words = ["http", "deal", "spam", ""];
    let mut db = Database::new();
    let t1 = Table::from_columns(
        Schema::new(&[
            ("x", ColType::Int),
            ("f", ColType::Float),
            ("s", ColType::Str),
        ]),
        vec![
            Column::Int((0..n1).map(|_| rng.int_range(0, 8)).collect()),
            Column::Float((0..n1).map(|_| rng.uniform_range(-2.0, 4.0)).collect()),
            Column::Str(
                (0..n1)
                    .map(|_| words[rng.below(words.len())].to_string())
                    .collect(),
            ),
        ],
    )
    .with_features(feats(rng, n1));
    db.register("t1", t1);
    let mut t2 = Table::empty(Schema::new(&[("k", ColType::Int), ("y", ColType::Float)]));
    for _ in 0..n2 {
        let k = if nullable && rng.bernoulli(0.15) {
            Value::Null
        } else {
            Value::Int(rng.int_range(0, 6))
        };
        t2.push_row(vec![k, Value::Float(rng.uniform_range(-1.0, 5.0))], None);
    }
    db.register("t2", t2.with_features(feats(rng, n2)));
    db
}

/// Index every join/filter column both ways the planner can use.
fn index_all(db: &mut Database) {
    for (table, column, kind) in [
        ("t1", "x", IndexKind::Hash),
        ("t1", "x", IndexKind::Sorted),
        ("t1", "f", IndexKind::Sorted),
        ("t1", "s", IndexKind::Hash),
        ("t2", "k", IndexKind::Hash),
        ("t2", "y", IndexKind::Sorted),
    ] {
        db.create_index(table, column, kind).unwrap();
    }
}

/// Queries whose shapes can engage every index-backed path: hash index
/// scans (equality), sorted index scans (ranges), index-nested-loop
/// joins (equi join with a filter-free indexed inner side), and plain
/// shapes the planner must leave alone.
fn random_query(rng: &mut RainRng) -> String {
    match rng.below(12) {
        0 => format!(
            "SELECT COUNT(*) FROM t1 a WHERE a.x = {}",
            rng.int_range(0, 9)
        ),
        1 => format!("SELECT * FROM t1 a WHERE a.x = {}", rng.int_range(0, 9)),
        2 => format!(
            "SELECT COUNT(*) FROM t1 a WHERE a.f < {}",
            rng.int_range(-1, 4)
        ),
        3 => format!(
            "SELECT SUM(x) FROM t1 a WHERE a.f >= {} AND a.x <= {}",
            rng.int_range(-1, 3),
            rng.int_range(2, 7)
        ),
        4 => format!(
            "SELECT COUNT(*) FROM t1 a WHERE a.s = '{}'",
            ["http", "deal", "nope"][rng.below(3)]
        ),
        5 => "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k".to_string(),
        6 => format!(
            "SELECT COUNT(*), SUM(predict(b)) FROM t1 a, t2 b \
             WHERE a.x = b.k AND a.f > {}",
            rng.int_range(-2, 2)
        ),
        7 => format!(
            "SELECT x, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND a.x >= {} GROUP BY x",
            rng.int_range(0, 4)
        ),
        8 => format!(
            "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND b.y < {}",
            rng.int_range(0, 4)
        ),
        9 => format!(
            "SELECT COUNT(*) FROM t1 a WHERE a.x = {} AND predict(a) = 1",
            rng.int_range(0, 7)
        ),
        10 => "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.f = b.y".to_string(),
        _ => format!(
            "SELECT COUNT(*) FROM t1 a WHERE a.x > {} OR a.f < {}",
            rng.int_range(3, 7),
            rng.int_range(-1, 1)
        ),
    }
}

/// Bit-identity: rows, schema, provenance, prediction variables.
fn assert_identical(label: &str, a: &QueryOutput, b: &QueryOutput) {
    assert_eq!(a.table.to_tsv(), b.table.to_tsv(), "{label}: rows differ");
    assert_eq!(a.n_key_cols, b.n_key_cols, "{label}: n_key_cols");
    assert_eq!(a.row_prov, b.row_prov, "{label}: row provenance");
    assert_eq!(a.agg_cells, b.agg_cells, "{label}: aggregate provenance");
    assert_eq!(
        a.predvars.infos(),
        b.predvars.infos(),
        "{label}: prediction-variable sources"
    );
    assert_eq!(
        a.predvars.preds(),
        b.predvars.preds(),
        "{label}: hard predictions"
    );
}

/// Which physical features a plan actually uses — the sweep asserts both
/// index paths engage across the seeds, so the property is not vacuous.
fn physical_coverage(plan: &rain_sql::QueryPlan, cov: &mut (bool, bool)) {
    use rain_sql::{AccessPath, JoinAlgo};
    cov.0 |= plan
        .access
        .iter()
        .any(|a| matches!(a, AccessPath::IndexScan { .. }));
    cov.1 |= plan
        .join_algos
        .iter()
        .any(|j| matches!(j, JoinAlgo::IndexNestedLoop { .. }));
}

/// The headline property: index-backed plans are bit-identical to
/// index-free plans, on both engines, at 1/2/8 threads.
fn run_case(seed: u64, nullable: bool, model: &dyn Classifier, cov: &mut (bool, bool)) {
    let mut rng = RainRng::seed_from_u64(0x1DEC ^ seed);
    let plain_db = random_db(&mut rng, nullable);
    let mut rng2 = RainRng::seed_from_u64(0x1DEC ^ seed);
    let mut indexed_db = random_db(&mut rng2, nullable);
    index_all(&mut indexed_db);

    let sql = random_query(&mut rng);
    let plan_of = |db: &Database| {
        let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        optimize(
            bind(&stmt, db).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}")),
            db,
        )
    };
    let plain_plan = plan_of(&plain_db);
    let indexed_plan = plan_of(&indexed_db);
    physical_coverage(&indexed_plan, cov);

    for debug in [false, true] {
        let opts = ExecOptions::with_debug(debug);
        // Index-free baseline: the tuple oracle over the plain catalog.
        let baseline = execute(&plain_db, model, &plain_plan, opts.on(Engine::Tuple))
            .unwrap_or_else(|e| panic!("seed {seed} `{sql}` [debug={debug}] baseline: {e}"));
        // The tuple oracle ignores physical annotations entirely — run it
        // over the indexed plan too, as a same-catalog cross-check.
        let tuple_ix = execute(&indexed_db, model, &indexed_plan, opts.on(Engine::Tuple))
            .unwrap_or_else(|e| panic!("seed {seed} `{sql}` [debug={debug}] tuple/ix: {e}"));
        assert_identical(
            &format!("seed {seed} `{sql}` [debug={debug}] tuple ix-vs-plain"),
            &baseline,
            &tuple_ix,
        );
        for threads in [1, 2, 8] {
            for (tag, db, plan) in [
                ("plain", &plain_db, &plain_plan),
                ("indexed", &indexed_db, &indexed_plan),
            ] {
                let label =
                    format!("seed {seed} `{sql}` [debug={debug}, threads={threads}, {tag}]");
                let vexec = execute(
                    db,
                    model,
                    plan,
                    opts.on(Engine::Vectorized).with_threads(threads),
                )
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_identical(&label, &baseline, &vexec);
            }
        }
    }
}

#[test]
fn indexed_plans_match_unindexed_plans_bit_for_bit() {
    let model = step_model();
    let mut cov = (false, false);
    for seed in 0..CASES {
        run_case(seed, false, &model, &mut cov);
    }
    assert!(cov.0, "no seed produced an index-scan plan");
    assert!(cov.1, "no seed produced an index-nested-loop plan");
}

/// NULL join keys never appear in an index, exactly as they never enter
/// a hash-join build — punched-out t2 keys must not change any output.
#[test]
fn indexed_plans_match_on_nullable_tables() {
    let model = step_model();
    let mut cov = (false, false);
    for seed in 0..CASES / 2 {
        run_case(seed, true, &model, &mut cov);
    }
    assert!(cov.0, "no nullable seed produced an index-scan plan");
    assert!(cov.1, "no nullable seed produced an index-nested-loop plan");
}

/// Appends keep the whole physical layer honest: statistics recompute
/// under the bumped `(gen, delta)` version, indexes rebuild over the new
/// rows, and the optimizer's estimates move with the data.
#[test]
fn appends_refresh_stats_indexes_and_estimates() {
    let mut db = Database::new();
    let t = Table::from_columns(
        Schema::new(&[("x", ColType::Int), ("f", ColType::Float)]),
        vec![
            Column::Int((0..50).map(|i| i % 5).collect()),
            Column::Float((0..50).map(|i| i as f64).collect()),
        ],
    );
    db.register("t", t);
    db.create_index("t", "x", IndexKind::Hash).unwrap();
    let id = db.resolve("t").unwrap();

    let before = db.stats_of(id).clone();
    assert_eq!(before.row_count, 50);
    assert_eq!(before.distinct(0), 5);
    assert_eq!(before.columns[1].max, Some(49.0));

    let plan_est = |db: &Database| {
        let stmt = parse_select("SELECT COUNT(*) FROM t WHERE x = 0").unwrap();
        let plan = optimize(bind(&stmt, db).unwrap(), db);
        plan.est
            .clone()
            .expect("cost phase must annotate estimates")
    };
    let est_before = plan_est(&db);

    // Append 150 rows with 10 fresh key values and a larger f range.
    let rows: Vec<Vec<Value>> = (0..150)
        .map(|i| vec![Value::Int(5 + i % 10), Value::Float(100.0 + i as f64)])
        .collect();
    let (_, version) = db.append_to("t", rows, None).unwrap();
    assert_eq!(version.delta, 1, "append must bump the delta version");

    let after = db.stats_of(id);
    assert_eq!(after.row_count, 200);
    assert_eq!(after.distinct(0), 15);
    assert_eq!(after.columns[1].max, Some(249.0));
    assert_eq!(after.version, version, "stats must carry the new version");
    let ix = db.index_on(id, 0, IndexKind::Hash).unwrap();
    assert_eq!(ix.len(), 200, "append must rebuild the index");

    let est_after = plan_est(&db);
    assert!(
        est_after.scan_rows[0] > est_before.scan_rows[0],
        "estimates must re-cost from fresh stats: {est_before:?} vs {est_after:?}"
    );
}

/// The skeleton cache re-prepares (and therefore re-optimizes with fresh
/// statistics) when a cached query's table moves: an append invalidates,
/// the re-prepared skeleton serves the new rows, and a further checkout
/// hits.
#[test]
fn query_cache_reprepares_and_recosts_after_append() {
    let model = step_model();
    let mut db = Database::new();
    let t = Table::from_columns(
        Schema::new(&[("x", ColType::Int)]),
        vec![Column::Int((0..20).map(|i| i % 4).collect())],
    )
    .with_features(feats(&mut RainRng::seed_from_u64(7), 20));
    db.register("t", t);
    db.create_index("t", "x", IndexKind::Hash).unwrap();

    let mut cache = QueryCache::new(Engine::Vectorized);
    let sql = "SELECT COUNT(*) FROM t WHERE x = 1";
    let count = |out: &QueryOutput| out.table.to_tsv().lines().nth(1).unwrap().to_string();

    let (out, event) = cache.execute(&db, &model, sql).unwrap();
    assert_eq!(event.as_str(), "miss");
    assert_eq!(count(&out), "5");

    db.append_to(
        "t",
        (0..8).map(|_| vec![Value::Int(1)]).collect(),
        Some((0..8).map(|_| vec![1.0]).collect()),
    )
    .unwrap();
    let (out, event) = cache.execute(&db, &model, sql).unwrap();
    assert_eq!(
        event.as_str(),
        "invalidated",
        "stale stats must force a re-prepare"
    );
    assert_eq!(count(&out), "13", "re-prepared plan must see appended rows");

    let (_, event) = cache.execute(&db, &model, sql).unwrap();
    assert_eq!(event.as_str(), "hit");
}
