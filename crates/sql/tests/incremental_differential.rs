//! Differential tests for incremental re-execution: a skeleton prepared
//! under one set of model parameters and refreshed under another must be
//! **bit-identical** to a fresh full debug-mode execution with the new
//! parameters — same result rows, same schema, same `ScalarResult`, same
//! prediction-variable registry (ids, sources, hard predictions), and
//! structurally equal provenance polynomials — on both engines, for
//! skeletons prepared on either engine.
//!
//! Workloads are seeded-random SPJA queries (joins, `predict = c` /
//! `predict != c` atoms, `predict(a) = predict(b)` join predicates,
//! grouped and predict-keyed aggregates, projections), plus nullable
//! tables, stale-skeleton detection, and model-architecture mismatches.

use rain_linalg::{Matrix, RainRng};
use rain_model::{Classifier, LogisticRegression};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, execute, optimize, parse_select, prepare, Database, Engine, ExecOptions, QueryOutput,
    ScoreMemo, StalePolicy,
};

const CASES: u64 = 128;

/// A deterministic step model: class 1 iff feature > 0.
fn step_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[50.0, 0.0]);
    m
}

/// The step model with the decision flipped: class 1 iff feature < 0.
/// Refreshing with it flips *every* prediction the skeleton was prepared
/// under, which is the adversarial case for cached concrete state.
fn flipped_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[-50.0, 0.0]);
    m
}

/// A seeded random model: soft, non-degenerate decision boundary.
fn random_model(rng: &mut RainRng) -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[rng.uniform_range(-3.0, 3.0), rng.uniform_range(-1.0, 1.0)]);
    m
}

/// t1(x int, f float, s str, flag bool) and t2(y int, k int, s2 str),
/// both featured so `predict()` binds.
fn random_db(rng: &mut RainRng) -> Database {
    let n1 = 4 + rng.below(30);
    let n2 = 3 + rng.below(20);
    let words = ["http", "deal", "spam", "note", "xyz", ""];
    let feats = |rng: &mut RainRng, n: usize| {
        Matrix::from_rows(
            &(0..n)
                .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
                .collect::<Vec<_>>()
                .iter()
                .map(|r| &r[..])
                .collect::<Vec<_>>(),
        )
    };
    let mut db = Database::new();
    let t1 = Table::from_columns(
        Schema::new(&[
            ("x", ColType::Int),
            ("f", ColType::Float),
            ("s", ColType::Str),
            ("flag", ColType::Bool),
        ]),
        vec![
            Column::Int((0..n1).map(|_| rng.int_range(0, 6)).collect()),
            Column::Float((0..n1).map(|_| rng.uniform_range(-2.0, 4.0)).collect()),
            Column::Str(
                (0..n1)
                    .map(|_| words[rng.below(words.len())].to_string())
                    .collect(),
            ),
            Column::Bool((0..n1).map(|_| rng.bernoulli(0.5)).collect()),
        ],
    )
    .with_features(feats(rng, n1));
    db.register("t1", t1);
    let t2 = Table::from_columns(
        Schema::new(&[
            ("y", ColType::Int),
            ("k", ColType::Int),
            ("s2", ColType::Str),
        ]),
        vec![
            Column::Int((0..n2).map(|_| rng.int_range(0, 6)).collect()),
            Column::Int((0..n2).map(|_| rng.int_range(0, 4)).collect()),
            Column::Str(
                (0..n2)
                    .map(|_| words[rng.below(words.len())].to_string())
                    .collect(),
            ),
        ],
    )
    .with_features(feats(rng, n2));
    db.register("t2", t2);
    db
}

/// A random single-relation predicate over alias `a` (t1) or `b` (t2),
/// with `predict = c` / `predict != c` atoms well represented.
fn atom(rng: &mut RainRng, alias: &str, is_t1: bool) -> String {
    if is_t1 {
        match rng.below(8) {
            0 => format!("{alias}.x > {}", rng.int_range(0, 5)),
            1 => format!("{alias}.f < {}", rng.int_range(-1, 4)),
            2 => format!("{alias}.s LIKE '%{}%'", ["ht", "ea", "o"][rng.below(3)]),
            3 => format!("{alias}.flag"),
            4 | 5 => format!("predict({alias}) = {}", rng.below(2)),
            _ => format!("predict({alias}) != {}", rng.below(2)),
        }
    } else {
        match rng.below(5) {
            0 => format!("{alias}.y >= {}", rng.int_range(0, 5)),
            1 => format!("{alias}.k < {}", rng.int_range(1, 4)),
            2 | 3 => format!("predict({alias}) = {}", rng.below(2)),
            _ => format!("{alias}.y != {alias}.k"),
        }
    }
}

/// Build a random SPJA query over the generated schema.
fn random_query(rng: &mut RainRng) -> String {
    let two_rels = rng.bernoulli(0.6);
    let from = if two_rels { "t1 a, t2 b" } else { "t1 a" };

    let mut terms = Vec::new();
    if two_rels {
        match rng.below(8) {
            0..=3 => terms.push("a.x = b.k".to_string()),
            4 => terms.push("a.s = b.s2".to_string()),
            5 => terms.push("a.x + 0 = b.k".to_string()), // expression key
            _ => {}                                       // cross join
        }
    }
    for _ in 0..1 + rng.below(3) {
        let t = match rng.below(6) {
            0 => {
                let l = atom(rng, "a", true);
                let r = if two_rels {
                    atom(rng, "b", false)
                } else {
                    atom(rng, "a", true)
                };
                format!("({l} OR {r})")
            }
            1 => ["1 = 1", "2 > 3"][rng.below(2)].to_string(),
            2 if two_rels => atom(rng, "b", false),
            3 if two_rels => "predict(a) = predict(b)".to_string(),
            _ => atom(rng, "a", true),
        };
        terms.push(t);
    }
    let where_sql = format!(" WHERE {}", terms.join(" AND "));

    match rng.below(10) {
        0 => format!("SELECT COUNT(*) FROM {from}{where_sql}"),
        1 => format!("SELECT SUM(x) FROM {from}{where_sql}"),
        2 => format!("SELECT AVG(x), COUNT(*) FROM {from}{where_sql}"),
        3 => format!("SELECT SUM(predict(a)) FROM {from}{where_sql}"),
        4 => format!("SELECT COUNT(*) FROM {from}{where_sql} GROUP BY predict(a)"),
        5 => format!("SELECT flag, SUM(f) FROM {from}{where_sql} GROUP BY flag"),
        6 => format!("SELECT x, AVG(f) FROM {from}{where_sql} GROUP BY x"),
        7 => format!("SELECT x, s FROM {from}{where_sql}"),
        8 => format!("SELECT predict(a), x FROM {from}{where_sql}"),
        _ => format!("SELECT * FROM {from}{where_sql}"),
    }
}

/// Assert two outputs are bit-identical: rows, schema, scalar shape,
/// provenance, and the prediction-variable registry.
fn assert_identical(label: &str, want: &QueryOutput, got: &QueryOutput) {
    assert_eq!(
        want.table.to_tsv(),
        got.table.to_tsv(),
        "{label}: result rows differ"
    );
    let (ws, gs) = (want.table.schema(), got.table.schema());
    assert_eq!(ws.len(), gs.len(), "{label}: schema arity differs");
    for (a, b) in ws.iter().zip(gs.iter()) {
        assert_eq!(a, b, "{label}: schema column differs");
    }
    assert_eq!(want.scalar(), got.scalar(), "{label}: ScalarResult differs");
    assert_eq!(want.n_key_cols, got.n_key_cols, "{label}: n_key_cols");
    assert_eq!(want.row_prov, got.row_prov, "{label}: row provenance");
    assert_eq!(
        want.agg_cells, got.agg_cells,
        "{label}: aggregate provenance"
    );
    assert_eq!(
        want.predvars.infos(),
        got.predvars.infos(),
        "{label}: prediction-variable sources"
    );
    assert_eq!(
        want.predvars.preds(),
        got.predvars.preds(),
        "{label}: hard predictions"
    );
}

/// Prepare on both engines under `prep_model`, refresh under each model
/// in `refresh_models`, and pin every refresh against fresh full
/// executions on both engines.
fn check_case(label: &str, db: &Database, sql: &str, refresh_models: &[&dyn Classifier]) {
    let prep_model = step_model();
    let stmt = parse_select(sql).unwrap_or_else(|e| panic!("{label} `{sql}`: {e}"));
    let bound = bind(&stmt, db).unwrap_or_else(|e| panic!("{label} `{sql}`: {e}"));
    let plan = optimize(bound, db);
    let prepared = [Engine::Tuple, Engine::Vectorized].map(|engine| {
        prepare(db, &prep_model, &plan, engine)
            .unwrap_or_else(|e| panic!("{label} `{sql}` prepare[{engine:?}]: {e}"))
    });
    for model in refresh_models {
        let fulls = [Engine::Tuple, Engine::Vectorized].map(|engine| {
            execute(db, *model, &plan, ExecOptions::debug().on(engine))
                .unwrap_or_else(|e| panic!("{label} `{sql}` full[{engine:?}]: {e}"))
        });
        for (pq, prep_engine) in prepared.iter().zip(["tuple", "vexec"]) {
            for threads in [1, 2, 8] {
                let refreshed = pq
                    .refresh_threaded(db, *model, threads)
                    .unwrap_or_else(|e| {
                        panic!("{label} `{sql}` refresh[{prep_engine}, threads={threads}]: {e}")
                    });
                for (full, full_engine) in fulls.iter().zip(["tuple", "vexec"]) {
                    assert_identical(
                        &format!(
                            "{label} `{sql}` \
                             [prep={prep_engine}, full={full_engine}, threads={threads}]"
                        ),
                        full,
                        &refreshed,
                    );
                }
            }
        }
    }
}

/// The headline property: refresh-after-parameter-change is bit-identical
/// to fresh full execution, across seeded SPJA workloads, engines, and
/// three parameter updates (same params, all predictions flipped, random
/// soft boundary).
#[test]
fn refresh_matches_full_reexecution_bit_for_bit() {
    let same = step_model();
    let flipped = flipped_model();
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(0x14C ^ seed);
        let db = random_db(&mut rng);
        let sql = random_query(&mut rng);
        let random = random_model(&mut rng);
        check_case(
            &format!("seed {seed}"),
            &db,
            &sql,
            &[&same, &flipped, &random],
        );
    }
}

/// Nullable base tables exercise the fallback scan/join/group paths and
/// NULL-skipping aggregate terms; the skeleton must reproduce them too.
#[test]
fn refresh_matches_full_reexecution_on_nullable_tables() {
    let flipped = flipped_model();
    for seed in 0..CASES / 4 {
        let mut rng = RainRng::seed_from_u64(0xA11 ^ seed);
        let mut db = random_db(&mut rng);
        // Rebuild t2 with NULL holes punched into every column.
        let t2 = db.table("t2").unwrap().clone();
        let mut nullable = Table::empty(t2.schema().clone());
        for r in 0..t2.n_rows() {
            let row: Vec<_> = (0..t2.schema().len())
                .map(|c| {
                    if rng.bernoulli(0.2) {
                        rain_sql::Value::Null
                    } else {
                        t2.value(r, c)
                    }
                })
                .collect();
            nullable.push_row(row, None);
        }
        let nullable = nullable.with_features(t2.features().unwrap().clone());
        db.register("t2", nullable);

        let sql = [
            "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND predict(a) = 1",
            "SELECT y, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k GROUP BY y",
            "SELECT SUM(y), AVG(y) FROM t2 b WHERE b.k < 3 AND predict(b) = 0",
            "SELECT COUNT(*) FROM t2 b WHERE predict(b) = 1 GROUP BY predict(b)",
        ][rng.below(4)];
        check_case(&format!("seed {seed} [nullable]"), &db, sql, &[&flipped]);
    }
}

/// Large-input refresh sweep: enough prediction variables that the
/// batched-inference fan-out actually shards across workers (small cases
/// stay under its row threshold), and a table big enough that capture
/// runs the morsel-parallel scan/probe paths. Skeletons captured under
/// different worker budgets and refreshed under `threads ∈ {1, 2, 8}`
/// must all be bit-identical to full re-execution.
#[test]
fn threaded_refresh_and_capture_are_bit_identical_on_large_inputs() {
    let mut rng = RainRng::seed_from_u64(0xBEEF);
    let n = 9_000usize;
    let feats = Matrix::from_rows(
        &(0..n)
            .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
            .collect::<Vec<_>>()
            .iter()
            .map(|r| &r[..])
            .collect::<Vec<_>>(),
    );
    let t1 = Table::from_columns(
        Schema::new(&[("x", ColType::Int), ("f", ColType::Float)]),
        vec![
            Column::Int((0..n).map(|i| (i % 3001) as i64).collect()),
            Column::Float((0..n).map(|_| rng.uniform_range(-2.0, 4.0)).collect()),
        ],
    )
    .with_features(feats);
    let mut db = Database::new();
    db.register("t1", t1.clone());
    db.register("t2", t1);

    let flipped = flipped_model();
    for sql in [
        "SELECT COUNT(*) FROM t1 a WHERE a.f < 3.0 AND predict(a) = 1",
        "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.x AND a.f < 2.0 AND predict(a) = 1",
    ] {
        let stmt = parse_select(sql).unwrap();
        let plan = optimize(bind(&stmt, &db).unwrap(), &db);
        let full = execute(
            &db,
            &flipped,
            &plan,
            ExecOptions::debug().on(Engine::Vectorized),
        )
        .unwrap();
        for capture_threads in [1, 8] {
            let prepared = rain_sql::prepare_with(
                &db,
                &step_model(),
                &plan,
                Engine::Vectorized,
                capture_threads,
            )
            .unwrap();
            assert!(prepared.stats().n_vars >= 1024, "fan-out must shard");
            for refresh_threads in [1, 2, 8] {
                let out = prepared
                    .refresh_threaded(&db, &flipped, refresh_threads)
                    .unwrap();
                assert_identical(
                    &format!("`{sql}` [capture={capture_threads}, refresh={refresh_threads}]"),
                    &full,
                    &out,
                );
            }
        }
    }
}

/// The prediction memo is invisible to results: a refresh trajectory
/// through several model generations (retrain steps) with a `ScoreMemo`
/// is bit-identical to the same trajectory without one, at every thread
/// count — and the hit/miss counters account for exactly the rows the
/// memo served vs. inferred. Within one generation every row after the
/// first refresh is a hit; advancing the generation drops the cache and
/// the next refresh re-infers.
#[test]
fn memoized_refresh_matches_unmemoized_across_generations() {
    let same = step_model();
    let flipped = flipped_model();
    for seed in 0..CASES / 4 {
        let mut rng = RainRng::seed_from_u64(0x3E30 ^ seed);
        let db = random_db(&mut rng);
        let sql = random_query(&mut rng);
        let random = random_model(&mut rng);
        let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        let plan = optimize(bind(&stmt, &db).unwrap(), &db);
        let prepared = prepare(&db, &same, &plan, Engine::Vectorized)
            .unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        let n_vars = prepared.stats().n_vars as u64;

        let mut memo = ScoreMemo::new();
        let mut expected_rows = 0u64;
        let models: [&dyn Classifier; 3] = [&same, &flipped, &random];
        for (generation, model) in models.iter().enumerate() {
            memo.advance(generation as u64 + 1);
            let mut misses_after_first = None;
            for pass in 0..2 {
                for threads in [1, 2, 8] {
                    let label = format!(
                        "seed {seed} `{sql}` [gen={generation}, pass={pass}, threads={threads}]"
                    );
                    let plain = prepared
                        .refresh_threaded(&db, *model, threads)
                        .unwrap_or_else(|e| panic!("{label} plain: {e}"));
                    let memod = prepared
                        .refresh_memo_threaded(&db, *model, threads, &mut memo)
                        .unwrap_or_else(|e| panic!("{label} memo: {e}"));
                    assert_identical(&label, &plain, &memod);
                    expected_rows += n_vars;
                    match misses_after_first {
                        None => misses_after_first = Some(memo.misses()),
                        // Later refreshes under the same generation must
                        // be pure cache hits.
                        Some(m) => assert_eq!(
                            memo.misses(),
                            m,
                            "{label}: within-generation refresh re-inferred"
                        ),
                    }
                }
            }
        }
        // Every feature row of every memoized refresh was either served
        // or inferred — and with 1-D ±1 features at most two distinct
        // rows exist per generation, so misses stay tiny while hits
        // absorb the rest.
        assert_eq!(
            memo.hits() + memo.misses(),
            expected_rows,
            "seed {seed} `{sql}`: counters must account for every row"
        );
        assert!(
            memo.misses() <= 2 * models.len() as u64,
            "seed {seed} `{sql}`: at most two distinct feature rows per generation"
        );
    }
}

/// A fully model-free query prepares and refreshes too: the output is
/// independent of whichever model refreshes it.
#[test]
fn model_free_skeleton_refreshes_identically_under_any_model() {
    let mut rng = RainRng::seed_from_u64(7);
    let db = random_db(&mut rng);
    let sql = "SELECT x, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND a.flag GROUP BY x";
    let stmt = parse_select(sql).unwrap();
    let plan = optimize(bind(&stmt, &db).unwrap(), &db);
    assert!(plan.model_deps().is_model_free());
    let prepared = prepare(&db, &step_model(), &plan, Engine::Vectorized).unwrap();
    assert!(prepared.stats().model_free);
    assert_eq!(prepared.stats().n_vars, 0);
    let a = prepared.refresh(&db, &step_model()).unwrap();
    let b = prepared.refresh(&db, &flipped_model()).unwrap();
    assert_identical("model-free", &a, &b);
}

/// Re-registering a queried table invalidates the skeleton: refresh must
/// fail loudly instead of replaying stale row identities.
#[test]
fn refresh_rejects_stale_skeletons() {
    let mut rng = RainRng::seed_from_u64(11);
    let mut db = random_db(&mut rng);
    let sql = "SELECT COUNT(*) FROM t1 a WHERE predict(a) = 1";
    let stmt = parse_select(sql).unwrap();
    let plan = optimize(bind(&stmt, &db).unwrap(), &db);
    let prepared = prepare(&db, &step_model(), &plan, Engine::Vectorized).unwrap();
    prepared
        .refresh(&db, &step_model())
        .expect("fresh skeleton");
    // Same data, re-registered: the version bump alone must invalidate.
    let t1 = db.table("t1").unwrap().clone();
    db.register("t1", t1);
    let err = prepared.refresh(&db, &step_model()).unwrap_err();
    assert!(err.to_string().contains("stale"), "unexpected error: {err}");
}

/// A model with a different architecture (class count) cannot refresh a
/// skeleton whose formulas were fanned out over the old class set.
#[test]
fn refresh_rejects_model_architecture_changes() {
    let mut rng = RainRng::seed_from_u64(13);
    let db = random_db(&mut rng);
    let sql = "SELECT COUNT(*) FROM t1 a WHERE predict(a) = 1 GROUP BY predict(a)";
    let stmt = parse_select(sql).unwrap();
    let plan = optimize(bind(&stmt, &db).unwrap(), &db);
    let prepared = prepare(&db, &step_model(), &plan, Engine::Tuple).unwrap();
    let tri = rain_model::SoftmaxRegression::new(1, 3, 0.0);
    let err = prepared.refresh(&db, &tri).unwrap_err();
    assert!(
        err.to_string().contains("classes"),
        "unexpected error: {err}"
    );
}

/// Under `StalePolicy::Rebuild` a stale skeleton transparently
/// re-prepares from its cached plan and matches a fresh execution —
/// including when the re-registered table has entirely different rows.
#[test]
fn refresh_with_rebuild_recovers_from_reregistration() {
    let mut rng = RainRng::seed_from_u64(19);
    let mut db = random_db(&mut rng);
    let sql = "SELECT COUNT(*) FROM t1 a WHERE predict(a) = 1";
    let stmt = parse_select(sql).unwrap();
    let plan = optimize(bind(&stmt, &db).unwrap(), &db);
    let mut prepared = prepare(&db, &step_model(), &plan, Engine::Vectorized).unwrap();
    let (_, rebuilt) = prepared
        .refresh_with(&db, &step_model(), StalePolicy::Rebuild)
        .unwrap();
    assert!(!rebuilt, "fresh skeleton must not rebuild");
    assert!(!prepared.is_stale(&db));

    // Replace t1 with a same-schema table of different rows.
    let other = random_db(&mut rng);
    db.register("t1", other.table("t1").unwrap().clone());
    assert!(prepared.is_stale(&db));
    let (out, rebuilt) = prepared
        .refresh_with(&db, &step_model(), StalePolicy::Rebuild)
        .unwrap();
    assert!(rebuilt, "stale skeleton must transparently re-prepare");
    let fresh = execute(&db, &step_model(), &plan, ExecOptions::debug()).unwrap();
    assert_identical("rebuild", &fresh, &out);

    // The rebuilt skeleton is warm again...
    let (_, again) = prepared
        .refresh_with(&db, &step_model(), StalePolicy::Rebuild)
        .unwrap();
    assert!(!again);
    // ...and the explicit-error path is still available as an option.
    let t1 = db.table("t1").unwrap().clone();
    db.register("t1", t1);
    assert!(prepared
        .refresh_with(&db, &step_model(), StalePolicy::Error)
        .is_err());
}

/// Rebuild also recovers from a model-architecture change: the class
/// fan-out of predict-keyed groups is re-captured for the new class set.
#[test]
fn refresh_with_rebuild_recaptures_for_new_architecture() {
    let mut rng = RainRng::seed_from_u64(23);
    let db = random_db(&mut rng);
    let sql = "SELECT COUNT(*) FROM t1 a GROUP BY predict(a)";
    let stmt = parse_select(sql).unwrap();
    let plan = optimize(bind(&stmt, &db).unwrap(), &db);
    let mut prepared = prepare(&db, &step_model(), &plan, Engine::Tuple).unwrap();
    let tri = rain_model::SoftmaxRegression::new(1, 3, 0.0);
    let (out, rebuilt) = prepared
        .refresh_with(&db, &tri, StalePolicy::Rebuild)
        .unwrap();
    assert!(rebuilt);
    let fresh = execute(&db, &tri, &plan, ExecOptions::debug().on(Engine::Tuple)).unwrap();
    assert_identical("arch rebuild", &fresh, &out);
}

/// The prepare-time stats reflect the pipeline: scan selections per
/// relation, one join step, and the model-dependence classification.
#[test]
fn skeleton_stats_describe_the_pipeline() {
    let mut rng = RainRng::seed_from_u64(17);
    let db = random_db(&mut rng);
    let sql = "SELECT COUNT(*) FROM t1 a, t2 b \
               WHERE a.x = b.k AND a.x > 1 AND predict(a) = 1";
    let stmt = parse_select(sql).unwrap();
    let plan = optimize(bind(&stmt, &db).unwrap(), &db);
    for engine in [Engine::Tuple, Engine::Vectorized] {
        let prepared = prepare(&db, &step_model(), &plan, engine).unwrap();
        let stats = prepared.stats();
        assert_eq!(stats.engine, engine);
        assert_eq!(stats.scan_rows.len(), 2, "one scan per relation");
        assert!(
            stats.scan_rows[0] <= db.table("t1").unwrap().n_rows(),
            "scan filter must not widen the selection"
        );
        assert_eq!(stats.join_steps.len(), 1, "one join step");
        assert!(
            stats.join_steps[0].0.contains("hash"),
            "equi-join is hashed"
        );
        assert_eq!(stats.candidate_tuples, stats.join_steps[0].1);
        assert!(!stats.model_free);
        assert_eq!(
            stats.n_vars,
            prepared.refresh(&db, &step_model()).unwrap().predvars.len()
        );
    }
}
