//! Property tests for the provenance relaxation, the SQL printer, and the
//! plan optimizer.
//!
//! The workspace carries no external dependencies, so instead of a
//! proptest-style framework these properties are checked over many
//! seeded-random cases drawn from [`RainRng`]; the failing seed is named in
//! the assertion message, making every failure reproducible.

use rain_linalg::{Matrix, RainRng};
use rain_model::{Classifier, LogisticRegression};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, execute, optimize, parse_select, printer, AggSum, AggTerm, BoolProv, CellProv, Database,
    ExecOptions, IndexKind, OptimizerConfig, PredVarRegistry, Probs, QueryOutput, QueryPlan,
};
use std::collections::HashMap;

const CASES: u64 = 96;

/// Random boolean formula over `n_vars` binary prediction variables.
fn formula(rng: &mut RainRng, n_vars: u32, depth: u32) -> BoolProv {
    if depth == 0 || rng.bernoulli(0.3) {
        return match rng.below(3) {
            0 => BoolProv::Const(rng.bernoulli(0.5)),
            1 => BoolProv::PredIs {
                var: rng.below(n_vars as usize) as u32,
                class: rng.below(2),
            },
            _ => BoolProv::PredIs {
                var: rng.below(n_vars as usize) as u32,
                class: rng.below(2),
            },
        };
    }
    match rng.below(3) {
        0 => formula(rng, n_vars, depth - 1).negate(),
        1 => {
            let n = 1 + rng.below(2);
            BoolProv::and((0..n).map(|_| formula(rng, n_vars, depth - 1)).collect())
        }
        _ => {
            let n = 1 + rng.below(2);
            BoolProv::or((0..n).map(|_| formula(rng, n_vars, depth - 1)).collect())
        }
    }
}

/// Random well-formed binary class probabilities for `n_vars` variables.
fn probs(rng: &mut RainRng, n_vars: usize) -> Probs {
    Probs {
        p: (0..n_vars)
            .map(|_| {
                let p = rng.uniform_range(0.01, 0.99);
                vec![1.0 - p, p]
            })
            .collect(),
    }
}

/// At degenerate (0/1) probabilities the relaxation must agree with the
/// discrete semantics for ANY formula — relaxation is exact on the boolean
/// lattice corners.
#[test]
fn relaxation_exact_at_corners() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let f = formula(&mut rng, 4, 4);
        let bits = rng.below(16) as u32;
        let preds: Vec<usize> = (0..4).map(|i| ((bits >> i) & 1) as usize).collect();
        let p = Probs {
            p: preds
                .iter()
                .map(|&c| {
                    let mut row = vec![0.0, 0.0];
                    row[c] = 1.0;
                    row
                })
                .collect(),
        };
        assert_eq!(
            f.eval_discrete(&preds) as u8 as f64,
            f.eval_relaxed(&p),
            "seed {seed}"
        );
    }
}

/// The relaxed value of any formula is a probability-like quantity.
#[test]
fn relaxation_stays_in_unit_interval() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let f = formula(&mut rng, 4, 4);
        let p = probs(&mut rng, 4);
        let v = f.eval_relaxed(&p);
        assert!((-1e-9..=1.0 + 1e-9).contains(&v), "seed {seed}: v = {v}");
    }
}

/// Reverse-mode gradients of arbitrary formulas match central finite
/// differences.
#[test]
fn formula_gradients_match_fd() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let cell = CellProv::Bool(formula(&mut rng, 3, 3));
        let p = probs(&mut rng, 3);
        let g = cell.grad(&p);
        let eps = 1e-6;
        for var in 0..3u32 {
            for class in 0..2usize {
                let mut up = p.clone();
                up.p[var as usize][class] += eps;
                let mut dn = p.clone();
                dn.p[var as usize][class] -= eps;
                let fd = (cell.eval_relaxed(&up) - cell.eval_relaxed(&dn)) / (2.0 * eps);
                let got = g.g.get(&var).map_or(0.0, |v| v[class]);
                assert!(
                    (fd - got).abs() < 1e-5,
                    "seed {seed} var {var} class {class}: fd {fd} vs {got}"
                );
            }
        }
    }
}

/// For COUNT cells whose rows are single independent atoms, the relaxation
/// IS the exact expectation (read-once case of [29]): Σ E[1(pred_i = c_i)]
/// by linearity.
#[test]
fn count_relaxation_is_exact_expectation() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let n = 1 + rng.below(5);
        let classes: Vec<usize> = (0..n).map(|_| rng.below(2)).collect();
        let p = probs(&mut rng, 6);
        let terms: Vec<(BoolProv, AggTerm)> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    BoolProv::PredIs {
                        var: i as u32,
                        class: c,
                    },
                    AggTerm::One,
                )
            })
            .collect();
        let cell = CellProv::Sum(std::sync::Arc::new(AggSum { terms }));
        let expect: f64 = classes.iter().enumerate().map(|(i, &c)| p.p[i][c]).sum();
        assert!(
            (cell.eval_relaxed(&p) - expect).abs() < 1e-12,
            "seed {seed}"
        );
    }
}

/// De Morgan holds exactly under the relaxation for disjoint-variable
/// operands: NOT(a AND b) == NOT a OR NOT b, because both sides reduce to
/// `1 - x·y` when a, b are independent.
#[test]
fn de_morgan_on_distinct_vars() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let p = probs(&mut rng, 2);
        let a = BoolProv::PredIs { var: 0, class: 1 };
        let b = BoolProv::PredIs { var: 1, class: 1 };
        let lhs = BoolProv::and(vec![a.clone(), b.clone()]).negate();
        let rhs = BoolProv::or(vec![a.negate(), b.negate()]);
        assert!(
            (lhs.eval_relaxed(&p) - rhs.eval_relaxed(&p)).abs() < 1e-12,
            "seed {seed}"
        );
    }
}

/// Printing then reparsing a parsed statement is a fixpoint for a family of
/// generated filter queries.
#[test]
fn printer_roundtrip_generated_filters() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let col = char::from(b'a' + rng.below(3) as u8);
        let v = rng.int_range(-100, 100);
        let like_len = rng.below(5);
        let like: String = (0..like_len)
            .map(|_| char::from(b'a' + rng.below(26) as u8))
            .collect();
        let conj = rng.bernoulli(0.5);
        let op = if v % 2 == 0 { "=" } else { "<=" };
        let sql = if conj {
            format!("SELECT COUNT(*) FROM t WHERE {col} {op} {v} AND name LIKE '%{like}%'")
        } else {
            format!("SELECT COUNT(*) FROM t WHERE {col} {op} {v} OR predict(*) = 1")
        };
        let ast1 = parse_select(&sql).unwrap();
        let printed = printer::stmt_to_sql(&ast1);
        let ast2 = parse_select(&printed).unwrap();
        assert_eq!(printed, printer::stmt_to_sql(&ast2), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Optimizer equivalence: on randomized SPJA queries, the optimized plan
// must return exactly the rows of the naive plan, and debug-mode
// provenance must be *semantically* identical — every captured formula
// evaluates the same under every assignment of the prediction variables
// (variable ids are canonicalized through each registry's (table, row)
// info, since pushdown legitimately skips variables for tuples that were
// concretely pruned earlier).
// ---------------------------------------------------------------------

/// t1(x int, s str, flag bool) and t2(y int, k int), both with 1-D
/// features so `predict()` works against a binary step model. Both
/// tables carry secondary indexes (hash and sorted) so optimized plans
/// exercise index scans and index-nested-loop joins against the
/// index-free naive plan.
fn spja_db(rng: &mut RainRng) -> Database {
    let n1 = 5 + rng.below(3);
    let n2 = 4 + rng.below(3);
    let words = ["http", "deal", "spam", "note", "xyz"];
    let mut db = Database::new();
    let t1 = Table::from_columns(
        Schema::new(&[
            ("x", ColType::Int),
            ("s", ColType::Str),
            ("flag", ColType::Bool),
        ]),
        vec![
            Column::Int((0..n1).map(|_| rng.int_range(0, 6)).collect()),
            Column::Str(
                (0..n1)
                    .map(|_| words[rng.below(words.len())].to_string())
                    .collect(),
            ),
            Column::Bool((0..n1).map(|_| rng.bernoulli(0.5)).collect()),
        ],
    )
    .with_features(Matrix::from_rows(
        &(0..n1)
            .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
            .collect::<Vec<_>>()
            .iter()
            .map(|r| &r[..])
            .collect::<Vec<_>>(),
    ));
    db.register("t1", t1);
    let t2 = Table::from_columns(
        Schema::new(&[("y", ColType::Int), ("k", ColType::Int)]),
        vec![
            Column::Int((0..n2).map(|_| rng.int_range(0, 6)).collect()),
            Column::Int((0..n2).map(|_| rng.int_range(0, 4)).collect()),
        ],
    )
    .with_features(Matrix::from_rows(
        &(0..n2)
            .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
            .collect::<Vec<_>>()
            .iter()
            .map(|r| &r[..])
            .collect::<Vec<_>>(),
    ));
    db.register("t2", t2);
    for (table, column, kind) in [
        ("t1", "x", IndexKind::Hash),
        ("t1", "x", IndexKind::Sorted),
        ("t1", "s", IndexKind::Hash),
        ("t1", "flag", IndexKind::Hash),
        ("t2", "k", IndexKind::Hash),
        ("t2", "y", IndexKind::Sorted),
    ] {
        db.create_index(table, column, kind).unwrap();
    }
    db
}

/// A random single-relation predicate over alias `a` of t1 / t2.
fn atom(rng: &mut RainRng, alias: &str, is_t1: bool) -> String {
    if is_t1 {
        match rng.below(6) {
            0 => format!("{alias}.x > {}", rng.int_range(0, 5)),
            1 => format!("{alias}.x + 1 <= {}", rng.int_range(1, 7)),
            2 => format!("{alias}.s LIKE '%{}%'", ["ht", "ea", "o"][rng.below(3)]),
            3 => format!("{alias}.flag = true"),
            4 => format!("predict({alias}) = {}", rng.below(2)),
            _ => format!("predict({alias}) != {}", rng.below(2)),
        }
    } else {
        match rng.below(4) {
            0 => format!("{alias}.y >= {}", rng.int_range(0, 5)),
            1 => format!("{alias}.k < {}", rng.int_range(1, 4)),
            2 => format!("predict({alias}) = {}", rng.below(2)),
            _ => format!("{alias}.y * 2 > {}", rng.int_range(0, 9)),
        }
    }
}

/// Build a random SPJA query over the generated schema.
fn random_query(rng: &mut RainRng) -> String {
    let two_rels = rng.bernoulli(0.5);
    let from = if two_rels { "t1 a, t2 b" } else { "t1 a" };

    // WHERE: 1..=3 terms, each an atom, a disjunction, or a constant.
    let mut terms = Vec::new();
    if two_rels && rng.bernoulli(0.7) {
        terms.push("a.x = b.k".to_string()); // equi-join most of the time
    }
    for _ in 0..1 + rng.below(2) {
        let t = match rng.below(5) {
            0 => {
                let l = atom(rng, "a", true);
                let r = if two_rels {
                    atom(rng, "b", false)
                } else {
                    atom(rng, "a", true)
                };
                format!("({l} OR {r})")
            }
            1 => ["1 = 1", "1 + 1 = 2", "2 > 3"][rng.below(3)].to_string(),
            2 if two_rels => atom(rng, "b", false),
            3 if two_rels => "predict(a) = predict(b)".to_string(),
            _ => atom(rng, "a", true),
        };
        terms.push(t);
    }
    let where_sql = format!(" WHERE {}", terms.join(" AND "));

    let select = match rng.below(6) {
        0 => "COUNT(*)".to_string(),
        1 => "SUM(x)".to_string(),
        2 => "AVG(x)".to_string(),
        3 => "SUM(predict(a))".to_string(),
        4 => return format!("SELECT COUNT(*) FROM {from}{where_sql} GROUP BY predict(a)"),
        _ => return format!("SELECT x, s FROM {from}{where_sql}"),
    };
    format!("SELECT {select} FROM {from}{where_sql}")
}

/// A deterministic step model: class 1 iff feature > 0.
fn step_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[50.0, 0.0]);
    m
}

/// Canonical assignment of classes per underlying `(table, row)`; each
/// registry's preds vector is derived from it so formulas from different
/// plans evaluate under the same world.
fn preds_for(reg: &PredVarRegistry, assign: &HashMap<(String, usize), usize>) -> Vec<usize> {
    reg.infos()
        .iter()
        .map(|i| assign[&(i.table.clone(), i.row)])
        .collect()
}

fn probs_for(reg: &PredVarRegistry, assign: &HashMap<(String, usize), f64>) -> Probs {
    Probs {
        p: reg
            .infos()
            .iter()
            .map(|i| {
                let p = assign[&(i.table.clone(), i.row)];
                vec![1.0 - p, p]
            })
            .collect(),
    }
}

/// All `(table, row)` keys either registry knows.
fn var_keys(a: &PredVarRegistry, b: &PredVarRegistry) -> Vec<(String, usize)> {
    let mut keys: Vec<(String, usize)> = a
        .infos()
        .iter()
        .chain(b.infos())
        .map(|i| (i.table.clone(), i.row))
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// A sampled world: one discrete class assignment and one relaxed
/// probability assignment per underlying `(table, row)`.
type World = (
    HashMap<(String, usize), usize>,
    HashMap<(String, usize), f64>,
);

/// One output row in canonical form: its printed values plus its
/// provenance behavior under each sampled world — discrete bits (row
/// formulas) or `1e-6`-rounded values (aggregate cells) as the exact
/// part, raw relaxed values compared with a tolerance after alignment.
struct RowRecord {
    line: String,
    discrete: Vec<i64>,
    relaxed: Vec<f64>,
}

/// Canonicalize an output into sorted [`RowRecord`]s. Sorting by
/// `(line, discrete)` aligns rows across plans whose join orders — and
/// thus emission orders — legitimately differ.
fn row_records(out: &QueryOutput, worlds: &[World]) -> Vec<RowRecord> {
    let views: Vec<(Vec<usize>, Probs)> = worlds
        .iter()
        .map(|(classes, ps)| {
            (
                preds_for(&out.predvars, classes),
                probs_for(&out.predvars, ps),
            )
        })
        .collect();
    let tsv = out.table.to_tsv();
    let mut recs: Vec<RowRecord> = tsv
        .lines()
        .skip(1) // header
        .enumerate()
        .map(|(i, line)| {
            let mut discrete = Vec::new();
            let mut relaxed = Vec::new();
            for (preds, probs) in &views {
                if let Some(f) = out.row_prov.get(i) {
                    discrete.push(f.eval_discrete(preds) as i64);
                    relaxed.push(f.eval_relaxed(probs));
                }
                for c in out.agg_cells.get(i).into_iter().flatten() {
                    discrete.push((c.eval_discrete(preds) * 1e6).round() as i64);
                    relaxed.push(c.eval_relaxed(probs));
                }
            }
            RowRecord {
                line: line.to_string(),
                discrete,
                relaxed,
            }
        })
        .collect();
    recs.sort_by(|a, b| (&a.line, &a.discrete).cmp(&(&b.line, &b.discrete)));
    recs
}

/// Assert the two outputs hold the same multiset of rows and that
/// provenance is equivalent under random discrete + relaxed worlds.
/// Order-insensitive on purpose: the cost-based optimizer may pick a
/// different join order than the naive plan, which permutes the (SQL-wise
/// unordered) output rows; engine-vs-engine tests on the *same* plan
/// ([`assert_bit_identical`]) stay exact-order.
fn assert_equivalent(seed: u64, naive: &QueryOutput, opt: &QueryOutput, rng: &mut RainRng) {
    assert_eq!(naive.n_key_cols, opt.n_key_cols, "seed {seed}");
    assert_eq!(naive.row_prov.len(), opt.row_prov.len(), "seed {seed}");
    assert_eq!(naive.agg_cells.len(), opt.agg_cells.len(), "seed {seed}");
    assert_eq!(
        naive.table.to_tsv().lines().next(),
        opt.table.to_tsv().lines().next(),
        "seed {seed}: headers differ"
    );

    let keys = var_keys(&naive.predvars, &opt.predvars);
    let worlds: Vec<World> = (0..8)
        .map(|_| {
            (
                keys.iter().map(|k| (k.clone(), rng.below(2))).collect(),
                keys.iter()
                    .map(|k| (k.clone(), rng.uniform_range(0.01, 0.99)))
                    .collect(),
            )
        })
        .collect();

    let rec_n = row_records(naive, &worlds);
    let rec_o = row_records(opt, &worlds);
    assert_eq!(rec_n.len(), rec_o.len(), "seed {seed}: row counts differ");
    for (i, (n, o)) in rec_n.iter().zip(&rec_o).enumerate() {
        assert_eq!(n.line, o.line, "seed {seed} sorted row {i}: rows differ");
        assert_eq!(
            n.discrete, o.discrete,
            "seed {seed} sorted row {i}: discrete provenance differs"
        );
        for (a, b) in n.relaxed.iter().zip(&o.relaxed) {
            assert!(
                (a - b).abs() < 1e-9,
                "seed {seed} sorted row {i}: relaxed provenance differs ({a} vs {b})"
            );
        }
    }
}

/// The headline property: optimized and naive plans agree on rows and
/// provenance for randomized SPJA queries, in both execution modes, and
/// the optimizer never widens a column footprint.
#[test]
fn optimizer_preserves_results_and_provenance() {
    let model = step_model();
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(0xA11CE ^ seed);
        let db = spja_db(&mut rng);
        let sql = random_query(&mut rng);
        let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        let bound = bind(&stmt, &db).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        let naive_plan = QueryPlan::naive(bound.clone(), &db);
        let opt_plan = optimize(bound, &db);

        // Projection pruning may only narrow the footprint. Join
        // reordering may have permuted the relations, so match them up
        // by alias rather than by position.
        for (ri, cols) in opt_plan.used_cols.iter().enumerate() {
            let alias = &opt_plan.rels[ri].alias;
            let ni = naive_plan
                .rels
                .iter()
                .position(|r| &r.alias == alias)
                .unwrap();
            assert!(
                cols.is_subset(&naive_plan.used_cols[ni]),
                "seed {seed} `{sql}`: footprint widened on rel {alias}"
            );
        }

        for debug in [false, true] {
            let opts = ExecOptions::with_debug(debug);
            let out_n = execute(&db, &model, &naive_plan, opts)
                .unwrap_or_else(|e| panic!("seed {seed} `{sql}` naive: {e}"));
            let out_o = execute(&db, &model, &opt_plan, opts)
                .unwrap_or_else(|e| panic!("seed {seed} `{sql}` optimized: {e}"));
            assert_equivalent(seed, &out_n, &out_o, &mut rng);
        }
    }
}

// ---------------------------------------------------------------------
// Vectorized grouped aggregation: the vexec grouped-key paths (typed
// single-key fast path and shared-finalizer bridge) against the
// tuple-engine oracle, bit for bit — rows, schema, provenance, and the
// prediction-variable registry.
// ---------------------------------------------------------------------

/// A random grouped aggregate over the generated schema: single- and
/// multi-column keys, predict keys, and mixed aggregate lists.
fn random_grouped_query(rng: &mut RainRng) -> String {
    let two_rels = rng.bernoulli(0.5);
    let from = if two_rels { "t1 a, t2 b" } else { "t1 a" };
    let mut terms = Vec::new();
    if two_rels && rng.bernoulli(0.7) {
        terms.push("a.x = b.k".to_string());
    }
    if rng.bernoulli(0.7) {
        terms.push(atom(rng, "a", true));
    }
    let where_sql = if terms.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", terms.join(" AND "))
    };
    let aggs = [
        "COUNT(*)",
        "SUM(x)",
        "AVG(x), COUNT(*)",
        "SUM(predict(a)), COUNT(*)",
    ][rng.below(4)];
    let group = match rng.below(5) {
        0 => "x",
        1 => "flag",
        2 => "x, flag",
        3 if two_rels => "k",
        _ => return format!("SELECT {aggs} FROM {from}{where_sql} GROUP BY predict(a)"),
    };
    format!("SELECT {aggs} FROM {from}{where_sql} GROUP BY {group}")
}

/// Assert both engines agree bit for bit on one output pair.
fn assert_bit_identical(label: &str, tuple: &QueryOutput, vexec: &QueryOutput) {
    assert_eq!(
        tuple.table.to_tsv(),
        vexec.table.to_tsv(),
        "{label}: result rows differ"
    );
    let (ts, vs) = (tuple.table.schema(), vexec.table.schema());
    assert_eq!(ts.len(), vs.len(), "{label}: schema arity differs");
    for (a, b) in ts.iter().zip(vs.iter()) {
        assert_eq!(a, b, "{label}: schema column differs");
    }
    assert_eq!(tuple.n_key_cols, vexec.n_key_cols, "{label}: n_key_cols");
    assert_eq!(tuple.row_prov, vexec.row_prov, "{label}: row provenance");
    assert_eq!(
        tuple.agg_cells, vexec.agg_cells,
        "{label}: aggregate provenance"
    );
    assert_eq!(
        tuple.predvars.infos(),
        vexec.predvars.infos(),
        "{label}: prediction-variable sources"
    );
    assert_eq!(
        tuple.predvars.preds(),
        vexec.predvars.preds(),
        "{label}: hard predictions"
    );
}

/// Randomized GROUP BY workloads must agree across engines in both modes;
/// this pins the vexec grouped-aggregation key paths to the tuple oracle.
#[test]
fn vexec_grouped_aggregation_matches_tuple_oracle() {
    use rain_sql::Engine;
    let model = step_model();
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(0x6B0 ^ seed);
        let db = spja_db(&mut rng);
        let sql = random_grouped_query(&mut rng);
        let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        let bound = bind(&stmt, &db).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        let plan = optimize(bound, &db);
        for debug in [false, true] {
            let label = format!("seed {seed} `{sql}` [debug={debug}]");
            let opts = ExecOptions::with_debug(debug);
            let tuple = execute(&db, &model, &plan, opts.on(Engine::Tuple))
                .unwrap_or_else(|e| panic!("{label} tuple: {e}"));
            let vexec = execute(&db, &model, &plan, opts.on(Engine::Vectorized))
                .unwrap_or_else(|e| panic!("{label} vexec: {e}"));
            assert_bit_identical(&label, &tuple, &vexec);
        }
    }
}

/// Each rule on its own must also preserve results (catches a rule that
/// is only correct in combination with another).
#[test]
fn individual_rules_preserve_results() {
    let model = step_model();
    let configs = [
        OptimizerConfig {
            constant_folding: true,
            predicate_pushdown: false,
            projection_pruning: false,
            join_reorder: false,
            index_paths: false,
        },
        OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: true,
            projection_pruning: false,
            join_reorder: false,
            index_paths: false,
        },
        OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: false,
            projection_pruning: true,
            join_reorder: false,
            index_paths: false,
        },
        OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: false,
            projection_pruning: false,
            join_reorder: true,
            index_paths: false,
        },
        OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: false,
            projection_pruning: false,
            join_reorder: false,
            index_paths: true,
        },
    ];
    for seed in 0..CASES / 2 {
        let mut rng = RainRng::seed_from_u64(0xB0B ^ seed);
        let db = spja_db(&mut rng);
        let sql = random_query(&mut rng);
        let stmt = parse_select(&sql).unwrap();
        let bound = bind(&stmt, &db).unwrap();
        let naive_plan = QueryPlan::naive(bound.clone(), &db);
        let base = execute(&db, &model, &naive_plan, ExecOptions::debug())
            .unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
        for cfg in &configs {
            let plan = rain_sql::optimize_with(bound.clone(), &db, cfg);
            let out = execute(&db, &model, &plan, ExecOptions::debug())
                .unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
            assert_equivalent(seed, &base, &out, &mut rng);
        }
    }
}
