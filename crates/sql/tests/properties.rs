//! Property tests for the provenance relaxation and the SQL printer.

use proptest::prelude::*;
use rain_sql::{parse_select, printer, AggSum, AggTerm, BoolProv, CellProv, Probs};

/// Random boolean formulas over `n_vars` binary prediction variables.
fn formula(n_vars: u32, depth: u32) -> impl Strategy<Value = BoolProv> {
    let leaf = prop_oneof![
        Just(BoolProv::Const(true)),
        Just(BoolProv::Const(false)),
        (0..n_vars, 0..2usize).prop_map(|(var, class)| BoolProv::PredIs { var, class }),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.negate()),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(BoolProv::and),
            proptest::collection::vec(inner, 1..3).prop_map(BoolProv::or),
        ]
    })
}

fn probs(n_vars: usize) -> impl Strategy<Value = Probs> {
    proptest::collection::vec(0.01f64..0.99, n_vars)
        .prop_map(|ps| Probs { p: ps.into_iter().map(|p| vec![1.0 - p, p]).collect() })
}

proptest! {
    /// At degenerate (0/1) probabilities the relaxation must agree with
    /// the discrete semantics for ANY formula — relaxation is exact on
    /// the boolean lattice corners.
    #[test]
    fn relaxation_exact_at_corners(f in formula(4, 4), bits in 0u32..16) {
        let preds: Vec<usize> = (0..4).map(|i| ((bits >> i) & 1) as usize).collect();
        let p = Probs {
            p: preds.iter().map(|&c| {
                let mut row = vec![0.0, 0.0];
                row[c] = 1.0;
                row
            }).collect(),
        };
        prop_assert_eq!(f.eval_discrete(&preds) as u8 as f64, f.eval_relaxed(&p));
    }

    /// The relaxed value of any formula is a probability-like quantity.
    #[test]
    fn relaxation_stays_in_unit_interval(f in formula(4, 4), p in probs(4)) {
        let v = f.eval_relaxed(&p);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "v = {v}");
    }

    /// Reverse-mode gradients of arbitrary formulas match central finite
    /// differences.
    #[test]
    fn formula_gradients_match_fd(f in formula(3, 3), p in probs(3)) {
        let cell = CellProv::Bool(f);
        let g = cell.grad(&p);
        let eps = 1e-6;
        for var in 0..3u32 {
            for class in 0..2usize {
                let mut up = p.clone();
                up.p[var as usize][class] += eps;
                let mut dn = p.clone();
                dn.p[var as usize][class] -= eps;
                let fd = (cell.eval_relaxed(&up) - cell.eval_relaxed(&dn)) / (2.0 * eps);
                let got = g.g.get(&var).map_or(0.0, |v| v[class]);
                prop_assert!((fd - got).abs() < 1e-5,
                    "var {var} class {class}: fd {fd} vs {got}");
            }
        }
    }

    /// For COUNT cells whose rows are single independent atoms, the
    /// relaxation IS the exact expectation (read-once case of [29]):
    /// Σ E[1(pred_i = c_i)] by linearity.
    #[test]
    fn count_relaxation_is_exact_expectation(
        classes in proptest::collection::vec(0..2usize, 1..6),
        p in probs(6),
    ) {
        let terms: Vec<(BoolProv, AggTerm)> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| (BoolProv::PredIs { var: i as u32, class: c }, AggTerm::One))
            .collect();
        let cell = CellProv::Sum(AggSum { terms });
        let expect: f64 = classes.iter().enumerate().map(|(i, &c)| p.p[i][c]).sum();
        prop_assert!((cell.eval_relaxed(&p) - expect).abs() < 1e-12);
    }

    /// De Morgan holds exactly under the relaxation for disjoint-variable
    /// operands: NOT(a AND b) == NOT a OR NOT b, because both sides reduce
    /// to `1 - x·y` when a, b are independent.
    #[test]
    fn de_morgan_on_distinct_vars(p in probs(2)) {
        let a = BoolProv::PredIs { var: 0, class: 1 };
        let b = BoolProv::PredIs { var: 1, class: 1 };
        let lhs = BoolProv::and(vec![a.clone(), b.clone()]).negate();
        let rhs = BoolProv::or(vec![a.negate(), b.negate()]);
        prop_assert!((lhs.eval_relaxed(&p) - rhs.eval_relaxed(&p)).abs() < 1e-12);
    }

    /// Printing then reparsing a parsed statement is a fixpoint for a
    /// family of generated filter queries.
    #[test]
    fn printer_roundtrip_generated_filters(
        col in "[a-c]",
        v in -100i64..100,
        like in "[a-z]{0,4}",
        conj in proptest::bool::ANY,
    ) {
        let op = if v % 2 == 0 { "=" } else { "<=" };
        let sql = if conj {
            format!(
                "SELECT COUNT(*) FROM t WHERE {col} {op} {v} AND name LIKE '%{like}%'"
            )
        } else {
            format!("SELECT COUNT(*) FROM t WHERE {col} {op} {v} OR predict(*) = 1")
        };
        let ast1 = parse_select(&sql).unwrap();
        let printed = printer::stmt_to_sql(&ast1);
        let ast2 = parse_select(&printed).unwrap();
        prop_assert_eq!(printed.clone(), printer::stmt_to_sql(&ast2));
    }
}
