//! Differential tests: the vectorized engine against the tuple oracle.
//!
//! Both engines share one evaluation core and must enumerate tuples in
//! the same order, so their outputs are required to be **bit-identical**
//! — not merely semantically equivalent: same result rows, same schema,
//! same prediction-variable registry (ids, sources, hard predictions),
//! and structurally equal provenance polynomials (`PartialEq` on
//! `BoolProv`/`CellProv`, no canonicalization). Every seeded case runs
//! in both modes over both the naive and the optimized plan.

use rain_linalg::{Matrix, RainRng};
use rain_model::{Classifier, LogisticRegression};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, execute, optimize, parse_select, Database, Engine, ExecOptions, QueryOutput, QueryPlan,
};

const CASES: u64 = 128;

/// A deterministic step model: class 1 iff feature > 0.
fn step_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[50.0, 0.0]);
    m
}

/// t1(x int, f float, s str, flag bool) and t2(y int, k int, s2 str),
/// both featured so `predict()` binds. Sizes straddle several batch
/// shapes (empty joins, duplicate keys, selective filters).
fn random_db(rng: &mut RainRng) -> Database {
    let n1 = 4 + rng.below(30);
    let n2 = 3 + rng.below(20);
    let words = ["http", "deal", "spam", "note", "xyz", ""];
    let feats = |rng: &mut RainRng, n: usize| {
        Matrix::from_rows(
            &(0..n)
                .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
                .collect::<Vec<_>>()
                .iter()
                .map(|r| &r[..])
                .collect::<Vec<_>>(),
        )
    };
    let mut db = Database::new();
    let t1 = Table::from_columns(
        Schema::new(&[
            ("x", ColType::Int),
            ("f", ColType::Float),
            ("s", ColType::Str),
            ("flag", ColType::Bool),
        ]),
        vec![
            Column::Int((0..n1).map(|_| rng.int_range(0, 6)).collect()),
            Column::Float((0..n1).map(|_| rng.uniform_range(-2.0, 4.0)).collect()),
            Column::Str(
                (0..n1)
                    .map(|_| words[rng.below(words.len())].to_string())
                    .collect(),
            ),
            Column::Bool((0..n1).map(|_| rng.bernoulli(0.5)).collect()),
        ],
    )
    .with_features(feats(rng, n1));
    db.register("t1", t1);
    let t2 = Table::from_columns(
        Schema::new(&[
            ("y", ColType::Int),
            ("k", ColType::Int),
            ("s2", ColType::Str),
        ]),
        vec![
            Column::Int((0..n2).map(|_| rng.int_range(0, 6)).collect()),
            Column::Int((0..n2).map(|_| rng.int_range(0, 4)).collect()),
            Column::Str(
                (0..n2)
                    .map(|_| words[rng.below(words.len())].to_string())
                    .collect(),
            ),
        ],
    )
    .with_features(feats(rng, n2));
    db.register("t2", t2);
    db
}

/// A random single-relation predicate over alias `a` (t1) or `b` (t2).
fn atom(rng: &mut RainRng, alias: &str, is_t1: bool) -> String {
    if is_t1 {
        match rng.below(9) {
            0 => format!("{alias}.x > {}", rng.int_range(0, 5)),
            1 => format!("{alias}.x + 1 <= {}", rng.int_range(1, 7)),
            2 => format!("{alias}.f < {}", rng.int_range(-1, 4)),
            3 => format!("{alias}.s LIKE '%{}%'", ["ht", "ea", "o"][rng.below(3)]),
            4 => format!("{alias}.s NOT LIKE '%{}%'", ["sp", "x"][rng.below(2)]),
            5 => format!("{alias}.flag"),
            6 => format!("NOT {alias}.flag = false"),
            7 => format!("predict({alias}) = {}", rng.below(2)),
            _ => format!("predict({alias}) != {}", rng.below(2)),
        }
    } else {
        match rng.below(6) {
            0 => format!("{alias}.y >= {}", rng.int_range(0, 5)),
            1 => format!("{alias}.k < {}", rng.int_range(1, 4)),
            2 => format!("{alias}.s2 = '{}'", ["http", "deal"][rng.below(2)]),
            3 => format!("predict({alias}) = {}", rng.below(2)),
            4 => format!("{alias}.y * 2 > {}", rng.int_range(0, 9)),
            _ => format!("{alias}.y != {alias}.k"),
        }
    }
}

/// Build a random SPJA query over the generated schema.
fn random_query(rng: &mut RainRng) -> String {
    let two_rels = rng.bernoulli(0.6);
    let from = if two_rels { "t1 a, t2 b" } else { "t1 a" };

    let mut terms = Vec::new();
    if two_rels {
        // Usually an equi-join (typed int key); sometimes string keys,
        // mixed-type keys, or a pure cross join.
        match rng.below(8) {
            0..=3 => terms.push("a.x = b.k".to_string()),
            4 => terms.push("a.s = b.s2".to_string()),
            5 => terms.push("a.f = b.k".to_string()), // mixed-type key
            6 => terms.push("a.x + 0 = b.k".to_string()), // expression key
            _ => {}                                   // cross join
        }
    }
    for _ in 0..1 + rng.below(3) {
        let t = match rng.below(6) {
            0 => {
                let l = atom(rng, "a", true);
                let r = if two_rels {
                    atom(rng, "b", false)
                } else {
                    atom(rng, "a", true)
                };
                format!("({l} OR {r})")
            }
            1 => ["1 = 1", "1 + 1 = 2", "2 > 3"][rng.below(3)].to_string(),
            2 if two_rels => atom(rng, "b", false),
            3 if two_rels => "predict(a) = predict(b)".to_string(),
            4 if two_rels => format!("a.x > b.k - {}", rng.int_range(0, 3)),
            _ => atom(rng, "a", true),
        };
        terms.push(t);
    }
    let where_sql = if terms.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", terms.join(" AND "))
    };

    match rng.below(9) {
        0 => format!("SELECT COUNT(*) FROM {from}{where_sql}"),
        1 => format!("SELECT SUM(x) FROM {from}{where_sql}"),
        2 => format!("SELECT AVG(x), COUNT(*) FROM {from}{where_sql}"),
        3 => format!("SELECT SUM(predict(a)) FROM {from}{where_sql}"),
        4 => format!("SELECT COUNT(*) FROM {from}{where_sql} GROUP BY predict(a)"),
        5 => format!("SELECT flag, SUM(f) FROM {from}{where_sql} GROUP BY flag"),
        6 => format!("SELECT x, s FROM {from}{where_sql}"),
        7 => format!("SELECT x * 2 AS d, flag FROM {from}{where_sql}"),
        _ => format!("SELECT * FROM {from}{where_sql}"),
    }
}

/// Assert two outputs are bit-identical: rows, schema, provenance, and
/// the prediction-variable registry.
fn assert_identical(label: &str, tuple: &QueryOutput, vexec: &QueryOutput) {
    assert_eq!(
        tuple.table.to_tsv(),
        vexec.table.to_tsv(),
        "{label}: result rows differ"
    );
    let (ts, vs) = (tuple.table.schema(), vexec.table.schema());
    assert_eq!(ts.len(), vs.len(), "{label}: schema arity differs");
    for (a, b) in ts.iter().zip(vs.iter()) {
        assert_eq!(a, b, "{label}: schema column differs");
    }
    assert_eq!(tuple.n_key_cols, vexec.n_key_cols, "{label}: n_key_cols");
    assert_eq!(tuple.row_prov, vexec.row_prov, "{label}: row provenance");
    assert_eq!(
        tuple.agg_cells, vexec.agg_cells,
        "{label}: aggregate provenance"
    );
    assert_eq!(
        tuple.predvars.infos(),
        vexec.predvars.infos(),
        "{label}: prediction-variable sources"
    );
    assert_eq!(
        tuple.predvars.preds(),
        vexec.predvars.preds(),
        "{label}: hard predictions"
    );
}

fn run_differential(seed: u64, model: &dyn Classifier) {
    let mut rng = RainRng::seed_from_u64(0xD1FF ^ seed);
    let db = random_db(&mut rng);
    let sql = random_query(&mut rng);
    let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
    let bound = bind(&stmt, &db).unwrap_or_else(|e| panic!("seed {seed} `{sql}`: {e}"));
    let plans = [
        ("naive", QueryPlan::naive(bound.clone(), &db)),
        ("optimized", optimize(bound, &db)),
    ];
    for (plan_name, plan) in &plans {
        for debug in [false, true] {
            let opts = ExecOptions::with_debug(debug);
            let tuple = execute(&db, model, plan, opts.on(Engine::Tuple)).unwrap_or_else(|e| {
                panic!("seed {seed} `{sql}` [{plan_name}, debug={debug}] tuple: {e}")
            });
            for threads in [1, 2, 8] {
                let label =
                    format!("seed {seed} `{sql}` [{plan_name}, debug={debug}, threads={threads}]");
                let vexec = execute(
                    &db,
                    model,
                    plan,
                    opts.on(Engine::Vectorized).with_threads(threads),
                )
                .unwrap_or_else(|e| panic!("{label} vexec: {e}"));
                assert_identical(&label, &tuple, &vexec);
            }
        }
    }
}

/// The headline differential property over randomized SPJA workloads.
#[test]
fn vexec_matches_tuple_engine_bit_for_bit() {
    let model = step_model();
    for seed in 0..CASES {
        run_differential(seed, &model);
    }
}

/// Large-input differential: tables big enough that the morsel-parallel
/// scan and hash-join-probe paths actually engage (the small randomized
/// cases above stay under the parallel thresholds and exercise the
/// sequential guard). Rows, provenance, and prediction variables must be
/// bit-identical to the tuple oracle for `threads ∈ {1, 2, 8}` — and
/// therefore across thread counts.
#[test]
fn morsel_parallel_paths_match_the_oracle_on_large_inputs() {
    let model = step_model();
    let mut rng = RainRng::seed_from_u64(0x60AF);
    let n1 = 20_000usize;
    let n2 = 12_000usize;
    let feats = |rng: &mut RainRng, n: usize| {
        Matrix::from_rows(
            &(0..n)
                .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
                .collect::<Vec<_>>()
                .iter()
                .map(|r| &r[..])
                .collect::<Vec<_>>(),
        )
    };
    let mut db = Database::new();
    let t1 = Table::from_columns(
        Schema::new(&[
            ("x", ColType::Int),
            ("f", ColType::Float),
            ("flag", ColType::Bool),
        ]),
        vec![
            Column::Int((0..n1).map(|i| (i % 4999) as i64).collect()),
            Column::Float((0..n1).map(|_| rng.uniform_range(-2.0, 4.0)).collect()),
            Column::Bool((0..n1).map(|_| rng.bernoulli(0.5)).collect()),
        ],
    )
    .with_features(feats(&mut rng, n1));
    db.register("t1", t1);
    // t2.y carries NULL holes so its pushed-down filter takes the
    // kernel-fallback (row-at-a-time) path inside parallel scan workers.
    let mut t2 = Table::empty(Schema::new(&[("y", ColType::Int), ("k", ColType::Int)]));
    for i in 0..n2 {
        let y = if rng.bernoulli(0.1) {
            rain_sql::Value::Null
        } else {
            rain_sql::Value::Int(rng.int_range(0, 10))
        };
        t2.push_row(vec![y, rain_sql::Value::Int((i % 4999) as i64)], None);
    }
    db.register("t2", t2.with_features(feats(&mut rng, n2)));

    let cases = [
        // Typed-key hash join with parallel scans on both sides (t2's
        // filter falls back row-at-a-time over the null bitmap).
        "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND a.f < 2.0 AND b.y >= 3",
        // Expression key: the general-strategy probe, morsel-parallel,
        // with a model predicate evaluated sequentially on top.
        "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x + 0 = b.k AND predict(a) = 1",
        // Grouped aggregate over the parallel join output.
        "SELECT flag, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND a.f < 1.0 GROUP BY flag",
    ];
    for sql in cases {
        let stmt = parse_select(sql).unwrap();
        let plan = optimize(bind(&stmt, &db).unwrap(), &db);
        for debug in [false, true] {
            let opts = ExecOptions::with_debug(debug);
            let tuple = execute(&db, &model, &plan, opts.on(Engine::Tuple)).unwrap();
            for threads in [1, 2, 8] {
                let label = format!("`{sql}` [debug={debug}, threads={threads}]");
                let vexec = execute(
                    &db,
                    &model,
                    &plan,
                    opts.on(Engine::Vectorized).with_threads(threads),
                )
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_identical(&label, &tuple, &vexec);
            }
        }
    }
}

/// The partitioned hash build must preserve the sequential engines'
/// NULL/NaN key skips *per partition*: a NULL int key routes through the
/// general strategy (nullable column) and a NaN float key through the
/// typed-numeric strategy, and in both the skipped row must vanish from
/// whichever partition its hash would have landed in. Keys are heavily
/// skewed so one partition carries far more rows than the rest, and the
/// build sides exceed the parallel threshold so the partitioned path
/// actually engages. Also covers morsel-parallel cross joins and
/// grouped aggregation over skewed group keys at scale.
#[test]
fn partitioned_build_and_grouped_agg_match_under_skew_nulls_and_nans() {
    let model = step_model();
    let mut rng = RainRng::seed_from_u64(0x5AFE);
    let n1 = 9_000usize;
    let n2 = 12_000usize;
    let feats = |rng: &mut RainRng, n: usize| {
        Matrix::from_rows(
            &(0..n)
                .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
                .collect::<Vec<_>>()
                .iter()
                .map(|r| &r[..])
                .collect::<Vec<_>>(),
        )
    };
    let mut db = Database::new();
    // t1: non-null skewed int key (half the rows share x = 7), a
    // non-null float join column where every fifth value is NaN and many
    // of the rest collide on 1.5, and a NaN-free float column to
    // aggregate (summing NaN would poison the provenance comparison:
    // `NaN != NaN` under `PartialEq`).
    let t1 = Table::from_columns(
        Schema::new(&[
            ("x", ColType::Int),
            ("f", ColType::Float),
            ("g", ColType::Float),
        ]),
        vec![
            Column::Int(
                (0..n1)
                    .map(|i| if i % 2 == 0 { 7 } else { (i % 97) as i64 })
                    .collect(),
            ),
            Column::Float(
                (0..n1)
                    .map(|i| match i % 5 {
                        0 => f64::NAN,
                        1 | 2 => 1.5,
                        _ => (i % 13) as f64,
                    })
                    .collect(),
            ),
            Column::Float((0..n1).map(|i| (i % 13) as f64 * 0.5).collect()),
        ],
    )
    .with_features(feats(&mut rng, n1));
    db.register("t1", t1);
    // t2: nullable skewed int key (every tenth NULL, a third of the rest
    // pile onto 7 — the hot t1 key) and a mask-free float column with
    // NaN holes, so `a.x = b.k` takes the general strategy and
    // `a.f = b.f2` stays on the typed-numeric one.
    let mut t2 = Table::empty(Schema::new(&[("k", ColType::Int), ("f2", ColType::Float)]));
    for i in 0..n2 {
        let k = if i % 10 == 0 {
            rain_sql::Value::Null
        } else if i % 3 == 0 {
            rain_sql::Value::Int(7)
        } else {
            rain_sql::Value::Int((i % 97) as i64)
        };
        let f2 = if i % 7 == 0 {
            f64::NAN
        } else if i % 2 == 0 {
            1.5
        } else {
            (i % 13) as f64
        };
        t2.push_row(vec![k, rain_sql::Value::Float(f2)], None);
    }
    db.register("t2", t2.with_features(feats(&mut rng, n2)));
    // t3: three rows, the small side of a scaled cross join.
    let t3 = Table::from_columns(
        Schema::new(&[("z", ColType::Int)]),
        vec![Column::Int(vec![0, 1, 2])],
    )
    .with_features(feats(&mut rng, 3));
    db.register("t3", t3);

    let cases = [
        // NULL-key regression: nullable build column → general strategy,
        // 12k build rows → partitioned build; NULL keys must be dropped
        // from their partitions exactly as the sequential build drops
        // them from its single map.
        "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k",
        // Same join under debug provenance, grouped on the skewed key.
        "SELECT x, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k GROUP BY x",
        // NaN-key regression: mask-free float columns → typed-numeric
        // strategy; NaN build and probe keys skip per partition.
        "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.f = b.f2",
        // Morsel-parallel grouped aggregation over a skewed group key:
        // 9k tuples, ~97 groups, one group holding half the input.
        "SELECT x, COUNT(*), SUM(g) FROM t1 a GROUP BY x",
        // Cross join at scale (9k × 3 = 27k tuples) plus a grouped
        // aggregate over its output.
        "SELECT COUNT(*) FROM t1 a, t3 c",
        "SELECT z, COUNT(*) FROM t1 a, t3 c GROUP BY z",
    ];
    for sql in cases {
        let stmt = parse_select(sql).unwrap();
        let plan = optimize(bind(&stmt, &db).unwrap(), &db);
        for debug in [false, true] {
            let opts = ExecOptions::with_debug(debug);
            let tuple = execute(&db, &model, &plan, opts.on(Engine::Tuple)).unwrap();
            for threads in [1, 2, 8] {
                let label = format!("`{sql}` [skew, debug={debug}, threads={threads}]");
                let vexec = execute(
                    &db,
                    &model,
                    &plan,
                    opts.on(Engine::Vectorized).with_threads(threads),
                )
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_identical(&label, &tuple, &vexec);
            }
        }
    }
}

/// Nullable base tables force the kernels' fallback paths: joins, scans,
/// and group keys over columns with null bitmaps must still agree.
#[test]
fn vexec_matches_tuple_engine_on_nullable_tables() {
    let model = step_model();
    for seed in 0..CASES / 4 {
        let mut rng = RainRng::seed_from_u64(0xAB1E ^ seed);
        let mut db = random_db(&mut rng);
        // Rebuild t2 with NULL holes punched into both columns.
        let t2 = db.table("t2").unwrap().clone();
        let mut nullable = Table::empty(t2.schema().clone());
        for r in 0..t2.n_rows() {
            let row: Vec<_> = (0..t2.schema().len())
                .map(|c| {
                    if rng.bernoulli(0.2) {
                        rain_sql::Value::Null
                    } else {
                        t2.value(r, c)
                    }
                })
                .collect();
            nullable.push_row(row, None);
        }
        let nullable = nullable.with_features(t2.features().unwrap().clone());
        db.register("t2", nullable);

        let sql = [
            "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k",
            "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k AND b.y > 1",
            "SELECT y, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.k GROUP BY y",
            "SELECT SUM(y) FROM t2 b WHERE b.k < 3",
        ][rng.below(4)];
        let stmt = parse_select(sql).unwrap();
        let bound = bind(&stmt, &db).unwrap();
        let plan = optimize(bound, &db);
        for debug in [false, true] {
            let label = format!("seed {seed} `{sql}` [nullable, debug={debug}]");
            let opts = ExecOptions::with_debug(debug);
            let tuple = execute(&db, &model, &plan, opts.on(Engine::Tuple))
                .unwrap_or_else(|e| panic!("{label} tuple: {e}"));
            let vexec = execute(&db, &model, &plan, opts.on(Engine::Vectorized))
                .unwrap_or_else(|e| panic!("{label} vexec: {e}"));
            assert_identical(&label, &tuple, &vexec);
        }
    }
}
