//! End-to-end executor tests over all the paper's query shapes, plus the
//! core invariants: (1) debug-mode and normal-mode results agree, and
//! (2) discrete evaluation of captured provenance reproduces the concrete
//! result exactly.

use rain_linalg::Matrix;
use rain_model::{Classifier, LogisticRegression, SoftmaxRegression};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{run_query, Database, ExecOptions, Probs, Value};

/// Binary model: class 1 iff feature[0] > 0.
fn step_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[50.0, 0.0]);
    m
}

/// 10-class model over 10-D one-hot-ish features: predicts argmax feature.
fn digit_model() -> SoftmaxRegression {
    let mut m = SoftmaxRegression::new(10, 10, 0.0);
    let mut params = vec![0.0; 11 * 10];
    for j in 0..10 {
        params[j * 10 + j] = 50.0;
    }
    m.set_params(&params);
    m
}

fn onehot(c: usize) -> Vec<f64> {
    let mut v = vec![0.0; 10];
    v[c] = 1.0;
    v
}

/// `emails(id, text, spamminess)` with 1-D features.
fn enron_db() -> Database {
    let texts = [
        "buy now http://spam.example",
        "meeting notes attached",
        "great deal on http stocks",
        "the deal is closed",
        "lunch tomorrow",
    ];
    // features decide the class: rows 0, 2 are predicted spam (=1).
    let feats = [1.0, -1.0, 1.0, -1.0, -1.0];
    let schema = Schema::new(&[("id", ColType::Int), ("text", ColType::Str)]);
    let table = Table::from_columns(
        schema,
        vec![
            Column::Int((0..5).map(|i| i as i64).collect()),
            Column::Str(texts.iter().map(|s| s.to_string()).collect()),
        ],
    )
    .with_features(Matrix::from_rows(
        &feats.iter().map(std::slice::from_ref).collect::<Vec<_>>(),
    ));
    let mut db = Database::new();
    db.register("emails", table);
    db
}

/// Two digit tables: `left` holds digits [1,1,2], `right` holds [7,1,9].
fn digits_db() -> Database {
    let mk = |classes: &[usize]| {
        let rows: Vec<Vec<f64>> = classes.iter().map(|&c| onehot(c)).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Table::from_columns(
            Schema::new(&[("id", ColType::Int)]),
            vec![Column::Int((0..classes.len() as i64).collect())],
        )
        .with_features(Matrix::from_rows(&refs))
    };
    let mut db = Database::new();
    db.register("left", mk(&[1, 1, 2]));
    db.register("right", mk(&[7, 1, 9]));
    db
}

#[test]
fn q1_count_with_model_filter() {
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 1",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.scalar().value(), Some(Value::Int(2)));
}

#[test]
fn q2_like_plus_model_filter() {
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 1 AND text LIKE '%http%'",
        ExecOptions::debug(),
    )
    .unwrap();
    assert_eq!(out.scalar().value(), Some(Value::Int(2)));
    // Rows 1,3,4 fail predict; rows 1, 3 also mention no http. Candidate
    // terms: only rows passing the concrete LIKE filter (0 and 2).
    let cell = &out.agg_cells[0][0];
    match cell {
        rain_sql::CellProv::Sum(s) => assert_eq!(s.terms.len(), 2),
        other => panic!("unexpected provenance {other:?}"),
    }
}

#[test]
fn debug_and_normal_results_agree() {
    let db = enron_db();
    let model = step_model();
    for sql in [
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 1",
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 0 AND text LIKE '%deal%'",
        "SELECT id FROM emails WHERE predict(*) = 1",
    ] {
        let normal = run_query(&db, &model, sql, ExecOptions::with_debug(false)).unwrap();
        let debug = run_query(&db, &model, sql, ExecOptions::debug()).unwrap();
        assert_eq!(normal.table.to_tsv(), debug.table.to_tsv(), "query {sql}");
    }
}

#[test]
fn provenance_discrete_eval_reproduces_result() {
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 1",
        ExecOptions::debug(),
    )
    .unwrap();
    let cell = &out.agg_cells[0][0];
    let count = cell.eval_discrete(out.predvars.preds());
    assert_eq!(count, 2.0);
    // Flipping one prediction changes the discrete count accordingly.
    let mut preds = out.predvars.preds().to_vec();
    let flip = (0..preds.len()).find(|&v| preds[v] == 0).unwrap();
    preds[flip] = 1;
    assert_eq!(cell.eval_discrete(&preds), 3.0);
}

#[test]
fn q3_join_on_predictions() {
    let db = digits_db();
    let model = digit_model();
    let out = run_query(
        &db,
        &model,
        "SELECT * FROM left l, right r WHERE predict(l) = predict(r)",
        ExecOptions::debug(),
    )
    .unwrap();
    // left digits [1,1,2] × right digits [7,1,9]: matches are the two 1s
    // on the left with the single 1 on the right.
    assert_eq!(out.table.n_rows(), 2);
    assert_eq!(out.row_prov.len(), 2);
    // The provenance of each join row must mention exactly two variables.
    let vars = out.row_prov[0].clone();
    let mut set = std::collections::BTreeSet::new();
    vars.collect_vars(&mut set);
    assert_eq!(set.len(), 2);
}

#[test]
fn q4_count_over_prediction_join() {
    let db = digits_db();
    let model = digit_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM left l, right r WHERE predict(l) = predict(r)",
        ExecOptions::debug(),
    )
    .unwrap();
    assert_eq!(out.scalar().value(), Some(Value::Int(2)));
    // Debug mode keeps ALL 9 candidate pairs symbolically: fixing the
    // complaint may require flipping pairs into the join.
    match &out.agg_cells[0][0] {
        rain_sql::CellProv::Sum(s) => assert_eq!(s.terms.len(), 9),
        other => panic!("unexpected {other:?}"),
    }
    // Relaxed evaluation at the model's own probabilities should be close
    // to the discrete count (the model is near-deterministic).
    let probs = probs_of(&out.predvars, &db, &model);
    let relaxed = out.agg_cells[0][0].eval_relaxed(&probs);
    assert!((relaxed - 2.0).abs() < 0.1, "relaxed {relaxed}");
}

#[test]
fn q5_group_by_predict() {
    let db = digits_db();
    let model = digit_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM left GROUP BY predict(*)",
        ExecOptions::debug(),
    )
    .unwrap();
    // left digits [1,1,2] → group 1 has 2 members, group 2 has 1.
    assert_eq!(out.table.n_rows(), 2);
    assert_eq!(out.table.value(0, 0), Value::Int(1));
    assert_eq!(out.table.value(0, 1), Value::Int(2));
    assert_eq!(out.table.value(1, 0), Value::Int(2));
    assert_eq!(out.table.value(1, 1), Value::Int(1));
    // Each group's provenance covers all 3 candidate rows.
    match &out.agg_cells[0][0] {
        rain_sql::CellProv::Sum(s) => assert_eq!(s.terms.len(), 3),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn q6_avg_predict_group_by_column() {
    // adult(gender, age) with features so predict = 1 iff feature > 0.
    let schema = Schema::new(&[("gender", ColType::Str), ("age", ColType::Int)]);
    let table = Table::from_columns(
        schema,
        vec![
            Column::Str(vec!["m".into(), "m".into(), "f".into(), "f".into()]),
            Column::Int(vec![40, 50, 40, 30]),
        ],
    )
    .with_features(Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0], &[1.0]]));
    let mut db = Database::new();
    db.register("adult", table);
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT AVG(predict(*)) AS income FROM adult GROUP BY gender",
        ExecOptions::debug(),
    )
    .unwrap();
    // groups sorted: f → (1+1)/2 = 1.0 ; m → (1+0)/2 = 0.5.
    assert_eq!(out.table.value(0, 0), Value::Str("f".into()));
    assert_eq!(out.table.value(0, 1), Value::Float(1.0));
    assert_eq!(out.table.value(1, 1), Value::Float(0.5));
    // AVG cells are ratios; discrete eval matches the table.
    assert_eq!(out.agg_cells[1][0].eval_discrete(out.predvars.preds()), 0.5);
}

#[test]
fn concrete_hash_join_with_model_filter() {
    // Figure 1 shape: join users/logins on id, filter actives + churn.
    let users = Table::from_columns(
        Schema::new(&[("id", ColType::Int)]),
        vec![Column::Int(vec![1, 2, 3])],
    )
    .with_features(Matrix::from_rows(&[&[1.0], &[1.0], &[-1.0]]));
    let logins = Table::from_columns(
        Schema::new(&[("id", ColType::Int), ("active_last_month", ColType::Bool)]),
        vec![
            Column::Int(vec![1, 2, 3]),
            Column::Bool(vec![true, false, true]),
        ],
    );
    let mut db = Database::new();
    db.register("users", users);
    db.register("logins", logins);
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id \
         WHERE l.active_last_month AND predict(u) = 1",
        ExecOptions::debug(),
    )
    .unwrap();
    // user 1: active + churn ✓; user 2: inactive ✗ (pruned concretely);
    // user 3: active but not churn (kept symbolically).
    assert_eq!(out.scalar().value(), Some(Value::Int(1)));
    match &out.agg_cells[0][0] {
        rain_sql::CellProv::Sum(s) => assert_eq!(s.terms.len(), 2),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn predict_inequality_expands_to_class_set() {
    let db = digits_db();
    let model = digit_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM right WHERE predict(*) >= 7",
        ExecOptions::default(),
    )
    .unwrap();
    // right digits [7,1,9] → two rows with class ≥ 7.
    assert_eq!(out.scalar().value(), Some(Value::Int(2)));
}

#[test]
fn projection_of_predict_and_expressions() {
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT id, predict(*) AS cls, id * 2 AS двa FROM emails WHERE id < 2",
        ExecOptions::default(),
    );
    // Non-ASCII alias is a lexer error — use a sane one instead.
    assert!(out.is_err());
    let out = run_query(
        &db,
        &model,
        "SELECT id, predict(*) AS cls, id * 2 AS dbl FROM emails WHERE id < 2",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.table.n_rows(), 2);
    assert_eq!(out.table.value(0, 1), Value::Int(1)); // row 0 predicted spam
    assert_eq!(out.table.value(1, 2), Value::Int(2));
}

#[test]
fn empty_global_aggregate_has_one_row() {
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails WHERE id > 100",
        ExecOptions::debug(),
    )
    .unwrap();
    assert_eq!(out.scalar().value(), Some(Value::Int(0)));
}

#[test]
fn relaxed_count_gradient_points_toward_complaint() {
    // For COUNT(predict=1)=X with X above the current count, increasing
    // any variable's class-1 probability increases the relaxed count.
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 1",
        ExecOptions::debug(),
    )
    .unwrap();
    let probs = probs_of(&out.predvars, &db, &model);
    let g = out.agg_cells[0][0].grad(&probs);
    for gs in g.g.values() {
        assert!(gs[1] > 0.0, "class-1 gradient must be positive");
        assert_eq!(gs[0], 0.0, "class-0 prob does not appear in the formula");
    }
}

/// Model probabilities for every prediction variable of an output.
fn probs_of(reg: &rain_sql::PredVarRegistry, db: &Database, model: &dyn Classifier) -> Probs {
    let p = reg
        .infos()
        .iter()
        .map(|info| {
            let t = db.table(&info.table).unwrap();
            model.predict_proba(t.feature_row(info.row).unwrap())
        })
        .collect();
    Probs { p }
}

#[test]
fn duplicate_output_names_are_uniquified() {
    // `SELECT x, x` (or `SELECT *, *`) must not panic the output schema
    // builder; duplicate names get `_2`-style suffixes.
    let db = enron_db();
    let model = step_model();
    let out = run_query(
        &db,
        &model,
        "SELECT id, id, *, * FROM emails",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.table.n_rows(), 5);
    let names: Vec<&str> = out.table.schema().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["id", "id_2", "id_3", "text", "id_4", "text_2"]);
    let agg = run_query(
        &db,
        &model,
        "SELECT COUNT(*) AS n, SUM(id) AS n FROM emails",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(agg.table.schema().index_of("n_2"), Some(1));
}

#[test]
fn null_select_output_uses_the_null_bitmap() {
    // Projected NULLs (division by zero, NULL literals) are carried by
    // the output table's per-column null bitmap instead of erroring.
    let db = enron_db();
    let model = step_model();
    for sql in ["SELECT id / 0 FROM emails", "SELECT null FROM emails"] {
        let out = run_query(&db, &model, sql, ExecOptions::default())
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(out.table.n_rows(), 5, "{sql}");
        assert!(out.table.is_null(0, 0), "{sql}");
        assert_eq!(out.table.value(0, 0), Value::Null, "{sql}");
    }
}

#[test]
fn scalar_distinguishes_null_norows_and_nonscalar() {
    use rain_sql::ScalarResult;
    let db = enron_db();
    let model = step_model();
    // A single non-NULL value.
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.scalar(), ScalarResult::Value(Value::Int(5)));
    assert_eq!(out.scalar().unwrap(), Value::Int(5));
    // One row whose only cell is NULL.
    let out = run_query(
        &db,
        &model,
        "SELECT id / 0 FROM emails WHERE id = 3",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.scalar(), ScalarResult::Null);
    assert_eq!(out.scalar().value(), None);
    // The right one-column shape but zero rows (a filter matching no row).
    let out = run_query(
        &db,
        &model,
        "SELECT id FROM emails WHERE id > 100",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.scalar(), ScalarResult::NoRows);
    // A grouped aggregate whose groups all vanish also has no rows.
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM emails WHERE id > 100 GROUP BY text",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.scalar(), ScalarResult::NoRows);
    // Multiple rows or multiple value columns are not scalar.
    let out = run_query(&db, &model, "SELECT id FROM emails", ExecOptions::default()).unwrap();
    assert_eq!(out.scalar(), ScalarResult::NonScalar);
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*), SUM(id) FROM emails",
        ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.scalar(), ScalarResult::NonScalar);
}

#[test]
fn hash_join_keys_match_equality_semantics() {
    // Hash-join key equality must agree with the `=` predicate on both
    // engines: NULL and NaN keys join nothing, `-0.0` joins `0`, and
    // numeric keys of different column types (Float vs Int) join exactly
    // when `Value::compare` calls them equal.
    use rain_sql::{bind, execute, optimize, parse_select, Engine, QueryPlan};
    let mut left = Table::empty(Schema::new(&[("x", ColType::Float)]));
    for v in [
        Value::Float(3.0),
        Value::Null,
        Value::Float(f64::NAN),
        Value::Float(-0.0),
    ] {
        left.push_row(vec![v], None);
    }
    let mut right = Table::empty(Schema::new(&[("k", ColType::Int)]));
    for v in [Value::Int(3), Value::Null, Value::Int(0)] {
        right.push_row(vec![v], None);
    }
    let mut db = Database::new();
    db.register("l", left);
    db.register("r", right);
    let model = step_model();

    // The equi form takes the hash join; the OR-wrapped form in a naive
    // plan is not recognized as an equi key, so it runs as a cross join
    // with a per-tuple `=` — the oracle for the join's semantics.
    let equi = parse_select("SELECT COUNT(*) FROM l a, r b WHERE a.x = b.k").unwrap();
    let cross = parse_select("SELECT COUNT(*) FROM l a, r b WHERE (a.x = b.k OR 2 > 3)").unwrap();
    let oracle = execute(
        &db,
        &model,
        &QueryPlan::naive(bind(&cross, &db).unwrap(), &db),
        ExecOptions::default().on(Engine::Tuple),
    )
    .unwrap();
    assert_eq!(oracle.scalar().value(), Some(Value::Int(2))); // 3.0=3 and -0.0=0
    for engine in [Engine::Tuple, Engine::Vectorized] {
        let plan = optimize(bind(&equi, &db).unwrap(), &db);
        let out = execute(&db, &model, &plan, ExecOptions::default().on(engine)).unwrap();
        assert_eq!(out.scalar(), oracle.scalar(), "{engine:?}");
    }

    // Non-nullable Float-vs-Int key columns take vexec's typed numeric
    // path and must still match `=` semantics.
    let mut db2 = Database::new();
    db2.register(
        "l",
        Table::from_columns(
            Schema::new(&[("x", ColType::Float)]),
            vec![Column::Float(vec![3.0, 2.5])],
        ),
    );
    db2.register(
        "r",
        Table::from_columns(
            Schema::new(&[("k", ColType::Int)]),
            vec![Column::Int(vec![3, 2])],
        ),
    );
    for engine in [Engine::Tuple, Engine::Vectorized] {
        let plan = optimize(bind(&equi, &db2).unwrap(), &db2);
        let out = execute(&db2, &model, &plan, ExecOptions::default().on(engine)).unwrap();
        assert_eq!(out.scalar().value(), Some(Value::Int(1)), "{engine:?}");
    }
}

#[test]
fn output_types_agree_between_naive_and_optimized_plans() {
    // Constant folding turns `true + 2` into `3`; both plans must still
    // type the output column identically (shared binder inference).
    use rain_sql::{bind, execute, optimize, parse_select, QueryPlan};
    let db = enron_db();
    let model = step_model();
    let stmt = parse_select("SELECT true + 2 AS x, id / 2 AS h FROM emails").unwrap();
    let bound = bind(&stmt, &db).unwrap();
    let naive = execute(
        &db,
        &model,
        &QueryPlan::naive(bound.clone(), &db),
        ExecOptions::default(),
    )
    .unwrap();
    let opt = execute(&db, &model, &optimize(bound, &db), ExecOptions::default()).unwrap();
    for c in 0..2 {
        assert_eq!(
            naive.table.schema().col(c).ty,
            opt.table.schema().col(c).ty,
            "column {c} types diverge"
        );
        assert_eq!(naive.table.value(0, c), opt.table.value(0, c));
    }
}

// ---------------------------------------------------------------------
// Predict-keyed grouping: the `GroupKey::Predict` schema path (the
// `push_unique(..., "predict", ColType::Int)` branch) with duplicate
// class labels among the grouped rows.
// ---------------------------------------------------------------------

/// 3-class digits db with duplicate class labels: classes 1, 1, 2, 1, 0, 2.
fn dup_class_db() -> (Database, SoftmaxRegression) {
    let classes = [1usize, 1, 2, 1, 0, 2];
    let mut m = SoftmaxRegression::new(3, 3, 0.0);
    let mut p = vec![0.0; 4 * 3];
    for j in 0..3 {
        p[j * 3 + j] = 40.0;
    }
    m.set_params(&p);
    let rows: Vec<Vec<f64>> = classes
        .iter()
        .map(|&c| {
            let mut v = vec![0.0; 3];
            v[c] = 1.0;
            v
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let t = Table::from_columns(
        Schema::new(&[("id", ColType::Int)]),
        vec![Column::Int((0..classes.len() as i64).collect())],
    )
    .with_features(Matrix::from_rows(&refs));
    let mut db = Database::new();
    db.register("t", t);
    (db, m)
}

#[test]
fn predict_keyed_grouping_merges_duplicate_class_labels() {
    use rain_sql::Engine;
    let (db, m) = dup_class_db();
    for engine in [Engine::Tuple, Engine::Vectorized] {
        for debug in [false, true] {
            let opts = ExecOptions::with_debug(debug).on(engine);
            let out =
                run_query(&db, &m, "SELECT COUNT(*) FROM t GROUP BY predict(*)", opts).unwrap();
            // Key column comes from the GroupKey::Predict schema branch.
            assert_eq!(out.n_key_cols, 1);
            assert_eq!(out.table.schema().col(0).name, "predict");
            assert_eq!(out.table.schema().col(0).ty, ColType::Int);
            // Duplicate labels merge into one group per class, in class
            // order: class 0 × 1 row, class 1 × 3 rows, class 2 × 2 rows.
            assert_eq!(
                out.table.to_tsv(),
                "predict\tcount\n0\t1\n1\t3\n2\t2\n",
                "[{engine:?} debug={debug}]"
            );

            // SUM(predict(*)) keyed by predict(*): per-class sums are
            // class × multiplicity.
            let out = run_query(
                &db,
                &m,
                "SELECT SUM(predict(t)) FROM t t GROUP BY predict(t)",
                opts,
            )
            .unwrap();
            assert_eq!(
                out.table.to_tsv(),
                "predict\tsum\n0\t0\n1\t3\n2\t4\n",
                "[{engine:?} debug={debug}]"
            );
        }
    }
}

#[test]
fn predict_key_schema_uniquifies_colliding_names() {
    use rain_sql::Engine;
    let (db, m) = dup_class_db();
    for engine in [Engine::Tuple, Engine::Vectorized] {
        // An aggregate aliased to the key's reserved name must be
        // uniquified, not panic or shadow the key column.
        let out = run_query(
            &db,
            &m,
            "SELECT COUNT(*) AS predict FROM t GROUP BY predict(*)",
            ExecOptions::debug().on(engine),
        )
        .unwrap();
        let names: Vec<&str> = out.table.schema().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["predict", "predict_2"], "{engine:?}");
    }
}

#[test]
fn two_predict_keys_group_and_uniquify() {
    use rain_sql::Engine;
    let (mut db, m) = dup_class_db();
    let t = db.table("t").unwrap().clone();
    db.register("u", t);
    let sql = "SELECT predict(a), predict(b), COUNT(*) FROM t a, u b \
               WHERE a.id = b.id GROUP BY predict(a), predict(b)";
    for engine in [Engine::Tuple, Engine::Vectorized] {
        for debug in [false, true] {
            let out = run_query(&db, &m, sql, ExecOptions::with_debug(debug).on(engine)).unwrap();
            let names: Vec<&str> = out.table.schema().iter().map(|c| c.name.as_str()).collect();
            assert_eq!(names, ["predict", "predict_2", "count"]);
            // The self-join pairs each row with itself, so only diagonal
            // class groups exist, with duplicate labels merged.
            assert_eq!(
                out.table.to_tsv(),
                "predict\tpredict_2\tcount\n0\t0\t1\n1\t1\t3\n2\t2\t2\n",
                "[{engine:?} debug={debug}]"
            );
            if debug {
                // Discrete evaluation of the captured per-cell provenance
                // must reproduce the concrete counts.
                let preds = out.predvars.preds().to_vec();
                for (ri, cells) in out.agg_cells.iter().enumerate() {
                    let concrete = match out.table.value(ri, 2) {
                        Value::Int(v) => v as f64,
                        other => panic!("unexpected {other:?}"),
                    };
                    assert_eq!(cells[0].eval_discrete(&preds), concrete);
                }
            }
        }
    }
}
