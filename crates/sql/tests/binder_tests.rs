//! Binder integration tests: one test per [`BindError`] variant plus the
//! positive name-resolution behaviours (alias scoping, star expansion,
//! conjunct splitting, GROUP BY key binding).

use rain_linalg::Matrix;
use rain_sql::binder::{bind, BExpr, BoundStatement, GroupKey, QueryKind};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{parse_select, BindError, Database};

/// users(id int, name str) with features; logins(id int, active bool)
/// without features.
fn db() -> Database {
    let mut db = Database::new();
    let users = Table::from_columns(
        Schema::new(&[("id", ColType::Int), ("name", ColType::Str)]),
        vec![
            Column::Int(vec![1, 2]),
            Column::Str(vec!["a".into(), "b".into()]),
        ],
    )
    .with_features(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
    db.register("users", users);
    let logins = Table::from_columns(
        Schema::new(&[("id", ColType::Int), ("active", ColType::Bool)]),
        vec![Column::Int(vec![1, 2]), Column::Bool(vec![true, false])],
    );
    db.register("logins", logins);
    db
}

fn bind_str(sql: &str) -> Result<BoundStatement, BindError> {
    bind(&parse_select(sql).unwrap(), &db())
}

// ---- one test per BindError variant ----------------------------------

#[test]
fn unknown_table() {
    let err = bind_str("SELECT * FROM missing").unwrap_err();
    assert_eq!(err, BindError::UnknownTable("missing".into()));
    assert!(err.to_string().contains("unknown table"));
}

#[test]
fn duplicate_alias() {
    let err = bind_str("SELECT * FROM users u, logins u").unwrap_err();
    assert_eq!(err, BindError::DuplicateAlias("u".into()));
    // A table joined with itself under distinct aliases is fine.
    assert!(bind_str("SELECT COUNT(*) FROM users a, users b WHERE a.id = b.id").is_ok());
}

#[test]
fn unknown_column_unqualified_and_qualified() {
    let err = bind_str("SELECT name FROM users WHERE missing = 1").unwrap_err();
    assert_eq!(
        err,
        BindError::UnknownColumn {
            qualifier: None,
            name: "missing".into()
        }
    );
    let err = bind_str("SELECT u.ghost FROM users u").unwrap_err();
    assert_eq!(
        err,
        BindError::UnknownColumn {
            qualifier: Some("u".into()),
            name: "ghost".into()
        }
    );
    // `active` lives in logins, not users.
    let err = bind_str("SELECT name FROM users WHERE active = true").unwrap_err();
    assert!(matches!(err, BindError::UnknownColumn { .. }));
}

#[test]
fn ambiguous_column() {
    let err = bind_str("SELECT * FROM users u, logins l WHERE id = 1").unwrap_err();
    assert_eq!(err, BindError::AmbiguousColumn("id".into()));
    // Qualifying resolves the ambiguity.
    assert!(bind_str("SELECT * FROM users u, logins l WHERE u.id = 1").is_ok());
    // Unqualified names unique to one relation resolve.
    assert!(bind_str("SELECT * FROM users u, logins l WHERE name = 'a'").is_ok());
}

#[test]
fn unknown_alias() {
    let err = bind_str("SELECT COUNT(*) FROM users u WHERE ghost.id = 1").unwrap_err();
    assert_eq!(err, BindError::UnknownAlias("ghost".into()));
    let err = bind_str("SELECT COUNT(*) FROM users u WHERE predict(ghost) = 1").unwrap_err();
    assert_eq!(err, BindError::UnknownAlias("ghost".into()));
}

#[test]
fn ambiguous_predict_star() {
    let err = bind_str("SELECT COUNT(*) FROM users u, users v WHERE predict(*) = 1").unwrap_err();
    assert_eq!(err, BindError::AmbiguousPredict);
    assert!(bind_str("SELECT COUNT(*) FROM users WHERE predict(*) = 1").is_ok());
}

#[test]
fn missing_features() {
    let err = bind_str("SELECT COUNT(*) FROM logins WHERE predict(*) = 1").unwrap_err();
    assert_eq!(err, BindError::MissingFeatures("logins".into()));
    assert!(err.to_string().contains("feature matrix"));
}

#[test]
fn type_mismatch_comparison() {
    let err = bind_str("SELECT COUNT(*) FROM users WHERE name = 1").unwrap_err();
    assert!(
        matches!(
            err,
            BindError::TypeMismatch {
                context: "comparison",
                ..
            }
        ),
        "unexpected {err:?}"
    );
    // NULL compares with anything (yields no ordering at run time).
    assert!(bind_str("SELECT COUNT(*) FROM users WHERE name = null").is_ok());
    // Numeric types compare freely among themselves.
    assert!(bind_str("SELECT COUNT(*) FROM users WHERE id = 1.5").is_ok());
}

#[test]
fn type_mismatch_arithmetic() {
    let err = bind_str("SELECT COUNT(*) FROM users WHERE name + 1 = 2").unwrap_err();
    assert!(
        matches!(
            err,
            BindError::TypeMismatch {
                context: "arithmetic",
                ..
            }
        ),
        "unexpected {err:?}"
    );
}

#[test]
fn type_mismatch_like() {
    let err = bind_str("SELECT COUNT(*) FROM users WHERE id LIKE '%x%'").unwrap_err();
    assert!(
        matches!(
            err,
            BindError::TypeMismatch {
                context: "LIKE",
                ..
            }
        ),
        "unexpected {err:?}"
    );
    assert!(bind_str("SELECT COUNT(*) FROM users WHERE name LIKE '%x%'").is_ok());
}

#[test]
fn invalid_predict_placements() {
    // Inside arithmetic.
    let err = bind_str("SELECT COUNT(*) FROM users WHERE predict(*) + 1 = 2").unwrap_err();
    assert!(matches!(err, BindError::InvalidPredict(m) if m.contains("arithmetic")));
    // As a bare boolean predicate.
    let err = bind_str("SELECT COUNT(*) FROM users WHERE predict(*)").unwrap_err();
    assert!(matches!(err, BindError::InvalidPredict(m) if m.contains("bare boolean")));
    // Under LIKE.
    let err = bind_str("SELECT COUNT(*) FROM users WHERE predict(*) LIKE '%x%'").unwrap_err();
    assert!(matches!(err, BindError::InvalidPredict(m) if m.contains("LIKE")));
    // Non-bare in the select list.
    let err = bind_str("SELECT (predict(*) = 1) FROM users").unwrap_err();
    assert!(matches!(err, BindError::InvalidPredict(m) if m.contains("select list")));
}

#[test]
fn invalid_aggregate_shapes() {
    let err = bind_str("SELECT COUNT(id) FROM users").unwrap_err();
    assert!(matches!(err, BindError::InvalidAggregate(m) if m.contains("COUNT(expr)")));
    let err = bind_str("SELECT SUM(predict(u) * predict(u)) FROM users u").unwrap_err();
    assert!(
        matches!(err, BindError::InvalidAggregate(_)),
        "unexpected {err:?}"
    );
}

#[test]
fn invalid_group_by() {
    // GROUP BY without aggregates.
    let err = bind_str("SELECT name FROM users GROUP BY name").unwrap_err();
    assert!(matches!(err, BindError::InvalidGroupBy(m) if m.contains("aggregates")));
    // Non-column, non-predict key.
    let err = bind_str("SELECT COUNT(*) FROM users GROUP BY id + 1").unwrap_err();
    assert!(matches!(err, BindError::InvalidGroupBy(m) if m.contains("columns or predict")));
}

#[test]
fn non_key_select_item() {
    let err = bind_str("SELECT name, COUNT(*) FROM users GROUP BY id").unwrap_err();
    assert_eq!(err, BindError::NonKeySelectItem("name".into()));
    // Key items are fine.
    assert!(bind_str("SELECT name, COUNT(*) FROM users GROUP BY name").is_ok());
}

#[test]
fn star_with_aggregate() {
    let err = bind_str("SELECT *, COUNT(*) FROM users").unwrap_err();
    assert_eq!(err, BindError::StarWithAggregate);
}

// ---- positive binding behaviour --------------------------------------

#[test]
fn binds_columns_and_splits_conjuncts() {
    let q = bind_str(
        "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id \
         WHERE l.active = true AND predict(u) = 1",
    )
    .unwrap();
    assert_eq!(q.rels.len(), 2);
    assert_eq!(q.conjuncts.len(), 3);
    // The ON condition resolves to rel 0 / rel 1 id columns.
    match &q.conjuncts[0] {
        BExpr::Cmp { left, right, .. } => {
            assert_eq!(**left, BExpr::Col { rel: 0, col: 0 });
            assert_eq!(**right, BExpr::Col { rel: 1, col: 0 });
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn rels_carry_stable_catalog_ids() {
    let q = bind_str("SELECT COUNT(*) FROM users u, logins l WHERE u.id = l.id").unwrap();
    let db = db();
    assert_eq!(Some(q.rels[0].id), db.resolve("users"));
    assert_eq!(Some(q.rels[1].id), db.resolve("logins"));
    assert_eq!(q.rels[0].alias, "u");
}

#[test]
fn star_expansion_qualifies_on_multi_rel() {
    let q = bind_str("SELECT * FROM users u, logins l WHERE u.id = l.id").unwrap();
    match q.kind {
        QueryKind::Select { items } => {
            let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
            assert_eq!(names, vec!["u_id", "u_name", "l_id", "l_active"]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn group_by_key_binding() {
    let q = bind_str("SELECT COUNT(*) AS n FROM users GROUP BY name").unwrap();
    match q.kind {
        QueryKind::Aggregate { keys, aggs } => {
            assert_eq!(keys.len(), 1);
            assert!(matches!(keys[0], GroupKey::Col { name: ref n, .. } if n == "name"));
            assert_eq!(aggs[0].name, "n");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn group_by_predict_binds() {
    let q = bind_str("SELECT COUNT(*) FROM users GROUP BY predict(*)").unwrap();
    match q.kind {
        QueryKind::Aggregate { keys, .. } => {
            assert_eq!(keys, vec![GroupKey::Predict { rel: 0 }]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn bind_errors_flow_through_run_query() {
    use rain_model::LogisticRegression;
    use rain_sql::{run_query, ExecOptions, QueryError};
    let model = LogisticRegression::new(2, 0.0);
    let err = run_query(
        &db(),
        &model,
        "SELECT * FROM missing",
        ExecOptions::default(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        QueryError::Bind(BindError::UnknownTable("missing".into()))
    );
    assert!(err.to_string().starts_with("bind error:"));
}
