//! Observability differential tests.
//!
//! Instrumentation must be a pure observer: running with tracing enabled
//! has to produce **bit-identical** output to running with it disabled
//! (which in turn is the seed behavior — disabled spans don't read
//! clocks, allocate, or touch the evaluator). The tests also pin what a
//! harvested trace contains: every pipeline operator, rows-in/rows-out
//! counters, per-morsel worker spans matching `explain_exec`'s reported
//! plan shape, and the incremental prepare/refresh stages.

use rain_linalg::{Matrix, RainRng};
use rain_model::{Classifier, LogisticRegression};
use rain_obs::{take_subtree, Span, TraceNode};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, optimize, parse_select, prepare_with, run_query, Database, Engine, ExecOptions,
    QueryOutput,
};

fn step_model() -> LogisticRegression {
    let mut m = LogisticRegression::new(1, 0.0);
    m.set_params(&[50.0, 0.0]);
    m
}

/// One featured table big enough to engage the morsel-parallel scan.
fn big_db(n: usize) -> Database {
    let mut rng = RainRng::seed_from_u64(0x0B5);
    let feats: Vec<[f64; 1]> = (0..n)
        .map(|_| [if rng.bernoulli(0.5) { 1.0 } else { -1.0 }])
        .collect();
    let refs: Vec<&[f64]> = feats.iter().map(|r| &r[..]).collect();
    let t = Table::from_columns(
        Schema::new(&[("x", ColType::Int), ("k", ColType::Int)]),
        vec![
            Column::Int((0..n).map(|i| (i % 997) as i64).collect()),
            Column::Int((0..n).map(|i| (i % 53) as i64).collect()),
        ],
    )
    .with_features(Matrix::from_rows(&refs));
    let mut db = Database::new();
    db.register("t", t);
    db
}

fn assert_identical(label: &str, a: &QueryOutput, b: &QueryOutput) {
    assert_eq!(a.table.to_tsv(), b.table.to_tsv(), "{label}: rows");
    assert_eq!(a.row_prov, b.row_prov, "{label}: row provenance");
    assert_eq!(a.agg_cells, b.agg_cells, "{label}: agg provenance");
    assert_eq!(
        a.predvars.infos(),
        b.predvars.infos(),
        "{label}: var sources"
    );
    assert_eq!(
        a.predvars.preds(),
        b.predvars.preds(),
        "{label}: predictions"
    );
}

const QUERIES: [&str; 4] = [
    "SELECT COUNT(*) FROM t WHERE x < 500",
    "SELECT COUNT(*) FROM t WHERE x < 500 AND predict(t) = 1",
    "SELECT k, SUM(x) FROM t WHERE x < 800 GROUP BY k",
    "SELECT COUNT(*) FROM t a, t b WHERE a.x = b.x AND a.k < 5 AND predict(a) = 1",
];

/// Tracing on vs. off changes nothing about query results — rows,
/// provenance, variable ids, and predictions are bit-identical (and the
/// disabled runs are the seed behavior: inert spans do no work).
#[test]
fn enabled_instrumentation_is_bit_identical_to_disabled() {
    let db = big_db(12_000);
    let model = step_model();
    for sql in QUERIES {
        for debug in [false, true] {
            for threads in [1, 8] {
                let opts = ExecOptions::with_debug(debug).with_threads(threads);
                let label = format!("`{sql}` [debug={debug}, threads={threads}]");
                let off = run_query(&db, &model, sql, opts).unwrap();
                let traced = {
                    let _on = rain_obs::activate();
                    let root = Span::enter("query");
                    let id = root.id();
                    let out = run_query(&db, &model, sql, opts).unwrap();
                    drop(root);
                    (out, take_subtree(id))
                };
                assert_identical(&label, &off, &traced.0);
                let tree = traced.1.unwrap_or_else(|| panic!("{label}: no trace"));
                assert!(tree.size() > 1, "{label}: empty trace tree");
            }
        }
    }
}

fn counter(node: &TraceNode, key: &str) -> Option<u64> {
    node.counters
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
}

/// A traced query records every pipeline stage with row counters.
#[test]
fn trace_tree_covers_the_pipeline_operators() {
    let db = big_db(12_000);
    let model = step_model();
    let sql = "SELECT COUNT(*) FROM t a, t b WHERE a.x = b.x AND a.k < 5 AND predict(a) = 1";
    let _on = rain_obs::activate();
    let root = Span::enter("query");
    let id = root.id();
    run_query(&db, &model, sql, ExecOptions::debug().with_threads(8)).unwrap();
    drop(root);
    let tree = take_subtree(id).expect("trace recorded");
    for stage in [
        "parse",
        "bind",
        "optimize",
        "scan",
        "join",
        "filter",
        "aggregate",
    ] {
        assert!(tree.find(stage).is_some(), "missing span: {stage}");
    }
    // The join splits into hash build + morsel-sharded probe.
    let join = tree.find("join").unwrap();
    assert!(join.find("build").is_some(), "missing build under join");
    let probe = join.find("probe").expect("missing probe under join");
    assert!(counter(probe, "rows_in").is_some());
    assert!(counter(probe, "rows_out").is_some());
    let scan = tree.find("scan").unwrap();
    assert_eq!(counter(scan, "rows_in"), Some(12_000));
    assert!(counter(scan, "rows_out").unwrap() <= 12_000);
}

/// `explain_exec` reports the resolved thread count and per-scan morsel
/// counts, and a traced run records exactly that many per-morsel worker
/// spans under the scan.
#[test]
fn explain_exec_matches_traced_morsel_counts() {
    let n = 20_000;
    let db = big_db(n);
    let model = step_model();
    let sql = "SELECT COUNT(*) FROM t WHERE x < 500";
    let plan = optimize(bind(&parse_select(sql).unwrap(), &db).unwrap(), &db);

    let explain = plan.explain_exec(&db, Engine::Vectorized, 4);
    assert!(
        explain.contains("Engine: vectorized threads=4"),
        "missing resolved thread count:\n{explain}"
    );
    let morsels: usize = explain
        .lines()
        .find_map(|l| l.split(" morsels=").nth(1))
        .expect("scan line carries a morsel count")
        .trim()
        .parse()
        .unwrap();
    assert!(morsels > 1, "large scan should shard: {explain}");

    let _on = rain_obs::activate();
    let root = Span::enter("query");
    let id = root.id();
    run_query(&db, &model, sql, ExecOptions::default().with_threads(4)).unwrap();
    drop(root);
    let tree = take_subtree(id).unwrap();
    let scan = tree.find("scan").unwrap();
    let worker_spans = scan.children.iter().filter(|c| c.name == "morsel").count();
    assert_eq!(
        worker_spans, morsels,
        "explain vs trace disagree:\n{explain}"
    );
    // Morsel items cover the whole table exactly once.
    let items: u64 = scan
        .children
        .iter()
        .filter(|c| c.name == "morsel")
        .map(|c| counter(c, "items").unwrap())
        .sum();
    assert_eq!(items, n as u64);

    // The tuple oracle is always sequential and says so.
    let tuple = plan.explain_exec(&db, Engine::Tuple, 4);
    assert!(tuple.contains("Engine: tuple threads=1"), "{tuple}");
    assert!(!tuple.contains("morsels="), "{tuple}");
}

/// 16 emitter threads record nested span trees while 2 harvesters drain
/// completed roots concurrently: no span is lost, none is duplicated,
/// and each harvested tree is stitched in deterministic emission order
/// — even though writers land in per-thread shards and harvests race
/// both the writers and each other.
#[test]
fn concurrent_emitters_and_harvesters_lose_and_duplicate_nothing() {
    use std::sync::{mpsc, Arc, Mutex};
    const EMITTERS: usize = 16;
    const SPANS_PER: usize = 24;

    let (tx, rx) = mpsc::channel::<(rain_obs::SpanId, u64)>();
    let rx = Arc::new(Mutex::new(rx));
    let emitters: Vec<_> = (0..EMITTERS)
        .map(|w| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _on = rain_obs::activate();
                let mut root = Span::enter("stress-root");
                root.add("worker", w as u64);
                for i in 0..SPANS_PER {
                    let mut child = Span::enter("stress-child");
                    child.add("i", i as u64);
                    let _grand = Span::enter("stress-grand");
                }
                let id = root.id();
                drop(root);
                tx.send((id, w as u64)).unwrap();
            })
        })
        .collect();
    drop(tx);

    let harvested = Arc::new(Mutex::new(Vec::<(u64, TraceNode)>::new()));
    let harvesters: Vec<_> = (0..2)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let harvested = Arc::clone(&harvested);
            std::thread::spawn(move || loop {
                // Hold the receiver lock only for the recv, not the
                // harvest, so both harvesters actually drain in parallel.
                let msg = rx.lock().unwrap().recv();
                let Ok((id, w)) = msg else { break };
                let tree = take_subtree(id).expect("completed root is harvestable");
                harvested.lock().unwrap().push((w, tree));
            })
        })
        .collect();
    for h in emitters {
        h.join().unwrap();
    }
    for h in harvesters {
        h.join().unwrap();
    }

    let harvested = harvested.lock().unwrap();
    assert_eq!(
        harvested.len(),
        EMITTERS,
        "every root harvested exactly once"
    );
    let mut workers: Vec<u64> = harvested
        .iter()
        .map(|(w, tree)| {
            assert_eq!(counter(tree, "worker"), Some(*w), "trees don't bleed");
            let children: Vec<&TraceNode> = tree
                .children
                .iter()
                .filter(|c| c.name == "stress-child")
                .collect();
            assert_eq!(children.len(), SPANS_PER, "lost or duplicated child spans");
            // Deterministic stitching: children come back in emission
            // order, each with its one grandchild intact.
            let idxs: Vec<u64> = children.iter().map(|c| counter(c, "i").unwrap()).collect();
            let want: Vec<u64> = (0..SPANS_PER as u64).collect();
            assert_eq!(idxs, want, "children out of emission order");
            for c in children {
                assert_eq!(c.children.len(), 1, "grandchild lost or duplicated");
                assert_eq!(c.children[0].name, "stress-grand");
            }
            *w
        })
        .collect();
    workers.sort_unstable();
    let want: Vec<u64> = (0..EMITTERS as u64).collect();
    assert_eq!(workers, want, "a worker's root was lost or harvested twice");
}

/// The always-on sampler's on/off cadence (trace 1-in-N executions,
/// nothing the rest of the time) never changes what a query returns:
/// sampled and unsampled executions are bit-identical to each other and
/// to the never-traced baseline.
#[test]
fn sampled_execution_is_bit_identical_to_unsampled() {
    let db = big_db(12_000);
    let model = step_model();
    for sql in QUERIES {
        let opts = ExecOptions::with_debug(true).with_threads(8);
        let label = format!("`{sql}`");
        let baseline = run_query(&db, &model, sql, opts).unwrap();
        // Alternate sampling windows the way the serve layer does.
        for pass in 0..4 {
            let sampling = pass % 2 == 0;
            let _window = sampling.then(rain_obs::activate);
            let root = Span::enter("query");
            let id = root.id();
            let out = run_query(&db, &model, sql, opts).unwrap();
            drop(root);
            let tree = take_subtree(id);
            assert_identical(&format!("{label} pass {pass}"), &baseline, &out);
            if sampling {
                let tree = tree.unwrap_or_else(|| panic!("{label}: sampled pass lost its trace"));
                assert!(tree.size() > 1, "{label}: sampled trace is empty");
            }
        }
    }
}

/// Parallel operators record a **thread-independent** span shape. The
/// partitioned hash build, the partitioned grouped aggregate, and the
/// morselized cross join size their worker spans from the input alone
/// (`partition_count` and morsel counts are functions of row counts, not
/// of the thread budget), so a trace at `threads = 2` and `threads = 8`
/// must have identical names, nesting, and deterministic counters.
/// (`threads = 1` runs the sequential paths and records no worker
/// children, so the sweep compares the two parallel budgets.)
#[test]
fn parallel_span_shape_is_thread_independent() {
    let mut db = big_db(12_000);
    // Three rows: the small side of a scaled cross join.
    let small = Table::from_columns(
        Schema::new(&[("z", ColType::Int)]),
        vec![Column::Int(vec![0, 1, 2])],
    )
    .with_features(Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0]]));
    db.register("s", small);
    let model = step_model();

    // Project a trace to its deterministic skeleton: names, structural
    // counters, and children canonicalized by sorting (parallel workers
    // finish in nondeterministic order; their *set* of spans is not).
    fn shape(node: &TraceNode) -> String {
        const KEEP: [&str; 7] = [
            "index",
            "items",
            "groups",
            "partitions",
            "morsels",
            "rows_in",
            "rows_out",
        ];
        let mut counters: Vec<String> = node
            .counters
            .iter()
            .filter(|(k, _)| KEEP.contains(k))
            .map(|&(k, v)| format!("{k}={v}"))
            .collect();
        counters.sort();
        let mut kids: Vec<String> = node.children.iter().map(shape).collect();
        kids.sort();
        format!("{}[{}]({})", node.name, counters.join(","), kids.join(" "))
    }

    let cases = [
        // Typed hash join: partitioned build under `join` → `build`. The
        // filter is mostly unselective on purpose: the cost-based
        // optimizer builds over the filtered (cheaper) side, and both
        // sides must stay above the parallel threshold so the build
        // partitions whichever order it picks.
        "SELECT COUNT(*) FROM t a, t b WHERE a.x = b.x AND a.k < 48",
        // Partitioned grouped aggregation (53 groups over 12k rows).
        "SELECT k, SUM(x) FROM t WHERE x < 800 GROUP BY k",
        // Morselized cross join feeding a partitioned grouped aggregate.
        "SELECT z, COUNT(*) FROM t a, s c GROUP BY z",
    ];
    for sql in cases {
        let mut shapes = Vec::new();
        for threads in [2, 8] {
            let _on = rain_obs::activate();
            let root = Span::enter("query");
            let id = root.id();
            run_query(
                &db,
                &model,
                sql,
                ExecOptions::default().with_threads(threads),
            )
            .unwrap();
            drop(root);
            let tree = take_subtree(id).unwrap();
            if threads == 8 {
                // The parallel operators actually recorded worker spans.
                if sql.contains("a.x = b.x") {
                    let build = tree.find("build").expect("build span");
                    let parts = build
                        .children
                        .iter()
                        .filter(|c| c.name == "partition")
                        .count() as u64;
                    assert!(parts > 1, "`{sql}`: build did not partition");
                    assert_eq!(counter(build, "partitions"), Some(parts));
                }
                if sql.contains("GROUP BY") {
                    let agg = tree.find("aggregate").expect("aggregate span");
                    let parts = agg
                        .children
                        .iter()
                        .filter(|c| c.name == "partition")
                        .count() as u64;
                    assert!(parts > 1, "`{sql}`: aggregate did not partition");
                    assert_eq!(counter(agg, "partitions"), Some(parts));
                }
                if sql.contains(" s c") {
                    let cross = tree.find("cross").expect("cross span");
                    assert!(
                        cross.children.iter().filter(|c| c.name == "morsel").count() > 1,
                        "`{sql}`: cross join did not morselize"
                    );
                }
            }
            shapes.push(shape(&tree));
        }
        assert_eq!(
            shapes[0], shapes[1],
            "`{sql}`: span shape varies with thread count"
        );
    }
}

/// The incremental subsystem's stages appear in traces: skeleton capture
/// inside prepare, sharded inference and formula re-eval inside refresh.
#[test]
fn prepare_and_refresh_record_their_stages() {
    let db = big_db(12_000);
    let model = step_model();
    let sql = "SELECT COUNT(*) FROM t WHERE x < 500 AND predict(t) = 1";
    let plan = optimize(bind(&parse_select(sql).unwrap(), &db).unwrap(), &db);

    let _on = rain_obs::activate();
    let root = Span::enter("run");
    let id = root.id();
    let pq = prepare_with(&db, &model, &plan, Engine::Vectorized, 4).unwrap();
    let out = pq.refresh_threaded(&db, &model, 4).unwrap();
    drop(root);
    assert!(!out.predvars.is_empty());

    let tree = take_subtree(id).unwrap();
    let prep = tree.find("prepare").expect("prepare span");
    assert!(prep.find("capture").is_some(), "capture under prepare");
    assert!(prep.find("pack-features").is_some());
    assert!(counter(prep, "n_vars").unwrap() > 0);
    let refresh = tree.find("refresh").expect("refresh span");
    let inference = refresh.find("inference").expect("inference under refresh");
    // Enough variables to shard: per-shard worker spans attach.
    assert!(
        inference.children.iter().any(|c| c.name == "shard"),
        "sharded inference records worker spans"
    );
    assert!(refresh.find("re-eval").is_some(), "re-eval under refresh");
}
