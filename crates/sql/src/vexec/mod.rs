//! `vexec` — the vectorized columnar execution engine.
//!
//! The default engine behind [`execute`](crate::exec::execute)
//! ([`Engine::Vectorized`](crate::exec::Engine)). Instead of driving one
//! tuple at a time through scan → join → filter, it works on columnar
//! batches end to end:
//!
//! - The **scan** walks each base table in [`batch::BATCH_SIZE`] windows,
//!   evaluating pushed-down filters with compiled predicate
//!   [`kernels`] over zero-copy typed column slices and compacting a
//!   selection vector ([`batch::SelVec`]).
//! - The **join** hash-joins on typed key columns (canonical-`f64`-bit
//!   and `&str` maps for single `Col = Col` keys; canonical key vectors
//!   otherwise — key equality always matches `=` semantics), emitting
//!   struct-of-arrays row sets ([`batch::RowSet`]) — no per-tuple
//!   row-vector allocations.
//! - **Residual conjuncts** vectorize while they stay model-free; from
//!   the first `predict()` conjunct on, tuples flow through the shared
//!   evaluator so prediction variables and provenance formulas are
//!   created in exactly the tuple engine's order.
//! - The **aggregator** accumulates ungrouped model-free aggregates
//!   straight off the column slices and bridges everything else into the
//!   shared finalizer.
//!
//! **Morsel parallelism.** With a thread budget
//! ([`ExecOptions::threads`](crate::exec::ExecOptions)) and large enough
//! inputs, scans and hash-join probes shard into contiguous *morsels*
//! executed by `std::thread::scope` workers and merged in morsel order —
//! the output stream is the sequential stream, bit for bit, at every
//! thread count. The model-dependent tail (prediction variables,
//! provenance, finalization) always runs sequentially on the caller's
//! thread, which is what keeps variable-creation order a pure function
//! of the plan and the data.
//!
//! **Provenance invariant.** Both engines share one evaluation core
//! (`eval`) and enumerate tuples in the same order, so debug-mode output
//! is *bit-identical*: same rows, same variable ids, same
//! [`BoolProv`] polynomials. The randomized differential suite
//! (`tests/vexec_differential.rs`) holds both engines to that — across
//! `threads ∈ {1, 2, 8}`.

pub mod batch;
pub mod kernels;

mod agg;
pub(crate) mod join;
pub(crate) mod morsel;
mod scan;

use crate::binder::{BExpr, QueryKind};
use crate::catalog::Database;
use crate::eval::{self, EvalCtx, Sym};
use crate::exec::{ExecOptions, QueryOutput};
use crate::incremental::PipelineTrace;
use crate::plan::QueryPlan;
use crate::prov::BoolProv;
use crate::table::{Column, Table};
use crate::QueryError;
use batch::RowSet;
use rain_model::Classifier;

/// Execute a plan on the vectorized engine (`opts.engine` is ignored —
/// the caller already dispatched; `debug` and `threads` apply).
pub(crate) fn run(
    db: &Database,
    model: &dyn Classifier,
    query: &QueryPlan,
    opts: &ExecOptions,
) -> Result<QueryOutput, QueryError> {
    let mut ctx = EvalCtx::new(db, model, query, opts.debug).with_threads(opts.resolved_threads());
    let rows = join_pipeline(&mut ctx, None)?;
    match &query.kind {
        QueryKind::Select { items } => project_rowset(&mut ctx, rows, items),
        QueryKind::Aggregate { keys, aggs } => agg::aggregate_rowset(&mut ctx, rows, keys, aggs),
    }
}

/// Build the joined candidate set with pushdown, mirroring the tuple
/// engine's schedule (scan order, equi-key selection, conjunct order).
/// With `trace`, records the per-relation scan selections and per-step
/// join strategies for skeleton capture ([`crate::incremental::prepare`]).
pub(crate) fn join_pipeline(
    ctx: &mut EvalCtx,
    mut trace: Option<&mut PipelineTrace>,
) -> Result<RowSet, QueryError> {
    let query = ctx.query;
    let debug = ctx.debug;
    let n_rels = query.rels.len();
    let mut applied = vec![false; query.conjuncts.len()];
    let footprints = eval::conjunct_footprints(query);

    let mut rows = RowSet::seed(scan::scan(ctx, 0, trace.as_deref_mut())?, debug);
    apply_conjuncts(ctx, &mut rows, &mut applied, &footprints, 1)?;

    for rel in 1..n_rels {
        let equi = eval::equi_keys(query, &applied, &footprints, rel);
        let right_rows = scan::scan(ctx, rel, trace.as_deref_mut())?;
        let mut join_span = rain_obs::Span::enter("join");
        join_span.add("rows_in", rows.len() as u64);
        join_span.add("right_rows", right_rows.len() as u64);
        let step;
        rows = if equi.is_empty() {
            step = "nested-loop";
            join::cross_join(rows, &right_rows, debug, ctx.threads)
        } else {
            for (_, _, ci) in &equi {
                applied[*ci] = true;
            }
            let keys: Vec<(BExpr, BExpr)> = equi.into_iter().map(|(le, re, _)| (le, re)).collect();
            // Index-nested-loop path: the plan picked it and the catalog
            // still has the hash index — otherwise fall back to the hash
            // join, which builds the identical per-key row lists itself.
            if let Some(ix) = inl_index(ctx.db, query, &keys, rel) {
                step = "index-nested-loop";
                join::inl_join(ctx, rows, &keys[0].0, ix)?
            } else {
                let (joined, strat) = join::hash_join(ctx, rows, &right_rows, &keys, rel)?;
                step = strat.describe();
                joined
            }
        };
        join_span.add("rows_out", rows.len() as u64);
        drop(join_span);
        if let Some(t) = trace.as_deref_mut() {
            t.join_steps.push((step, rows.len()));
        }
        apply_conjuncts(ctx, &mut rows, &mut applied, &footprints, rel + 1)?;
    }
    Ok(rows)
}

/// Resolve the index an [`JoinAlgo::IndexNestedLoop`] step should probe,
/// if the plan chose one for joining relation `rel` *and* the live
/// catalog can still serve it with the single-key shape the planner saw.
/// `None` means the hash join runs instead — same output either way.
fn inl_index<'a>(
    db: &'a Database,
    query: &QueryPlan,
    keys: &[(BExpr, BExpr)],
    rel: usize,
) -> Option<&'a crate::index::TableIndex> {
    use crate::plan::JoinAlgo;
    let JoinAlgo::IndexNestedLoop { col } = *query.join_algos.get(rel - 1)? else {
        return None;
    };
    let [(
        _,
        BExpr::Col {
            rel: brel,
            col: bcol,
        },
    )] = keys
    else {
        return None;
    };
    if *brel != rel || *bcol != col {
        return None;
    }
    db.index_on(query.rels[rel].id, col, crate::index::IndexKind::Hash)
}

/// Apply every not-yet-applied conjunct whose footprint fits in the first
/// `in_scope` relations. Model-free conjuncts preceding the first model
/// conjunct filter vectorized (kernel masks over the row set); the rest
/// run per tuple through the shared evaluator, preserving the tuple
/// engine's variable-creation and provenance order exactly.
fn apply_conjuncts(
    ctx: &mut EvalCtx,
    rows: &mut RowSet,
    applied: &mut [bool],
    footprints: &[std::collections::BTreeSet<usize>],
    in_scope: usize,
) -> Result<(), QueryError> {
    let query = ctx.query;
    let todo: Vec<usize> = (0..applied.len())
        .filter(|&ci| !applied[ci] && footprints[ci].iter().all(|&r| r < in_scope))
        .collect();
    if todo.is_empty() {
        return Ok(());
    }
    for &ci in &todo {
        applied[ci] = true;
    }
    let mut span = rain_obs::Span::enter("filter");
    span.add("rows_in", rows.len() as u64);

    // The vectorizable prefix: model-free conjuncts up to the first one
    // that can create prediction variables. (A model conjunct must see
    // every tuple that survived the conjuncts *before* it — and none
    // that a *later* conjunct would have pruned first.)
    let split = todo
        .iter()
        .position(|&ci| query.conjuncts[ci].contains_predict())
        .unwrap_or(todo.len());
    let (prefix, suffix) = todo.split_at(split);

    let tables: Vec<&Table> = query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();
    let mut mask: Vec<bool> = Vec::new();
    for &ci in prefix {
        if rows.is_empty() {
            break;
        }
        let c = &query.conjuncts[ci];
        match kernels::compile(c, &tables) {
            Some(kernel) => {
                kernel.eval(&tables, &*rows, &mut mask);
                rows.retain_mask(&mask);
            }
            None => filter_scalar(ctx, rows, c)?,
        }
    }

    if suffix.is_empty() || rows.is_empty() {
        span.add("rows_out", rows.len() as u64);
        return Ok(());
    }
    // Per-tuple tail: identical control flow to the tuple engine.
    let n_rels = rows.n_rels();
    let mut buf = vec![0u32; n_rels];
    let mut write = 0;
    let n = rows.len();
    for i in 0..n {
        rows.gather(i, &mut buf);
        let mut prov = rows.take_prov(i);
        let mut keep = true;
        for &ci in suffix {
            match ctx.eval_pred(&query.conjuncts[ci], &buf)? {
                Sym::Const(false) => {
                    keep = false;
                    break;
                }
                Sym::Const(true) => {}
                Sym::Prov(f) => {
                    if ctx.debug {
                        prov = BoolProv::and(vec![prov, f]);
                    } else if !f.eval_discrete(ctx.reg.preds()) {
                        keep = false;
                        break;
                    }
                }
            }
        }
        if keep {
            rows.move_tuple(write, i);
            rows.set_prov(write, prov);
            write += 1;
        }
    }
    rows.truncate(write);
    span.add("rows_out", rows.len() as u64);
    Ok(())
}

/// Scalar fallback for a model-free conjunct with no kernel: evaluate per
/// tuple through the shared evaluator and compact in place. With a thread
/// budget and enough tuples, the keep-mask evaluates morsel-parallel in
/// scratch contexts (the conjunct is model-free, so workers create no
/// prediction variables) and the compaction applies it in tuple order —
/// the surviving sequence is the sequential one, bit for bit.
fn filter_scalar(ctx: &mut EvalCtx, rows: &mut RowSet, c: &BExpr) -> Result<(), QueryError> {
    let n_rels = rows.n_rels();
    let n = rows.len();
    if morsel::worth_parallel(ctx.threads, n) && !c.contains_predict() {
        let (db, model, query, debug) = (ctx.db, ctx.model, ctx.query, ctx.debug);
        let rows_ref = &*rows;
        let parts = morsel::run_morsels(ctx.threads, n, |start, end| {
            let mut wctx = EvalCtx::new(db, model, query, debug);
            let mut buf = vec![0u32; n_rels];
            let mut keep = Vec::with_capacity(end - start);
            for i in start..end {
                rows_ref.gather(i, &mut buf);
                keep.push(match wctx.eval_pred(c, &buf)? {
                    Sym::Const(b) => b,
                    // Defensive: model-free conjuncts fold to constants.
                    Sym::Prov(f) => f.eval_discrete(wctx.reg.preds()),
                });
            }
            Ok::<_, QueryError>(keep)
        });
        let mask = morsel::concat_results(parts)?;
        rows.retain_mask(&mask);
        return Ok(());
    }
    let mut buf = vec![0u32; n_rels];
    let mut write = 0;
    for i in 0..n {
        rows.gather(i, &mut buf);
        let keep = match ctx.eval_pred(c, &buf)? {
            Sym::Const(b) => b,
            // Defensive: model-free conjuncts always fold to constants.
            Sym::Prov(f) => f.eval_discrete(ctx.reg.preds()),
        };
        if keep {
            rows.move_tuple(write, i);
            write += 1;
        }
    }
    rows.truncate(write);
    Ok(())
}

/// Project a row set. Plain-column select lists in normal mode gather
/// output columns directly from the typed slices; everything else (debug
/// mode, expressions, `predict()` outputs) goes through the shared
/// finalizer.
fn project_rowset(
    ctx: &mut EvalCtx,
    rows: RowSet,
    items: &[(BExpr, String)],
) -> Result<QueryOutput, QueryError> {
    let mut span = rain_obs::Span::enter("project");
    span.add("rows_in", rows.len() as u64);
    let fast = !ctx.debug
        && items.iter().all(|(e, _)| {
            let BExpr::Col { rel, col } = e else {
                return false;
            };
            ctx.table_of(*rel).null_mask(*col).is_none()
        });
    if !fast {
        return eval::project(ctx, rows, items);
    }

    let mut schema = crate::table::Schema::default();
    for (e, name) in items {
        eval::push_unique(&mut schema, name, ctx.infer_type(e));
    }
    let columns: Vec<Column> = items
        .iter()
        .map(|(e, _)| {
            let BExpr::Col { rel, col } = e else {
                unreachable!("fast path is column-only")
            };
            gather_column(ctx.table_of(*rel).column(*col), rows.rel(*rel))
        })
        .collect();
    Ok(QueryOutput {
        table: Table::from_columns(schema, columns),
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 0,
        predvars: std::mem::take(&mut ctx.reg),
    })
}

/// Gather `src[rows[i]]` into a fresh output column.
fn gather_column(src: &Column, rows: &[u32]) -> Column {
    match src {
        Column::Bool(v) => Column::Bool(rows.iter().map(|&r| v[r as usize]).collect()),
        Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r as usize]).collect()),
        Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r as usize]).collect()),
        Column::Str(v) => Column::Str(rows.iter().map(|&r| v[r as usize].clone()).collect()),
    }
}
