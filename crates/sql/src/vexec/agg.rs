//! Batch-wise aggregation over struct-of-arrays row sets.
//!
//! Two tiers, both yielding byte-identical [`QueryOutput`]s:
//!
//! - A **columnar fast path** for ungrouped, model-free aggregates in
//!   normal mode (`COUNT(*)`, `SUM/AVG(col)`): accumulates straight off
//!   the gathered column slices, skipping the per-tuple group machinery
//!   entirely. Accumulation order is tuple order, so float sums match
//!   the shared path bit for bit.
//! - The **shared finalizer** ([`eval::aggregate`]) for everything else
//!   (grouping, debug-mode provenance, `predict()` aggregates), fed
//!   through the [`Tuples`] sink without materializing per-tuple row
//!   vectors.

use super::batch::RowSet;
use crate::binder::{BoundAgg, BoundAggArg, GroupKey};
use crate::eval::{self, EvalCtx, Tuples};
use crate::exec::QueryOutput;
use crate::table::Table;
use crate::value::Value;
use crate::QueryError;

impl Tuples for RowSet {
    fn emit(mut self, sink: &mut crate::eval::TupleSink) -> Result<(), QueryError> {
        let n_rels = self.n_rels();
        let mut buf = vec![0u32; n_rels];
        for i in 0..self.len() {
            self.gather(i, &mut buf);
            let prov = self.take_prov(i);
            sink(&buf, prov)?;
        }
        Ok(())
    }
}

/// Aggregate a row set, taking a columnar fast path when it provably
/// matches the shared finalizer.
pub(crate) fn aggregate_rowset(
    ctx: &mut EvalCtx,
    rows: RowSet,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
) -> Result<QueryOutput, QueryError> {
    let mut span = rain_obs::Span::enter("aggregate");
    span.add("rows_in", rows.len() as u64);
    if let Some(out) = grouped_fast_path(ctx, &rows, keys, aggs)? {
        return Ok(out);
    }
    // Fast path: normal mode, one global group, model-free arguments.
    // (Scalar aggregate arguments are model-free by binder construction.)
    let fast = !ctx.debug
        && keys.is_empty()
        && aggs
            .iter()
            .all(|a| matches!(a.arg, BoundAggArg::CountStar | BoundAggArg::Scalar(_)));
    if !fast {
        return eval::aggregate(ctx, rows, keys, aggs);
    }

    let n = rows.len();
    let mut sums = vec![(0.0f64, 0usize); aggs.len()];
    let mut rows_buf = vec![0u32; rows.n_rels()];
    for (ai, agg) in aggs.iter().enumerate() {
        match &agg.arg {
            BoundAggArg::CountStar => {
                sums[ai] = (n as f64, n);
            }
            BoundAggArg::Scalar(e) => {
                // Plain column arguments accumulate off the typed slice;
                // anything else evaluates per tuple through the shared
                // evaluator (same order, same float-summation sequence).
                let (sum, cnt) = &mut sums[ai];
                match column_slice(ctx, &rows, e) {
                    Some(ColSlice::I64(rel, vals)) => {
                        for &r in rows.rel(rel) {
                            *sum += vals[r as usize] as f64;
                        }
                        *cnt = n;
                    }
                    Some(ColSlice::F64(rel, vals)) => {
                        for &r in rows.rel(rel) {
                            *sum += vals[r as usize];
                        }
                        *cnt = n;
                    }
                    None => {
                        for i in 0..n {
                            rows.gather(i, &mut rows_buf);
                            let v = ctx.eval_value(e, &rows_buf)?;
                            if let Some(f) = v.as_f64() {
                                *sum += f;
                                *cnt += 1;
                            }
                        }
                    }
                }
            }
            BoundAggArg::Predict { .. } | BoundAggArg::ScaledPredict { .. } => {
                unreachable!("fast path excludes model aggregates")
            }
        }
    }

    let mut table = Table::empty(eval::agg_schema(ctx, keys, aggs));
    let row: Vec<Value> = aggs
        .iter()
        .zip(&sums)
        .map(|(agg, &(sum, cnt))| eval::agg_value(agg.func, sum, cnt))
        .collect();
    table.push_row(row, None);
    Ok(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 0,
        predvars: std::mem::take(&mut ctx.reg),
    })
}

/// Vectorized grouped aggregation: normal mode, a single non-nullable
/// `Int` group key, and aggregate arguments readable straight off typed
/// column slices. Group ids come from one hash per tuple on the raw `i64`
/// key (no `Value`/`KeyVal` boxing per tuple), accumulation runs in tuple
/// order within each group, and groups are emitted in ascending key order
/// — exactly the shared finalizer's float-summation sequence and output
/// order, so results stay bit-identical (the grouped property suite in
/// `tests/properties.rs` pins this against the tuple oracle).
///
/// Returns `None` when the shape doesn't fit, handing over to the shared
/// path.
fn grouped_fast_path(
    ctx: &mut EvalCtx,
    rows: &RowSet,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
) -> Result<Option<QueryOutput>, QueryError> {
    let [GroupKey::Col { rel, col, .. }] = keys else {
        return Ok(None);
    };
    if ctx.debug {
        return Ok(None);
    }
    let key_table = ctx.table_of(*rel);
    if key_table.null_mask(*col).is_some() {
        return Ok(None);
    }
    let Some(key_slice) = key_table.column(*col).as_i64s() else {
        return Ok(None);
    };
    // Every aggregate argument must gather from a typed slice; anything
    // else (expressions, model arguments, nullable columns) bails.
    let arg_slices: Option<Vec<Option<ColSlice>>> = aggs
        .iter()
        .map(|a| match &a.arg {
            BoundAggArg::CountStar => Some(None),
            BoundAggArg::Scalar(e) => column_slice(ctx, rows, e).map(Some),
            _ => None,
        })
        .collect();
    let Some(arg_slices) = arg_slices else {
        return Ok(None);
    };

    // One accumulator row per group, discovered in tuple order.
    let mut group_of: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
    let mut group_keys: Vec<i64> = Vec::new();
    let mut accs: Vec<Vec<(f64, usize)>> = Vec::new();
    let key_rows = rows.rel(*rel);
    for (i, &kr) in key_rows.iter().enumerate() {
        let k = key_slice[kr as usize];
        let gid = *group_of.entry(k).or_insert_with(|| {
            group_keys.push(k);
            accs.push(vec![(0.0, 0); aggs.len()]);
            accs.len() - 1
        });
        for (ai, slice) in arg_slices.iter().enumerate() {
            let (sum, cnt) = &mut accs[gid][ai];
            match slice {
                None => {
                    *sum += 1.0;
                    *cnt += 1;
                }
                Some(ColSlice::I64(arel, vals)) => {
                    *sum += vals[rows.row(*arel, i) as usize] as f64;
                    *cnt += 1;
                }
                Some(ColSlice::F64(arel, vals)) => {
                    *sum += vals[rows.row(*arel, i) as usize];
                    *cnt += 1;
                }
            }
        }
    }

    // Ascending key order = the shared path's sorted `KeyVal` order.
    let mut order: Vec<usize> = (0..group_keys.len()).collect();
    order.sort_by_key(|&g| group_keys[g]);

    let mut table = Table::empty(eval::agg_schema(ctx, keys, aggs));
    for g in order {
        let mut row = Vec::with_capacity(1 + aggs.len());
        row.push(Value::Int(group_keys[g]));
        for (agg, &(sum, cnt)) in aggs.iter().zip(&accs[g]) {
            row.push(eval::agg_value(agg.func, sum, cnt));
        }
        table.push_row(row, None);
    }
    Ok(Some(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 1,
        predvars: std::mem::take(&mut ctx.reg),
    }))
}

/// A numeric column slice usable for direct accumulation.
enum ColSlice<'a> {
    I64(usize, &'a [i64]),
    F64(usize, &'a [f64]),
}

fn column_slice<'a>(
    ctx: &EvalCtx<'a>,
    rows: &RowSet,
    e: &crate::binder::BExpr,
) -> Option<ColSlice<'a>> {
    let crate::binder::BExpr::Col { rel, col } = e else {
        return None;
    };
    if *rel >= rows.n_rels() {
        return None;
    }
    let table = ctx.table_of(*rel);
    if table.null_mask(*col).is_some() {
        return None;
    }
    let c = table.column(*col);
    c.as_i64s()
        .map(|v| ColSlice::I64(*rel, v))
        .or_else(|| c.as_f64s().map(|v| ColSlice::F64(*rel, v)))
}
