//! Batch-wise aggregation over struct-of-arrays row sets.
//!
//! Two tiers, both yielding byte-identical [`QueryOutput`]s:
//!
//! - A **columnar fast path** for ungrouped, model-free aggregates in
//!   normal mode (`COUNT(*)`, `SUM/AVG(col)`): accumulates straight off
//!   the gathered column slices, skipping the per-tuple group machinery
//!   entirely. Accumulation order is tuple order, so float sums match
//!   the shared path bit for bit.
//! - The **shared finalizer** ([`eval::aggregate`]) for everything else
//!   (grouping, debug-mode provenance, `predict()` aggregates), fed
//!   through the [`Tuples`] sink without materializing per-tuple row
//!   vectors.

use super::batch::RowSet;
use crate::binder::{BoundAgg, BoundAggArg, GroupKey};
use crate::eval::{self, EvalCtx, Tuples};
use crate::exec::QueryOutput;
use crate::table::Table;
use crate::value::Value;
use crate::QueryError;

impl Tuples for RowSet {
    fn emit(mut self, sink: &mut crate::eval::TupleSink) -> Result<(), QueryError> {
        let n_rels = self.n_rels();
        let mut buf = vec![0u32; n_rels];
        for i in 0..self.len() {
            self.gather(i, &mut buf);
            let prov = self.take_prov(i);
            sink(&buf, prov)?;
        }
        Ok(())
    }
}

/// Aggregate a row set, taking the columnar fast path when it provably
/// matches the shared finalizer.
pub(crate) fn aggregate_rowset(
    ctx: &mut EvalCtx,
    rows: RowSet,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
) -> Result<QueryOutput, QueryError> {
    // Fast path: normal mode, one global group, model-free arguments.
    // (Scalar aggregate arguments are model-free by binder construction.)
    let fast = !ctx.debug
        && keys.is_empty()
        && aggs
            .iter()
            .all(|a| matches!(a.arg, BoundAggArg::CountStar | BoundAggArg::Scalar(_)));
    if !fast {
        return eval::aggregate(ctx, rows, keys, aggs);
    }

    let n = rows.len();
    let mut sums = vec![(0.0f64, 0usize); aggs.len()];
    let mut rows_buf = vec![0u32; rows.n_rels()];
    for (ai, agg) in aggs.iter().enumerate() {
        match &agg.arg {
            BoundAggArg::CountStar => {
                sums[ai] = (n as f64, n);
            }
            BoundAggArg::Scalar(e) => {
                // Plain column arguments accumulate off the typed slice;
                // anything else evaluates per tuple through the shared
                // evaluator (same order, same float-summation sequence).
                let (sum, cnt) = &mut sums[ai];
                match column_slice(ctx, &rows, e) {
                    Some(ColSlice::I64(rel, vals)) => {
                        for &r in rows.rel(rel) {
                            *sum += vals[r as usize] as f64;
                        }
                        *cnt = n;
                    }
                    Some(ColSlice::F64(rel, vals)) => {
                        for &r in rows.rel(rel) {
                            *sum += vals[r as usize];
                        }
                        *cnt = n;
                    }
                    None => {
                        for i in 0..n {
                            rows.gather(i, &mut rows_buf);
                            let v = ctx.eval_value(e, &rows_buf)?;
                            if let Some(f) = v.as_f64() {
                                *sum += f;
                                *cnt += 1;
                            }
                        }
                    }
                }
            }
            BoundAggArg::Predict { .. } | BoundAggArg::ScaledPredict { .. } => {
                unreachable!("fast path excludes model aggregates")
            }
        }
    }

    let mut table = Table::empty(eval::agg_schema(ctx, keys, aggs));
    let row: Vec<Value> = aggs
        .iter()
        .zip(&sums)
        .map(|(agg, &(sum, cnt))| eval::agg_value(agg.func, sum, cnt))
        .collect();
    table.push_row(row, None);
    Ok(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 0,
        predvars: std::mem::take(&mut ctx.reg),
    })
}

/// A numeric column slice usable for direct accumulation.
enum ColSlice<'a> {
    I64(usize, &'a [i64]),
    F64(usize, &'a [f64]),
}

fn column_slice<'a>(
    ctx: &EvalCtx<'a>,
    rows: &RowSet,
    e: &crate::binder::BExpr,
) -> Option<ColSlice<'a>> {
    let crate::binder::BExpr::Col { rel, col } = e else {
        return None;
    };
    if *rel >= rows.n_rels() {
        return None;
    }
    let table = ctx.table_of(*rel);
    if table.null_mask(*col).is_some() {
        return None;
    }
    let c = table.column(*col);
    c.as_i64s()
        .map(|v| ColSlice::I64(*rel, v))
        .or_else(|| c.as_f64s().map(|v| ColSlice::F64(*rel, v)))
}
