//! Batch-wise aggregation over struct-of-arrays row sets.
//!
//! Two tiers, both yielding byte-identical [`QueryOutput`]s:
//!
//! - A **columnar fast path** for ungrouped, model-free aggregates in
//!   normal mode (`COUNT(*)`, `SUM/AVG(col)`): accumulates straight off
//!   the gathered column slices, skipping the per-tuple group machinery
//!   entirely. Accumulation order is tuple order, so float sums match
//!   the shared path bit for bit.
//! - The **shared finalizer** ([`eval::aggregate`]) for everything else
//!   (grouping, debug-mode provenance, `predict()` aggregates), fed
//!   through the [`Tuples`] sink without materializing per-tuple row
//!   vectors.

use super::batch::RowSet;
use super::morsel;
use crate::binder::{BoundAgg, BoundAggArg, GroupKey};
use crate::eval::{self, EvalCtx, Tuples};
use crate::exec::QueryOutput;
use crate::table::Table;
use crate::value::Value;
use crate::QueryError;

impl Tuples for RowSet {
    fn emit(mut self, sink: &mut crate::eval::TupleSink) -> Result<(), QueryError> {
        let n_rels = self.n_rels();
        let mut buf = vec![0u32; n_rels];
        for i in 0..self.len() {
            self.gather(i, &mut buf);
            let prov = self.take_prov(i);
            sink(&buf, prov)?;
        }
        Ok(())
    }
}

/// Aggregate a row set, taking a columnar fast path when it provably
/// matches the shared finalizer.
pub(crate) fn aggregate_rowset(
    ctx: &mut EvalCtx,
    rows: RowSet,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
) -> Result<QueryOutput, QueryError> {
    let mut span = rain_obs::Span::enter("aggregate");
    span.add("rows_in", rows.len() as u64);
    if let Some(out) = grouped_fast_path(ctx, &rows, keys, aggs, &mut span)? {
        return Ok(out);
    }
    // Fast path: normal mode, one global group, model-free arguments.
    // (Scalar aggregate arguments are model-free by binder construction.)
    let fast = !ctx.debug
        && keys.is_empty()
        && aggs
            .iter()
            .all(|a| matches!(a.arg, BoundAggArg::CountStar | BoundAggArg::Scalar(_)));
    if !fast {
        return eval::aggregate(ctx, rows, keys, aggs);
    }

    let n = rows.len();
    let mut sums = vec![(0.0f64, 0usize); aggs.len()];
    let mut rows_buf = vec![0u32; rows.n_rels()];
    for (ai, agg) in aggs.iter().enumerate() {
        match &agg.arg {
            BoundAggArg::CountStar => {
                sums[ai] = (n as f64, n);
            }
            BoundAggArg::Scalar(e) => {
                // Plain column arguments accumulate off the typed slice;
                // anything else evaluates per tuple through the shared
                // evaluator (same order, same float-summation sequence).
                let (sum, cnt) = &mut sums[ai];
                match column_slice(ctx, &rows, e) {
                    Some(ColSlice::I64(rel, vals)) => {
                        for &r in rows.rel(rel) {
                            *sum += vals[r as usize] as f64;
                        }
                        *cnt = n;
                    }
                    Some(ColSlice::F64(rel, vals)) => {
                        for &r in rows.rel(rel) {
                            *sum += vals[r as usize];
                        }
                        *cnt = n;
                    }
                    None => {
                        for i in 0..n {
                            rows.gather(i, &mut rows_buf);
                            let v = ctx.eval_value(e, &rows_buf)?;
                            if let Some(f) = v.as_f64() {
                                *sum += f;
                                *cnt += 1;
                            }
                        }
                    }
                }
            }
            BoundAggArg::Predict { .. } | BoundAggArg::ScaledPredict { .. } => {
                unreachable!("fast path excludes model aggregates")
            }
        }
    }

    let mut table = Table::empty(eval::agg_schema(ctx, keys, aggs));
    let row: Vec<Value> = aggs
        .iter()
        .zip(&sums)
        .map(|(agg, &(sum, cnt))| eval::agg_value(agg.func, sum, cnt))
        .collect();
    table.push_row(row, None);
    Ok(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 0,
        predvars: std::mem::take(&mut ctx.reg),
    })
}

/// Vectorized grouped aggregation: normal mode, a single non-nullable
/// `Int` group key, and aggregate arguments readable straight off typed
/// column slices. Group ids come from one hash per tuple on the raw `i64`
/// key (no `Value`/`KeyVal` boxing per tuple), accumulation runs in tuple
/// order within each group, and groups are emitted in ascending key order
/// — exactly the shared finalizer's float-summation sequence and output
/// order, so results stay bit-identical (the grouped property suite in
/// `tests/properties.rs` pins this against the tuple oracle).
///
/// With a thread budget and enough tuples, grouping shards by **key
/// hash**: one morsel-parallel pass routes every tuple's key to one of
/// [`morsel::partition_count`] partitions (a function of the input size
/// only, so the traced plan shape is thread-independent), then one
/// worker per partition walks **all** tuples in order, accumulating only
/// the groups routed to it. Each group lives in exactly one partition
/// and sees its tuples in full tuple order, so every per-group float sum
/// is the sequential sum bit for bit; the merged groups sort ascending
/// by key like the sequential path. Per-partition spans land under the
/// `aggregate` span with deterministic indices.
///
/// Returns `None` when the shape doesn't fit, handing over to the shared
/// path.
fn grouped_fast_path(
    ctx: &mut EvalCtx,
    rows: &RowSet,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
    agg_span: &mut rain_obs::Span,
) -> Result<Option<QueryOutput>, QueryError> {
    let [GroupKey::Col { rel, col, .. }] = keys else {
        return Ok(None);
    };
    if ctx.debug {
        return Ok(None);
    }
    let key_table = ctx.table_of(*rel);
    if key_table.null_mask(*col).is_some() {
        return Ok(None);
    }
    let Some(key_slice) = key_table.column(*col).as_i64s() else {
        return Ok(None);
    };
    // Every aggregate argument must gather from a typed slice; anything
    // else (expressions, model arguments, nullable columns) bails.
    let arg_slices: Option<Vec<Option<ColSlice>>> = aggs
        .iter()
        .map(|a| match &a.arg {
            BoundAggArg::CountStar => Some(None),
            BoundAggArg::Scalar(e) => column_slice(ctx, rows, e).map(Some),
            _ => None,
        })
        .collect();
    let Some(arg_slices) = arg_slices else {
        return Ok(None);
    };

    // Accumulate tuple `i` into one group's accumulator row. Shared by
    // the sequential pass and the per-partition workers — within a
    // group, both apply the same tuples in the same (full tuple) order,
    // so the float-summation sequence is identical.
    let accumulate = |acc: &mut [(f64, usize)], i: usize| {
        for (ai, slice) in arg_slices.iter().enumerate() {
            let (sum, cnt) = &mut acc[ai];
            match slice {
                None => {
                    *sum += 1.0;
                    *cnt += 1;
                }
                Some(ColSlice::I64(arel, vals)) => {
                    *sum += vals[rows.row(*arel, i) as usize] as f64;
                    *cnt += 1;
                }
                Some(ColSlice::F64(arel, vals)) => {
                    *sum += vals[rows.row(*arel, i) as usize];
                    *cnt += 1;
                }
            }
        }
    };

    // One accumulator row per group; `group_keys[g]` and `accs[g]` stay
    // index-aligned (discovery order is irrelevant — output sorts by key).
    let mut group_keys: Vec<i64> = Vec::new();
    let mut accs: Vec<Vec<(f64, usize)>> = Vec::new();
    let key_rows = rows.rel(*rel);
    let n = key_rows.len();
    if morsel::worth_parallel(ctx.threads, n) {
        let n_parts = morsel::partition_count(n);
        agg_span.add("partitions", n_parts as u64);
        // Phase 1: route each tuple's key to its partition,
        // morsel-parallel, emitting per-morsel index lists per partition
        // so phase 2 touches every tuple exactly once (a per-partition
        // scan over all tuples would cost O(partitions × n) in skips).
        let routed: Vec<Vec<Vec<u32>>> = morsel::run_morsels(ctx.threads, n, |start, end| {
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
            for (i, &kr) in key_rows[start..end].iter().enumerate() {
                let p = morsel::part_of(&key_slice[kr as usize], n_parts);
                lists[p].push((start + i) as u32);
            }
            lists
        });
        // Phase 2: one worker per partition accumulates its own groups.
        // A partition's indices concatenate in morsel order — globally
        // ascending — so per-group accumulation order matches the
        // sequential pass and float sums stay bit-identical.
        let agg_id = agg_span.id();
        let parts = morsel::run_tasks(ctx.threads, n_parts, |p| {
            let mut pspan = rain_obs::Span::enter_under(agg_id, "partition");
            pspan.add("index", p as u64);
            let mut group_of: std::collections::HashMap<i64, usize> =
                std::collections::HashMap::new();
            let mut pkeys: Vec<i64> = Vec::new();
            let mut paccs: Vec<Vec<(f64, usize)>> = Vec::new();
            let mut items = 0u64;
            for lists in &routed {
                for &i in &lists[p] {
                    let i = i as usize;
                    items += 1;
                    let k = key_slice[key_rows[i] as usize];
                    let gid = *group_of.entry(k).or_insert_with(|| {
                        pkeys.push(k);
                        paccs.push(vec![(0.0, 0); aggs.len()]);
                        paccs.len() - 1
                    });
                    accumulate(&mut paccs[gid], i);
                }
            }
            pspan.add("items", items);
            pspan.add("groups", pkeys.len() as u64);
            (pkeys, paccs)
        });
        for (pkeys, paccs) in parts {
            group_keys.extend(pkeys);
            accs.extend(paccs);
        }
    } else {
        let mut group_of: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for (i, &kr) in key_rows.iter().enumerate() {
            let k = key_slice[kr as usize];
            let gid = *group_of.entry(k).or_insert_with(|| {
                group_keys.push(k);
                accs.push(vec![(0.0, 0); aggs.len()]);
                accs.len() - 1
            });
            accumulate(&mut accs[gid], i);
        }
    }

    // Ascending key order = the shared path's sorted `KeyVal` order.
    let mut order: Vec<usize> = (0..group_keys.len()).collect();
    order.sort_by_key(|&g| group_keys[g]);

    let mut table = Table::empty(eval::agg_schema(ctx, keys, aggs));
    for g in order {
        let mut row = Vec::with_capacity(1 + aggs.len());
        row.push(Value::Int(group_keys[g]));
        for (agg, &(sum, cnt)) in aggs.iter().zip(&accs[g]) {
            row.push(eval::agg_value(agg.func, sum, cnt));
        }
        table.push_row(row, None);
    }
    Ok(Some(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 1,
        predvars: std::mem::take(&mut ctx.reg),
    }))
}

/// A numeric column slice usable for direct accumulation.
enum ColSlice<'a> {
    I64(usize, &'a [i64]),
    F64(usize, &'a [f64]),
}

fn column_slice<'a>(
    ctx: &EvalCtx<'a>,
    rows: &RowSet,
    e: &crate::binder::BExpr,
) -> Option<ColSlice<'a>> {
    let crate::binder::BExpr::Col { rel, col } = e else {
        return None;
    };
    if *rel >= rows.n_rels() {
        return None;
    }
    let table = ctx.table_of(*rel);
    if table.null_mask(*col).is_some() {
        return None;
    }
    let c = table.column(*col);
    c.as_i64s()
        .map(|v| ColSlice::I64(*rel, v))
        .or_else(|| c.as_f64s().map(|v| ColSlice::F64(*rel, v)))
}
