//! Columnar batch types: selection vectors over fixed-size table windows
//! and struct-of-arrays joined-tuple sets.

use crate::prov::BoolProv;
use crate::table::Table;

/// Rows processed per batch by the vectorized scan. Large enough to
/// amortize kernel dispatch, small enough that selection vectors and
/// masks stay cache-resident.
pub const BATCH_SIZE: usize = 1024;

/// A selection vector: the base-row ids still live in one batch window.
/// Kernels evaluate predicates into a mask aligned with the selection and
/// [`SelVec::retain_mask`] compacts it in place.
#[derive(Debug, Clone, Default)]
pub struct SelVec {
    ids: Vec<u32>,
}

impl SelVec {
    /// A dense selection covering `start..end`.
    pub fn dense(start: u32, end: u32) -> Self {
        SelVec {
            ids: (start..end).collect(),
        }
    }

    /// The selected row ids, in ascending order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing survives.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Keep only the rows whose aligned mask entry is true.
    ///
    /// # Panics
    /// Panics if `mask` is shorter than the selection.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        assert!(mask.len() >= self.ids.len(), "mask shorter than selection");
        let mut keep = mask.iter();
        self.ids.retain(|_| *keep.next().expect("mask aligned"));
    }

    /// Keep only the rows for which `keep` returns true.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.ids.retain(|&r| keep(r));
    }
}

/// A read-only columnar view of one table window plus its live selection:
/// what the scan kernels consume batch by batch.
#[derive(Debug)]
pub struct Batch<'a> {
    /// The scanned base table (columns sliced zero-copy by the kernels).
    pub table: &'a Table,
    /// Live rows of this window.
    pub sel: SelVec,
}

impl<'a> Batch<'a> {
    /// The window `start..end` of `table`, fully selected.
    pub fn window(table: &'a Table, start: u32, end: u32) -> Self {
        Batch {
            table,
            sel: SelVec::dense(start, end),
        }
    }
}

/// Struct-of-arrays set of (partially) joined tuples: `rel(r)[i]` is the
/// base-row id of relation `r` for tuple `i`. This replaces the tuple
/// engine's per-tuple `Vec<u32>` allocations — growing a join appends one
/// column instead of cloning every row vector.
#[derive(Debug, Clone)]
pub struct RowSet {
    rels: Vec<Vec<u32>>,
    /// Per-tuple membership formula; empty in normal mode (every tuple is
    /// concretely true until a model predicate says otherwise).
    prov: Vec<BoolProv>,
    debug: bool,
}

impl RowSet {
    /// Seed tuples from relation 0's scan output.
    pub fn seed(rows: Vec<u32>, debug: bool) -> Self {
        let prov = if debug {
            vec![BoolProv::Const(true); rows.len()]
        } else {
            Vec::new()
        };
        RowSet {
            rels: vec![rows],
            prov,
            debug,
        }
    }

    /// An empty set spanning `n_rels` relations.
    pub fn with_rels(n_rels: usize, debug: bool) -> Self {
        RowSet {
            rels: vec![Vec::new(); n_rels],
            prov: Vec::new(),
            debug,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rels.first().map_or(0, Vec::len)
    }

    /// True when no tuple survives.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of joined relations.
    pub fn n_rels(&self) -> usize {
        self.rels.len()
    }

    /// Whether provenance is tracked (debug mode).
    pub fn is_debug(&self) -> bool {
        self.debug
    }

    /// Base-row column of one relation.
    pub fn rel(&self, rel: usize) -> &[u32] {
        &self.rels[rel]
    }

    /// Base-row id of relation `rel` in tuple `i`.
    pub fn row(&self, rel: usize, i: usize) -> u32 {
        self.rels[rel][i]
    }

    /// Membership formula of tuple `i` (constant true in normal mode).
    pub fn prov(&self, i: usize) -> &BoolProv {
        if self.prov.is_empty() {
            const TRUE: BoolProv = BoolProv::Const(true);
            &TRUE
        } else {
            &self.prov[i]
        }
    }

    /// Append tuple `i` of `left` extended with base row `r` of the new
    /// relation (the join emit path; `self` must span one more relation).
    pub fn push_joined(&mut self, left: &RowSet, i: usize, r: u32) {
        let n = left.n_rels();
        debug_assert_eq!(self.n_rels(), n + 1);
        for rel in 0..n {
            self.rels[rel].push(left.rels[rel][i]);
        }
        self.rels[n].push(r);
        if self.debug {
            self.prov.push(left.prov[i].clone());
        }
    }

    /// Append every tuple of `other` (same relation span and debug mode)
    /// after this set's tuples — the morsel-order merge step of the
    /// parallel join probe.
    ///
    /// # Panics
    /// Panics when the relation counts differ.
    pub fn append(&mut self, other: RowSet) {
        assert_eq!(self.n_rels(), other.n_rels(), "relation span mismatch");
        for (col, more) in self.rels.iter_mut().zip(other.rels) {
            col.extend(more);
        }
        if self.debug {
            self.prov.extend(other.prov);
        }
    }

    /// Keep only tuples whose aligned mask entry is true.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        let n = self.len();
        debug_assert!(mask.len() >= n);
        let mut write = 0;
        for read in 0..n {
            if mask[read] {
                if write != read {
                    for col in &mut self.rels {
                        col[write] = col[read];
                    }
                    if !self.prov.is_empty() {
                        self.prov.swap(write, read);
                    }
                }
                write += 1;
            }
        }
        self.truncate(write);
    }

    /// Drop every tuple past `len`.
    pub fn truncate(&mut self, len: usize) {
        for col in &mut self.rels {
            col.truncate(len);
        }
        if !self.prov.is_empty() {
            self.prov.truncate(len);
        }
    }

    /// Overwrite tuple `write` with tuple `read` (compaction helper for
    /// in-place filtering with provenance rewrites).
    pub fn move_tuple(&mut self, write: usize, read: usize) {
        if write == read {
            return;
        }
        for col in &mut self.rels {
            col[write] = col[read];
        }
        if !self.prov.is_empty() {
            self.prov.swap(write, read);
        }
    }

    /// Replace tuple `i`'s membership formula (debug mode only).
    pub fn set_prov(&mut self, i: usize, prov: BoolProv) {
        if self.debug {
            self.prov[i] = prov;
        }
    }

    /// Take tuple `i`'s membership formula, leaving a constant.
    pub fn take_prov(&mut self, i: usize) -> BoolProv {
        if self.prov.is_empty() {
            BoolProv::Const(true)
        } else {
            std::mem::replace(&mut self.prov[i], BoolProv::Const(true))
        }
    }

    /// Gather tuple `i`'s per-relation base rows into `buf`.
    pub fn gather(&self, i: usize, buf: &mut [u32]) {
        for (rel, col) in self.rels.iter().enumerate() {
            buf[rel] = col[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selvec_retain() {
        let mut s = SelVec::dense(10, 15);
        assert_eq!(s.ids(), &[10, 11, 12, 13, 14]);
        s.retain_mask(&[true, false, true, false, true]);
        assert_eq!(s.ids(), &[10, 12, 14]);
        s.retain_rows(|r| r > 10);
        assert_eq!(s.ids(), &[12, 14]);
    }

    #[test]
    fn rowset_join_and_filter() {
        let left = RowSet::seed(vec![0, 1, 2], true);
        let mut joined = RowSet::with_rels(2, true);
        joined.push_joined(&left, 0, 7);
        joined.push_joined(&left, 2, 9);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.rel(0), &[0, 2]);
        assert_eq!(joined.rel(1), &[7, 9]);
        joined.retain_mask(&[false, true]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.row(0, 0), 2);
        let mut buf = [0u32; 2];
        joined.gather(0, &mut buf);
        assert_eq!(buf, [2, 9]);
    }

    #[test]
    fn normal_mode_prov_is_constant_true() {
        let rs = RowSet::seed(vec![0, 1], false);
        assert_eq!(rs.prov(1), &BoolProv::Const(true));
    }
}
