//! Vectorized joins over struct-of-arrays row sets.
//!
//! The hash join builds over the new relation's (already scan-filtered)
//! base rows and probes with the accumulated tuples, exactly like the
//! tuple engine — build entries in scan order, probes in tuple order —
//! so the joined tuple sequence is identical. What changes is the data
//! plane: single-column `Col = Col` keys hash canonical key values read
//! straight off the typed column slices (numerics as canonical `f64`
//! bits, strings as `&str`) instead of allocating a key vector per row,
//! and output tuples append to per-relation columns instead of cloning
//! row vectors.
//!
//! Key equality matches the `=` predicate exactly (the shared
//! [`join_key`] canonicalization): every numeric type compares as `f64`
//! — so `3 = 3.0` hash-matches — while NULL and NaN keys match nothing
//! and are skipped during build and probe. A string-vs-numeric key pair
//! can never compare equal, so those joins short-circuit to an empty
//! result. [`strategy`] classifies a key set once; the dispatch below
//! and `EXPLAIN`'s annotation both consume the same classification.

use super::batch::RowSet;
use super::kernels::NumCol;
use crate::binder::BExpr;
use crate::eval::{f64_key_bits, join_key, EvalCtx, JoinKey};
use crate::table::{ColType, Table};
use crate::QueryError;
use std::collections::HashMap;

/// How a hash join will key one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Strategy {
    /// Single `Col = Col` key, both numeric: canonical-f64-bit map over
    /// the typed slices.
    TypedNum,
    /// Single `Col = Col` key, both strings: `&str` map over the slices.
    TypedStr,
    /// Single `Col = Col` key of incomparable types (string vs numeric):
    /// no pair can satisfy `=`, the join is empty.
    Disjoint,
    /// Anything else (multi-key, expression keys, nullable columns):
    /// canonical [`JoinKey`] vectors through the shared evaluator.
    General,
}

impl Strategy {
    /// Label used by `EXPLAIN`.
    pub(crate) fn describe(self) -> &'static str {
        match self {
            Strategy::TypedNum => "hash(num)",
            Strategy::TypedStr => "hash(str)",
            Strategy::Disjoint => "hash(disjoint: empty)",
            Strategy::General => "hash(general)",
        }
    }
}

/// Classify how `keys` will be executed against the plan's tables.
pub(crate) fn strategy(tables: &[&Table], keys: &[(BExpr, BExpr)]) -> Strategy {
    let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { rel: rr, col: rc })] = keys else {
        return Strategy::General;
    };
    let (lt, rt) = (tables[*lr], tables[*rr]);
    if lt.null_mask(*lc).is_some() || rt.null_mask(*rc).is_some() {
        return Strategy::General;
    }
    let numeric = |t: ColType| matches!(t, ColType::Int | ColType::Float | ColType::Bool);
    let (lty, rty) = (lt.schema().col(*lc).ty, rt.schema().col(*rc).ty);
    match (numeric(lty), numeric(rty)) {
        (true, true) => Strategy::TypedNum,
        (false, false) => Strategy::TypedStr, // both Str: the only non-numeric type
        _ => Strategy::Disjoint,
    }
}

/// Nested-loop cross join (no usable equi keys): every accumulated tuple
/// against every scanned base row, in order.
pub(crate) fn cross_join(left: RowSet, right_rows: &[u32], debug: bool) -> RowSet {
    let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
    for i in 0..left.len() {
        for &r in right_rows {
            out.push_joined(&left, i, r);
        }
    }
    out
}

/// Hash join of the accumulated tuples with relation `rel` on the given
/// `(probe expr, build expr)` key pairs. Returns the joined row set plus
/// the [`Strategy`] that executed it, so callers capturing a query
/// skeleton can record how each step's match lists were built.
pub(crate) fn hash_join(
    ctx: &mut EvalCtx,
    left: RowSet,
    right_rows: &[u32],
    keys: &[(BExpr, BExpr)],
    rel: usize,
) -> Result<(RowSet, Strategy), QueryError> {
    let debug = ctx.debug;
    let tables: Vec<&Table> = ctx
        .query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();
    let strat = strategy(&tables, keys);
    let rows = match strat {
        Strategy::Disjoint => RowSet::with_rels(left.n_rels() + 1, debug),
        Strategy::TypedNum => {
            let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { col: rc, .. })] = keys else {
                unreachable!("classified as typed")
            };
            let build = NumCol::of(tables[rel], *rc).expect("numeric column");
            let probe = NumCol::of(tables[*lr], *lc).expect("numeric column");
            // NaN keys match nothing: skipped on both sides.
            typed_join(
                left,
                right_rows,
                debug,
                |r| {
                    let v = build.get(r);
                    (!v.is_nan()).then(|| f64_key_bits(v))
                },
                |i, l| {
                    let v = probe.get(l.row(*lr, i) as usize);
                    (!v.is_nan()).then(|| f64_key_bits(v))
                },
            )
        }
        Strategy::TypedStr => {
            let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { col: rc, .. })] = keys else {
                unreachable!("classified as typed")
            };
            let build = tables[rel].column(*rc).as_strs().expect("string column");
            let probe = tables[*lr].column(*lc).as_strs().expect("string column");
            typed_join(
                left,
                right_rows,
                debug,
                |r| Some(build[r].as_str()),
                |i, l| Some(probe[l.row(*lr, i) as usize].as_str()),
            )
        }
        Strategy::General => {
            // Arbitrary key expressions through the shared scalar
            // evaluator into canonical key vectors (identical to the
            // tuple engine, NULL/NaN skipping included).
            let mut index: HashMap<Vec<JoinKey>, Vec<u32>> = HashMap::new();
            let mut probe_rows = vec![0u32; rel + 1];
            for &r in right_rows {
                probe_rows[rel] = r;
                let mut key = Vec::with_capacity(keys.len());
                for (_, re) in keys {
                    match join_key(&ctx.eval_value(re, &probe_rows)?) {
                        Some(k) => key.push(k),
                        None => break,
                    }
                }
                if key.len() == keys.len() {
                    index.entry(key).or_default().push(r);
                }
            }
            let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
            let mut rows_buf = vec![0u32; left.n_rels()];
            'probe: for i in 0..left.len() {
                left.gather(i, &mut rows_buf);
                let mut key = Vec::with_capacity(keys.len());
                for (le, _) in keys {
                    match join_key(&ctx.eval_value(le, &rows_buf)?) {
                        Some(k) => key.push(k),
                        None => continue 'probe,
                    }
                }
                if let Some(rows) = index.get(&key) {
                    for &r in rows {
                        out.push_joined(&left, i, r);
                    }
                }
            }
            out
        }
    };
    Ok((rows, strat))
}

/// Hash join on one typed key: `build_key(base row)` indexes the new
/// relation, `probe_key(tuple, left)` reads the accumulated side. A
/// `None` key (NULL/NaN) matches nothing and is skipped.
fn typed_join<K: std::hash::Hash + Eq>(
    left: RowSet,
    right_rows: &[u32],
    debug: bool,
    build_key: impl Fn(usize) -> Option<K>,
    probe_key: impl Fn(usize, &RowSet) -> Option<K>,
) -> RowSet {
    let mut index: HashMap<K, Vec<u32>> = HashMap::with_capacity(right_rows.len());
    for &r in right_rows {
        if let Some(k) = build_key(r as usize) {
            index.entry(k).or_default().push(r);
        }
    }
    let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
    for i in 0..left.len() {
        if let Some(rows) = probe_key(i, &left).and_then(|k| index.get(&k)) {
            for &r in rows {
                out.push_joined(&left, i, r);
            }
        }
    }
    out
}
