//! Vectorized joins over struct-of-arrays row sets.
//!
//! The hash join builds over the new relation's (already scan-filtered)
//! base rows and probes with the accumulated tuples, exactly like the
//! tuple engine — build entries in scan order, probes in tuple order —
//! so the joined tuple sequence is identical. What changes is the data
//! plane: single-column `Col = Col` keys hash canonical key values read
//! straight off the typed column slices (numerics as canonical `f64`
//! bits, strings as `&str`) instead of allocating a key vector per row,
//! and output tuples append to per-relation columns instead of cloning
//! row vectors.
//!
//! With a thread budget and enough accumulated tuples, the **probe**
//! phase shards into [`morsel`]s against the shared read-only build
//! table: each worker probes its tuple range into a private row set and
//! the per-morsel outputs merge in morsel order, reproducing the
//! sequential probe sequence exactly (rows and provenance).
//!
//! A large enough **build** side shards too, by key hash: one
//! morsel-parallel pass extracts every build key and routes it to one of
//! [`morsel::partition_count`] partitions (a function of the build size
//! only, so the traced plan shape is thread-independent), then one
//! worker per partition fills its private sub-table by walking the
//! routed keys **in scan order**. Each key lives in exactly one
//! partition, so every per-key row list is the sequential build's list —
//! the merged [`PartitionedIndex`] answers probes identically, and
//! NULL/NaN keys are skipped during routing exactly as the sequential
//! build skips them. Cross joins shard over the accumulated tuples the
//! same way the probe does.
//!
//! Key equality matches the `=` predicate exactly (the shared
//! [`join_key`] canonicalization): every numeric type compares as `f64`
//! — so `3 = 3.0` hash-matches — while NULL and NaN keys match nothing
//! and are skipped during build and probe. A string-vs-numeric key pair
//! can never compare equal, so those joins short-circuit to an empty
//! result. [`strategy`] classifies a key set once; the dispatch below
//! and `EXPLAIN`'s annotation both consume the same classification.

use super::batch::RowSet;
use super::kernels::NumCol;
use super::morsel;
use super::morsel::part_of;
use crate::binder::BExpr;
use crate::eval::{f64_key_bits, join_key, EvalCtx, JoinKey};
use crate::index::TableIndex;
use crate::table::{ColType, Table};
use crate::QueryError;
use std::collections::HashMap;
use std::hash::Hash;

/// How a hash join will key one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Strategy {
    /// Single `Col = Col` key, both numeric: canonical-f64-bit map over
    /// the typed slices.
    TypedNum,
    /// Single `Col = Col` key, both strings: `&str` map over the slices.
    TypedStr,
    /// Single `Col = Col` key of incomparable types (string vs numeric):
    /// no pair can satisfy `=`, the join is empty.
    Disjoint,
    /// Anything else (multi-key, expression keys, nullable columns):
    /// canonical [`JoinKey`] vectors through the shared evaluator.
    General,
}

impl Strategy {
    /// Label used by `EXPLAIN`.
    pub(crate) fn describe(self) -> &'static str {
        match self {
            Strategy::TypedNum => "hash(num)",
            Strategy::TypedStr => "hash(str)",
            Strategy::Disjoint => "hash(disjoint: empty)",
            Strategy::General => "hash(general)",
        }
    }
}

/// Classify how `keys` will be executed against the plan's tables.
pub(crate) fn strategy(tables: &[&Table], keys: &[(BExpr, BExpr)]) -> Strategy {
    let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { rel: rr, col: rc })] = keys else {
        return Strategy::General;
    };
    let (lt, rt) = (tables[*lr], tables[*rr]);
    if lt.null_mask(*lc).is_some() || rt.null_mask(*rc).is_some() {
        return Strategy::General;
    }
    let numeric = |t: ColType| matches!(t, ColType::Int | ColType::Float | ColType::Bool);
    let (lty, rty) = (lt.schema().col(*lc).ty, rt.schema().col(*rc).ty);
    match (numeric(lty), numeric(rty)) {
        (true, true) => Strategy::TypedNum,
        (false, false) => Strategy::TypedStr, // both Str: the only non-numeric type
        _ => Strategy::Disjoint,
    }
}

/// Nested-loop cross join (no usable equi keys): every accumulated tuple
/// against every scanned base row, in order. With a thread budget and
/// enough accumulated tuples the expansion shards into [`morsel`]s over
/// the left side (per-morsel outputs merge in morsel order), so the
/// joined sequence is identical at every thread count.
pub(crate) fn cross_join(left: RowSet, right_rows: &[u32], debug: bool, threads: usize) -> RowSet {
    let n = left.len();
    let mut span = rain_obs::Span::enter("cross");
    span.add("rows_in", n as u64);
    let expand = |start: usize, end: usize| {
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for i in start..end {
            for &r in right_rows {
                out.push_joined(&left, i, r);
            }
        }
        out
    };
    let out = if morsel::worth_parallel(threads, n) {
        let span_id = span.id();
        let parts = morsel::run_morsels(threads, n, |start, end| {
            let mut mspan = rain_obs::Span::enter_under(span_id, "morsel");
            mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
            mspan.add("items", (end - start) as u64);
            expand(start, end)
        });
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for p in parts {
            out.append(p);
        }
        out
    } else {
        expand(0, n)
    };
    span.add("rows_out", out.len() as u64);
    out
}

/// A hash-join build table, sharded by key hash. One partition means the
/// build ran sequentially; probes route a key to its partition and look
/// it up there. Because every key lives in exactly one partition and each
/// partition is filled in scan order, the per-key row lists — and thus
/// every probe result — are identical to a sequential single-map build.
struct PartitionedIndex<K> {
    parts: Vec<HashMap<K, Vec<u32>>>,
}

impl<K: Hash + Eq> PartitionedIndex<K> {
    fn get(&self, k: &K) -> Option<&Vec<u32>> {
        let p = if self.parts.len() == 1 {
            0
        } else {
            part_of(k, self.parts.len())
        };
        self.parts[p].get(k)
    }
}

/// Phase 2 of a parallel build: given per-morsel `(row, key)` lists per
/// partition (each list in scan order), fill each partition's sub-table
/// with one worker per partition. A partition's entries concatenate in
/// morsel order — scan order — so every per-key row list is identical to
/// a sequential build's, and each worker touches only its own rows (a
/// per-partition scan over all routed keys would cost
/// O(partitions × rows) in skips). Partition spans carry their
/// (deterministic) partition index.
fn fill_partitions<K>(
    threads: usize,
    routed: &[Vec<Vec<(u32, K)>>],
    n_parts: usize,
    build_id: rain_obs::SpanId,
) -> Vec<HashMap<K, Vec<u32>>>
where
    K: Hash + Eq + Clone + Send + Sync,
{
    morsel::run_tasks(threads, n_parts, |p| {
        let mut pspan = rain_obs::Span::enter_under(build_id, "partition");
        pspan.add("index", p as u64);
        let mut map: HashMap<K, Vec<u32>> = HashMap::new();
        let mut items = 0u64;
        for lists in routed {
            for (r, k) in &lists[p] {
                map.entry(k.clone()).or_default().push(*r);
                items += 1;
            }
        }
        pspan.add("items", items);
        map
    })
}

/// Build the hash index over `right_rows` with `build_key`, sharding by
/// key hash when the build side and thread budget warrant it. A `None`
/// key (NULL/NaN) matches nothing and is skipped — in the parallel build
/// it is dropped during routing, before any partition sees it, exactly
/// mirroring the sequential skip.
fn build_index<K>(
    right_rows: &[u32],
    threads: usize,
    build_key: impl Fn(usize) -> Option<K> + Sync,
) -> PartitionedIndex<K>
where
    K: Hash + Eq + Clone + Send + Sync,
{
    let mut build_span = rain_obs::Span::enter("build");
    build_span.add("rows_in", right_rows.len() as u64);
    let n = right_rows.len();
    if !morsel::worth_parallel(threads, n) {
        let mut index: HashMap<K, Vec<u32>> = HashMap::with_capacity(n);
        for &r in right_rows {
            if let Some(k) = build_key(r as usize) {
                index.entry(k).or_default().push(r);
            }
        }
        return PartitionedIndex { parts: vec![index] };
    }
    let n_parts = morsel::partition_count(n);
    build_span.add("partitions", n_parts as u64);
    // Phase 1: morsel-parallel key extraction and partition routing. A
    // NULL/NaN key is dropped here, before any partition sees it.
    let routed: Vec<Vec<Vec<(u32, K)>>> = morsel::run_morsels(threads, n, |start, end| {
        let mut lists: Vec<Vec<(u32, K)>> = vec![Vec::new(); n_parts];
        for &r in &right_rows[start..end] {
            if let Some(k) = build_key(r as usize) {
                lists[part_of(&k, n_parts)].push((r, k));
            }
        }
        lists
    });
    let parts = fill_partitions(threads, &routed, n_parts, build_span.id());
    PartitionedIndex { parts }
}

/// Hash join of the accumulated tuples with relation `rel` on the given
/// `(probe expr, build expr)` key pairs. Returns the joined row set plus
/// the [`Strategy`] that executed it, so callers capturing a query
/// skeleton can record how each step's match lists were built.
pub(crate) fn hash_join(
    ctx: &mut EvalCtx,
    left: RowSet,
    right_rows: &[u32],
    keys: &[(BExpr, BExpr)],
    rel: usize,
) -> Result<(RowSet, Strategy), QueryError> {
    let debug = ctx.debug;
    let threads = ctx.threads;
    let tables: Vec<&Table> = ctx
        .query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();
    let strat = strategy(&tables, keys);
    let rows = match strat {
        Strategy::Disjoint => RowSet::with_rels(left.n_rels() + 1, debug),
        Strategy::TypedNum => {
            let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { col: rc, .. })] = keys else {
                unreachable!("classified as typed")
            };
            let build = NumCol::of(tables[rel], *rc).expect("numeric column");
            let probe = NumCol::of(tables[*lr], *lc).expect("numeric column");
            // NaN keys match nothing: skipped on both sides.
            typed_join(
                left,
                right_rows,
                debug,
                threads,
                |r| {
                    let v = build.get(r);
                    (!v.is_nan()).then(|| f64_key_bits(v))
                },
                |i, l| {
                    let v = probe.get(l.row(*lr, i) as usize);
                    (!v.is_nan()).then(|| f64_key_bits(v))
                },
            )
        }
        Strategy::TypedStr => {
            let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { col: rc, .. })] = keys else {
                unreachable!("classified as typed")
            };
            let build = tables[rel].column(*rc).as_strs().expect("string column");
            let probe = tables[*lr].column(*lc).as_strs().expect("string column");
            typed_join(
                left,
                right_rows,
                debug,
                threads,
                |r| Some(build[r].as_str()),
                |i, l| Some(probe[l.row(*lr, i) as usize].as_str()),
            )
        }
        Strategy::General => {
            // Arbitrary key expressions through the shared scalar
            // evaluator into canonical key vectors (identical to the
            // tuple engine, NULL/NaN skipping included). Equi keys are
            // model-free by construction (`equi_keys` never selects a
            // `predict()` conjunct), so parallel build and probe workers
            // can evaluate them in scratch contexts; guard anyway so a
            // hand-built plan degrades to the sequential path instead of
            // splitting variable creation across workers.
            let model_free = keys
                .iter()
                .all(|(le, re)| !le.contains_predict() && !re.contains_predict());
            let index = general_build(ctx, right_rows, keys, rel, threads, model_free)?;
            let n = left.len();
            let mut probe_span = rain_obs::Span::enter("probe");
            probe_span.add("rows_in", n as u64);
            let out = if morsel::worth_parallel(threads, n) && model_free {
                let (db, model, query) = (ctx.db, ctx.model, ctx.query);
                let index_ref = &index;
                let left_ref = &left;
                let probe_id = probe_span.id();
                let parts = morsel::run_morsels(threads, n, |start, end| {
                    let mut mspan = rain_obs::Span::enter_under(probe_id, "morsel");
                    mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
                    mspan.add("items", (end - start) as u64);
                    let mut wctx = EvalCtx::new(db, model, query, debug);
                    general_probe(&mut wctx, left_ref, keys, index_ref, start, end)
                });
                let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
                for p in parts {
                    out.append(p?);
                }
                out
            } else {
                general_probe(ctx, &left, keys, &index, 0, n)?
            };
            probe_span.add("rows_out", out.len() as u64);
            out
        }
    };
    Ok((rows, strat))
}

/// Index-nested-loop join: instead of building a transient hash table
/// over the inner relation, probe the catalog's persistent hash
/// [`TableIndex`] directly. The index maps canonical [`JoinKey`]s to
/// posting lists in ascending row order — exactly the per-key row lists
/// a hash-join build over the unfiltered scan produces — and NULL/NaN
/// keys are absent on both sides, so the joined tuple sequence is
/// bit-identical to [`hash_join`]'s. Probes shard into [`morsel`]s over
/// the accumulated tuples just like the hash-join probe.
pub(crate) fn inl_join(
    ctx: &mut EvalCtx,
    left: RowSet,
    probe: &BExpr,
    index: &TableIndex,
) -> Result<RowSet, QueryError> {
    let debug = ctx.debug;
    let threads = ctx.threads;
    let n = left.len();
    let mut probe_span = rain_obs::Span::enter("probe");
    probe_span.add("rows_in", n as u64);
    // Equi keys are model-free by construction; guard anyway so a
    // hand-built plan degrades to the sequential path.
    let out = if morsel::worth_parallel(threads, n) && !probe.contains_predict() {
        let (db, model, query) = (ctx.db, ctx.model, ctx.query);
        let left_ref = &left;
        let probe_id = probe_span.id();
        let parts = morsel::run_morsels(threads, n, |start, end| {
            let mut mspan = rain_obs::Span::enter_under(probe_id, "morsel");
            mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
            mspan.add("items", (end - start) as u64);
            let mut wctx = EvalCtx::new(db, model, query, debug);
            inl_probe(&mut wctx, left_ref, probe, index, start, end)
        });
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for p in parts {
            out.append(p?);
        }
        out
    } else {
        inl_probe(ctx, &left, probe, index, 0, n)?
    };
    probe_span.add("rows_out", out.len() as u64);
    Ok(out)
}

/// Probe tuples `start..end` of `left` against the persistent hash
/// index, in order — the shared unit of the sequential and the
/// morsel-parallel index-nested-loop probe.
fn inl_probe(
    ctx: &mut EvalCtx,
    left: &RowSet,
    probe: &BExpr,
    index: &TableIndex,
    start: usize,
    end: usize,
) -> Result<RowSet, QueryError> {
    let mut out = RowSet::with_rels(left.n_rels() + 1, ctx.debug);
    let mut rows_buf = vec![0u32; left.n_rels()];
    for i in start..end {
        left.gather(i, &mut rows_buf);
        if let Some(key) = join_key(&ctx.eval_value(probe, &rows_buf)?) {
            for &r in index.lookup_eq(&key) {
                out.push_joined(left, i, r);
            }
        }
    }
    Ok(out)
}

/// Evaluate the build-side key of base row `r` into its canonical key
/// vector — `None` as soon as any part is NULL/NaN (the row matches
/// nothing and is skipped), exactly like the tuple engine.
fn general_build_key(
    ctx: &mut EvalCtx,
    keys: &[(BExpr, BExpr)],
    probe_rows: &mut [u32],
    rel: usize,
    r: u32,
) -> Result<Option<Vec<JoinKey>>, QueryError> {
    probe_rows[rel] = r;
    let mut key = Vec::with_capacity(keys.len());
    for (_, re) in keys {
        match join_key(&ctx.eval_value(re, probe_rows)?) {
            Some(k) => key.push(k),
            None => return Ok(None),
        }
    }
    Ok(Some(key))
}

/// Build the general-strategy hash index: sequential with the caller's
/// context when the build side is small (or a key could touch the
/// model), hash-partitioned across workers otherwise — phase 1 evaluates
/// and routes keys morsel-parallel in scratch contexts, phase 2 fills
/// one sub-table per partition in scan order ([`fill_partitions`]).
fn general_build(
    ctx: &mut EvalCtx,
    right_rows: &[u32],
    keys: &[(BExpr, BExpr)],
    rel: usize,
    threads: usize,
    model_free: bool,
) -> Result<PartitionedIndex<Vec<JoinKey>>, QueryError> {
    let mut build_span = rain_obs::Span::enter("build");
    build_span.add("rows_in", right_rows.len() as u64);
    let n = right_rows.len();
    if !morsel::worth_parallel(threads, n) || !model_free {
        let mut index: HashMap<Vec<JoinKey>, Vec<u32>> = HashMap::new();
        let mut probe_rows = vec![0u32; rel + 1];
        for &r in right_rows {
            if let Some(key) = general_build_key(ctx, keys, &mut probe_rows, rel, r)? {
                index.entry(key).or_default().push(r);
            }
        }
        return Ok(PartitionedIndex { parts: vec![index] });
    }
    let n_parts = morsel::partition_count(n);
    build_span.add("partitions", n_parts as u64);
    let debug = ctx.debug;
    let (db, model, query) = (ctx.db, ctx.model, ctx.query);
    let parts = morsel::run_morsels(threads, n, |start, end| {
        let mut wctx = EvalCtx::new(db, model, query, debug);
        let mut probe_rows = vec![0u32; rel + 1];
        let mut lists: Vec<Vec<(u32, Vec<JoinKey>)>> = vec![Vec::new(); n_parts];
        for &r in &right_rows[start..end] {
            if let Some(k) = general_build_key(&mut wctx, keys, &mut probe_rows, rel, r)? {
                lists[part_of(&k, n_parts)].push((r, k));
            }
        }
        Ok::<_, QueryError>(lists)
    });
    // Surface the first (lowest-morsel) error, like a sequential pass.
    let routed = parts.into_iter().collect::<Result<Vec<_>, _>>()?;
    let parts = fill_partitions(threads, &routed, n_parts, build_span.id());
    Ok(PartitionedIndex { parts })
}

/// Probe tuples `start..end` of `left` against a built general-key index,
/// in order — the unit of work shared by the sequential and the
/// morsel-parallel probe.
fn general_probe(
    ctx: &mut EvalCtx,
    left: &RowSet,
    keys: &[(BExpr, BExpr)],
    index: &PartitionedIndex<Vec<JoinKey>>,
    start: usize,
    end: usize,
) -> Result<RowSet, QueryError> {
    let mut out = RowSet::with_rels(left.n_rels() + 1, ctx.debug);
    let mut rows_buf = vec![0u32; left.n_rels()];
    'probe: for i in start..end {
        left.gather(i, &mut rows_buf);
        let mut key = Vec::with_capacity(keys.len());
        for (le, _) in keys {
            match join_key(&ctx.eval_value(le, &rows_buf)?) {
                Some(k) => key.push(k),
                None => continue 'probe,
            }
        }
        if let Some(rows) = index.get(&key) {
            for &r in rows {
                out.push_joined(left, i, r);
            }
        }
    }
    Ok(out)
}

/// Hash join on one typed key: `build_key(base row)` indexes the new
/// relation, `probe_key(tuple, left)` reads the accumulated side. A
/// `None` key (NULL/NaN) matches nothing and is skipped — per partition
/// in a parallel build, exactly as sequentially. Both phases shard
/// across workers when `threads` and their input sizes warrant it
/// (build by key-hash partition, probe by tuple morsel); outputs merge
/// deterministically, so the joined sequence is identical at every
/// thread count.
fn typed_join<K>(
    left: RowSet,
    right_rows: &[u32],
    debug: bool,
    threads: usize,
    build_key: impl Fn(usize) -> Option<K> + Sync,
    probe_key: impl Fn(usize, &RowSet) -> Option<K> + Sync,
) -> RowSet
where
    K: Hash + Eq + Clone + Send + Sync,
{
    let index = build_index(right_rows, threads, build_key);
    let probe_range = |start: usize, end: usize| {
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for i in start..end {
            if let Some(rows) = probe_key(i, &left).and_then(|k| index.get(&k)) {
                for &r in rows {
                    out.push_joined(&left, i, r);
                }
            }
        }
        out
    };
    let n = left.len();
    let mut probe_span = rain_obs::Span::enter("probe");
    probe_span.add("rows_in", n as u64);
    let out = if morsel::worth_parallel(threads, n) {
        let probe_id = probe_span.id();
        let parts = morsel::run_morsels(threads, n, |start, end| {
            let mut mspan = rain_obs::Span::enter_under(probe_id, "morsel");
            mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
            mspan.add("items", (end - start) as u64);
            probe_range(start, end)
        });
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for p in parts {
            out.append(p);
        }
        out
    } else {
        probe_range(0, n)
    };
    probe_span.add("rows_out", out.len() as u64);
    out
}
