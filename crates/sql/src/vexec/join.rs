//! Vectorized joins over struct-of-arrays row sets.
//!
//! The hash join builds over the new relation's (already scan-filtered)
//! base rows and probes with the accumulated tuples, exactly like the
//! tuple engine — build entries in scan order, probes in tuple order —
//! so the joined tuple sequence is identical. What changes is the data
//! plane: single-column `Col = Col` keys hash canonical key values read
//! straight off the typed column slices (numerics as canonical `f64`
//! bits, strings as `&str`) instead of allocating a key vector per row,
//! and output tuples append to per-relation columns instead of cloning
//! row vectors.
//!
//! With a thread budget and enough accumulated tuples, the **probe**
//! phase shards into [`morsel`]s against the shared read-only build
//! table: each worker probes its tuple range into a private row set and
//! the per-morsel outputs merge in morsel order, reproducing the
//! sequential probe sequence exactly (rows and provenance). The build
//! phase stays sequential — build input is the scan-filtered base table,
//! typically far smaller than the probe stream.
//!
//! Key equality matches the `=` predicate exactly (the shared
//! [`join_key`] canonicalization): every numeric type compares as `f64`
//! — so `3 = 3.0` hash-matches — while NULL and NaN keys match nothing
//! and are skipped during build and probe. A string-vs-numeric key pair
//! can never compare equal, so those joins short-circuit to an empty
//! result. [`strategy`] classifies a key set once; the dispatch below
//! and `EXPLAIN`'s annotation both consume the same classification.

use super::batch::RowSet;
use super::kernels::NumCol;
use super::morsel;
use crate::binder::BExpr;
use crate::eval::{f64_key_bits, join_key, EvalCtx, JoinKey};
use crate::table::{ColType, Table};
use crate::QueryError;
use std::collections::HashMap;

/// How a hash join will key one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Strategy {
    /// Single `Col = Col` key, both numeric: canonical-f64-bit map over
    /// the typed slices.
    TypedNum,
    /// Single `Col = Col` key, both strings: `&str` map over the slices.
    TypedStr,
    /// Single `Col = Col` key of incomparable types (string vs numeric):
    /// no pair can satisfy `=`, the join is empty.
    Disjoint,
    /// Anything else (multi-key, expression keys, nullable columns):
    /// canonical [`JoinKey`] vectors through the shared evaluator.
    General,
}

impl Strategy {
    /// Label used by `EXPLAIN`.
    pub(crate) fn describe(self) -> &'static str {
        match self {
            Strategy::TypedNum => "hash(num)",
            Strategy::TypedStr => "hash(str)",
            Strategy::Disjoint => "hash(disjoint: empty)",
            Strategy::General => "hash(general)",
        }
    }
}

/// Classify how `keys` will be executed against the plan's tables.
pub(crate) fn strategy(tables: &[&Table], keys: &[(BExpr, BExpr)]) -> Strategy {
    let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { rel: rr, col: rc })] = keys else {
        return Strategy::General;
    };
    let (lt, rt) = (tables[*lr], tables[*rr]);
    if lt.null_mask(*lc).is_some() || rt.null_mask(*rc).is_some() {
        return Strategy::General;
    }
    let numeric = |t: ColType| matches!(t, ColType::Int | ColType::Float | ColType::Bool);
    let (lty, rty) = (lt.schema().col(*lc).ty, rt.schema().col(*rc).ty);
    match (numeric(lty), numeric(rty)) {
        (true, true) => Strategy::TypedNum,
        (false, false) => Strategy::TypedStr, // both Str: the only non-numeric type
        _ => Strategy::Disjoint,
    }
}

/// Nested-loop cross join (no usable equi keys): every accumulated tuple
/// against every scanned base row, in order.
pub(crate) fn cross_join(left: RowSet, right_rows: &[u32], debug: bool) -> RowSet {
    let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
    for i in 0..left.len() {
        for &r in right_rows {
            out.push_joined(&left, i, r);
        }
    }
    out
}

/// Hash join of the accumulated tuples with relation `rel` on the given
/// `(probe expr, build expr)` key pairs. Returns the joined row set plus
/// the [`Strategy`] that executed it, so callers capturing a query
/// skeleton can record how each step's match lists were built.
pub(crate) fn hash_join(
    ctx: &mut EvalCtx,
    left: RowSet,
    right_rows: &[u32],
    keys: &[(BExpr, BExpr)],
    rel: usize,
) -> Result<(RowSet, Strategy), QueryError> {
    let debug = ctx.debug;
    let threads = ctx.threads;
    let tables: Vec<&Table> = ctx
        .query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();
    let strat = strategy(&tables, keys);
    let rows = match strat {
        Strategy::Disjoint => RowSet::with_rels(left.n_rels() + 1, debug),
        Strategy::TypedNum => {
            let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { col: rc, .. })] = keys else {
                unreachable!("classified as typed")
            };
            let build = NumCol::of(tables[rel], *rc).expect("numeric column");
            let probe = NumCol::of(tables[*lr], *lc).expect("numeric column");
            // NaN keys match nothing: skipped on both sides.
            typed_join(
                left,
                right_rows,
                debug,
                threads,
                |r| {
                    let v = build.get(r);
                    (!v.is_nan()).then(|| f64_key_bits(v))
                },
                |i, l| {
                    let v = probe.get(l.row(*lr, i) as usize);
                    (!v.is_nan()).then(|| f64_key_bits(v))
                },
            )
        }
        Strategy::TypedStr => {
            let [(BExpr::Col { rel: lr, col: lc }, BExpr::Col { col: rc, .. })] = keys else {
                unreachable!("classified as typed")
            };
            let build = tables[rel].column(*rc).as_strs().expect("string column");
            let probe = tables[*lr].column(*lc).as_strs().expect("string column");
            typed_join(
                left,
                right_rows,
                debug,
                threads,
                |r| Some(build[r].as_str()),
                |i, l| Some(probe[l.row(*lr, i) as usize].as_str()),
            )
        }
        Strategy::General => {
            // Arbitrary key expressions through the shared scalar
            // evaluator into canonical key vectors (identical to the
            // tuple engine, NULL/NaN skipping included). Build first,
            // sequentially, with the caller's context.
            let mut build_span = rain_obs::Span::enter("build");
            build_span.add("rows_in", right_rows.len() as u64);
            let mut index: HashMap<Vec<JoinKey>, Vec<u32>> = HashMap::new();
            let mut probe_rows = vec![0u32; rel + 1];
            for &r in right_rows {
                probe_rows[rel] = r;
                let mut key = Vec::with_capacity(keys.len());
                for (_, re) in keys {
                    match join_key(&ctx.eval_value(re, &probe_rows)?) {
                        Some(k) => key.push(k),
                        None => break,
                    }
                }
                if key.len() == keys.len() {
                    index.entry(key).or_default().push(r);
                }
            }
            drop(build_span);
            let n = left.len();
            let mut probe_span = rain_obs::Span::enter("probe");
            probe_span.add("rows_in", n as u64);
            // Equi keys are model-free by construction (`equi_keys` never
            // selects a `predict()` conjunct), so parallel probe workers
            // can evaluate them in scratch contexts; guard anyway so a
            // hand-built plan degrades to the sequential path instead of
            // splitting variable creation across workers.
            let model_free = keys
                .iter()
                .all(|(le, re)| !le.contains_predict() && !re.contains_predict());
            let out = if morsel::worth_parallel(threads, n) && model_free {
                let (db, model, query) = (ctx.db, ctx.model, ctx.query);
                let index_ref = &index;
                let left_ref = &left;
                let probe_id = probe_span.id();
                let parts = morsel::run_morsels(threads, n, |start, end| {
                    let mut mspan = rain_obs::Span::enter_under(probe_id, "morsel");
                    mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
                    mspan.add("items", (end - start) as u64);
                    let mut wctx = EvalCtx::new(db, model, query, debug);
                    general_probe(&mut wctx, left_ref, keys, index_ref, start, end)
                });
                let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
                for p in parts {
                    out.append(p?);
                }
                out
            } else {
                general_probe(ctx, &left, keys, &index, 0, n)?
            };
            probe_span.add("rows_out", out.len() as u64);
            out
        }
    };
    Ok((rows, strat))
}

/// Probe tuples `start..end` of `left` against a built general-key index,
/// in order — the unit of work shared by the sequential and the
/// morsel-parallel probe.
fn general_probe(
    ctx: &mut EvalCtx,
    left: &RowSet,
    keys: &[(BExpr, BExpr)],
    index: &HashMap<Vec<JoinKey>, Vec<u32>>,
    start: usize,
    end: usize,
) -> Result<RowSet, QueryError> {
    let mut out = RowSet::with_rels(left.n_rels() + 1, ctx.debug);
    let mut rows_buf = vec![0u32; left.n_rels()];
    'probe: for i in start..end {
        left.gather(i, &mut rows_buf);
        let mut key = Vec::with_capacity(keys.len());
        for (le, _) in keys {
            match join_key(&ctx.eval_value(le, &rows_buf)?) {
                Some(k) => key.push(k),
                None => continue 'probe,
            }
        }
        if let Some(rows) = index.get(&key) {
            for &r in rows {
                out.push_joined(left, i, r);
            }
        }
    }
    Ok(out)
}

/// Hash join on one typed key: `build_key(base row)` indexes the new
/// relation, `probe_key(tuple, left)` reads the accumulated side. A
/// `None` key (NULL/NaN) matches nothing and is skipped. The probe
/// shards across morsel workers when `threads` and the tuple count
/// warrant it; outputs merge in morsel order, so the joined sequence is
/// identical at every thread count.
fn typed_join<K: std::hash::Hash + Eq + Sync>(
    left: RowSet,
    right_rows: &[u32],
    debug: bool,
    threads: usize,
    build_key: impl Fn(usize) -> Option<K>,
    probe_key: impl Fn(usize, &RowSet) -> Option<K> + Sync,
) -> RowSet {
    let mut build_span = rain_obs::Span::enter("build");
    build_span.add("rows_in", right_rows.len() as u64);
    let mut index: HashMap<K, Vec<u32>> = HashMap::with_capacity(right_rows.len());
    for &r in right_rows {
        if let Some(k) = build_key(r as usize) {
            index.entry(k).or_default().push(r);
        }
    }
    drop(build_span);
    let probe_range = |start: usize, end: usize| {
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for i in start..end {
            if let Some(rows) = probe_key(i, &left).and_then(|k| index.get(&k)) {
                for &r in rows {
                    out.push_joined(&left, i, r);
                }
            }
        }
        out
    };
    let n = left.len();
    let mut probe_span = rain_obs::Span::enter("probe");
    probe_span.add("rows_in", n as u64);
    let out = if morsel::worth_parallel(threads, n) {
        let probe_id = probe_span.id();
        let parts = morsel::run_morsels(threads, n, |start, end| {
            let mut mspan = rain_obs::Span::enter_under(probe_id, "morsel");
            mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
            mspan.add("items", (end - start) as u64);
            probe_range(start, end)
        });
        let mut out = RowSet::with_rels(left.n_rels() + 1, debug);
        for p in parts {
            out.append(p);
        }
        out
    } else {
        probe_range(0, n)
    };
    probe_span.add("rows_out", out.len() as u64);
    out
}
