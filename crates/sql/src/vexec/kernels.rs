//! Branch-light predicate kernels over typed column slices.
//!
//! A model-free [`BExpr`] is compiled once per scan/filter into a
//! [`Kernel`] tree; evaluation then runs tight per-type loops over the
//! zero-copy column slices ([`Column::as_i64s`](crate::table::Column::as_i64s)
//! and friends), writing a
//! boolean mask aligned with the batch — no per-row [`Value`] boxing.
//!
//! Semantics replicate the row-at-a-time evaluator *exactly*, including
//! its quirks: numeric comparisons (ints included) go through `f64` like
//! [`Value::compare`]; incomparable or NULL operands compare false; NaN
//! fails every comparison, `!=` included. Expressions the compiler does
//! not recognize — arithmetic, `predict()`, nullable columns — return
//! `None` from [`compile`] and the engine falls back to the shared scalar
//! evaluator, so coverage is a performance property, never a correctness
//! one.

use crate::ast::CmpOp;
use crate::binder::BExpr;
use crate::table::{ColType, Table};
use crate::value::{like_match, Value};

/// Row lookup for kernel evaluation: maps `(relation, batch position)` to
/// a base-table row. Scans index a selection vector; joined filters index
/// a [`RowSet`] column.
pub trait RowLookup {
    /// Number of candidate positions in the batch.
    fn len(&self) -> usize;
    /// True when the batch is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Base row of `rel` at batch position `i`.
    fn row(&self, rel: usize, i: usize) -> u32;
}

/// A selection vector over a single scanned relation.
pub struct SelLookup<'a>(pub &'a [u32]);

impl RowLookup for SelLookup<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn row(&self, _rel: usize, i: usize) -> u32 {
        self.0[i]
    }
}

impl RowLookup for super::batch::RowSet {
    fn len(&self) -> usize {
        RowSet::len(self)
    }
    fn row(&self, rel: usize, i: usize) -> u32 {
        RowSet::row(self, rel, i)
    }
}

use super::batch::RowSet;

/// How two operand types compare (mirrors [`Value::compare`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpMode {
    /// Both numeric (Int/Float/Bool): compare as `f64`.
    Num,
    /// Both strings: lexicographic.
    Str,
    /// Incomparable (mixed string/numeric): always false.
    Never,
}

/// A compiled, model-free predicate over base-table columns.
#[derive(Debug, Clone)]
pub enum Kernel {
    /// Constant predicate (folded literals).
    Const(bool),
    /// `col <op> literal` with a numeric column and numeric literal.
    CmpNumLit {
        /// Relation index.
        rel: usize,
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Literal, widened to f64 (exactly what `Value::compare` does).
        lit: f64,
    },
    /// `col <op> literal` with string operands.
    CmpStrLit {
        /// Relation index.
        rel: usize,
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Literal.
        lit: String,
    },
    /// `col <op> col`, possibly across relations.
    CmpColCol {
        /// Left (relation, column).
        left: (usize, usize),
        /// Right (relation, column).
        right: (usize, usize),
        /// Operator.
        op: CmpOp,
        /// Type-pair comparison mode.
        mode: CmpMode,
    },
    /// `col [NOT] LIKE 'pattern'` over a string column.
    Like {
        /// Relation index.
        rel: usize,
        /// Column index.
        col: usize,
        /// Pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// A bare column as a predicate (SQL truthiness).
    Truthy {
        /// Relation index.
        rel: usize,
        /// Column index.
        col: usize,
    },
    /// Negation.
    Not(Box<Kernel>),
    /// Conjunction (no short-circuit needed: operands are effect-free).
    And(Vec<Kernel>),
    /// Disjunction.
    Or(Vec<Kernel>),
}

/// Compile a model-free predicate into a kernel tree. Returns `None`
/// when any sub-expression needs the scalar fallback (arithmetic,
/// `predict()`, nullable or type-incompatible columns).
pub fn compile(e: &BExpr, tables: &[&Table]) -> Option<Kernel> {
    // A column usable by a typed kernel: known type, no null bitmap.
    let col_ty = |rel: usize, col: usize| -> Option<ColType> {
        let t = tables[rel];
        if t.null_mask(col).is_some() {
            return None;
        }
        Some(t.schema().col(col).ty)
    };
    Some(match e {
        BExpr::Lit(v) => Kernel::Const(v.is_truthy()),
        BExpr::Col { rel, col } => {
            col_ty(*rel, *col)?;
            Kernel::Truthy {
                rel: *rel,
                col: *col,
            }
        }
        BExpr::Not(inner) => Kernel::Not(Box::new(compile(inner, tables)?)),
        BExpr::And(terms) => Kernel::And(
            terms
                .iter()
                .map(|t| compile(t, tables))
                .collect::<Option<_>>()?,
        ),
        BExpr::Or(terms) => Kernel::Or(
            terms
                .iter()
                .map(|t| compile(t, tables))
                .collect::<Option<_>>()?,
        ),
        BExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let BExpr::Col { rel, col } = &**expr else {
                return None;
            };
            if col_ty(*rel, *col)? != ColType::Str {
                return None;
            }
            Kernel::Like {
                rel: *rel,
                col: *col,
                pattern: pattern.clone(),
                negated: *negated,
            }
        }
        BExpr::Cmp { op, left, right } => match (&**left, &**right) {
            (BExpr::Lit(l), BExpr::Lit(r)) => {
                Kernel::Const(l.compare(r).is_some_and(|ord| op.eval(ord)))
            }
            (BExpr::Col { rel, col }, BExpr::Lit(lit)) => {
                compile_col_lit(*rel, *col, *op, lit, col_ty(*rel, *col)?)?
            }
            (BExpr::Lit(lit), BExpr::Col { rel, col }) => {
                // Flip `lit op col` into `col op' lit`.
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                compile_col_lit(*rel, *col, flipped, lit, col_ty(*rel, *col)?)?
            }
            (BExpr::Col { rel: lr, col: lc }, BExpr::Col { rel: rr, col: rc }) => {
                let (lt, rt) = (col_ty(*lr, *lc)?, col_ty(*rr, *rc)?);
                let numeric =
                    |t: ColType| matches!(t, ColType::Int | ColType::Float | ColType::Bool);
                let mode = if numeric(lt) && numeric(rt) {
                    CmpMode::Num
                } else if lt == ColType::Str && rt == ColType::Str {
                    CmpMode::Str
                } else {
                    CmpMode::Never
                };
                Kernel::CmpColCol {
                    left: (*lr, *lc),
                    right: (*rr, *rc),
                    op: *op,
                    mode,
                }
            }
            _ => return None,
        },
        // Arithmetic and predict() take the scalar fallback.
        _ => return None,
    })
}

fn compile_col_lit(rel: usize, col: usize, op: CmpOp, lit: &Value, ty: ColType) -> Option<Kernel> {
    let numeric_col = matches!(ty, ColType::Int | ColType::Float | ColType::Bool);
    Some(match lit {
        // NULL compares with nothing.
        Value::Null => Kernel::Const(false),
        Value::Str(s) if ty == ColType::Str => Kernel::CmpStrLit {
            rel,
            col,
            op,
            lit: s.clone(),
        },
        Value::Int(_) | Value::Float(_) | Value::Bool(_) if numeric_col => {
            let lit = lit.as_f64().expect("numeric literal");
            Kernel::CmpNumLit { rel, col, op, lit }
        }
        // Mixed string/numeric: incomparable, always false.
        _ => Kernel::Const(false),
    })
}

/// `!=` with `Value::compare` semantics: incomparable (NaN) operands
/// fail — deliberately NOT `a != b`, which is true for NaN.
#[allow(clippy::double_comparisons)]
#[inline]
fn cmp_ne(a: f64, b: f64) -> bool {
    a < b || a > b
}

/// f64 comparison with `Value::compare` semantics: NaN (incomparable)
/// fails every operator, `!=` included.
#[inline]
fn cmp_f64(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => cmp_ne(a, b),
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Numeric view of a non-null column (kernels only compile over these;
/// the typed hash join reuses it to canonicalize key columns to f64).
pub(crate) enum NumCol<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    B(&'a [bool]),
}

impl NumCol<'_> {
    pub(crate) fn of<'a>(table: &'a Table, col: usize) -> Option<NumCol<'a>> {
        let c = table.column(col);
        c.as_i64s()
            .map(NumCol::I)
            .or_else(|| c.as_f64s().map(NumCol::F))
            .or_else(|| c.as_bools().map(NumCol::B))
    }

    #[inline]
    pub(crate) fn get(&self, row: usize) -> f64 {
        match self {
            NumCol::I(v) => v[row] as f64,
            NumCol::F(v) => v[row],
            NumCol::B(v) => v[row] as u8 as f64,
        }
    }
}

impl Kernel {
    /// Evaluate the kernel over a batch, writing one mask entry per
    /// position in `rows`.
    pub fn eval<R: RowLookup>(&self, tables: &[&Table], rows: &R, out: &mut Vec<bool>) {
        let n = rows.len();
        out.clear();
        out.resize(n, false);
        match self {
            Kernel::Const(b) => out.iter_mut().for_each(|m| *m = *b),
            Kernel::CmpNumLit { rel, col, op, lit } => {
                let vals = NumCol::of(tables[*rel], *col).expect("numeric column");
                let (op, lit) = (*op, *lit);
                // One operator dispatch per batch, then a tight loop.
                macro_rules! run {
                    ($cmp:expr) => {
                        for (i, m) in out.iter_mut().enumerate() {
                            let a = vals.get(rows.row(*rel, i) as usize);
                            *m = $cmp(a, lit);
                        }
                    };
                }
                match op {
                    CmpOp::Eq => run!(|a, b| a == b),
                    CmpOp::Ne => run!(cmp_ne),
                    CmpOp::Lt => run!(|a, b| a < b),
                    CmpOp::Le => run!(|a, b| a <= b),
                    CmpOp::Gt => run!(|a, b| a > b),
                    CmpOp::Ge => run!(|a, b| a >= b),
                }
            }
            Kernel::CmpStrLit { rel, col, op, lit } => {
                let vals = tables[*rel].column(*col).as_strs().expect("string column");
                for (i, m) in out.iter_mut().enumerate() {
                    let a = &vals[rows.row(*rel, i) as usize];
                    *m = op.eval(a.as_str().cmp(lit.as_str()));
                }
            }
            Kernel::CmpColCol {
                left,
                right,
                op,
                mode,
            } => match mode {
                CmpMode::Never => {}
                CmpMode::Num => {
                    let l = NumCol::of(tables[left.0], left.1).expect("numeric column");
                    let r = NumCol::of(tables[right.0], right.1).expect("numeric column");
                    for (i, m) in out.iter_mut().enumerate() {
                        let a = l.get(rows.row(left.0, i) as usize);
                        let b = r.get(rows.row(right.0, i) as usize);
                        *m = cmp_f64(*op, a, b);
                    }
                }
                CmpMode::Str => {
                    let l = tables[left.0].column(left.1).as_strs().expect("str column");
                    let r = tables[right.0]
                        .column(right.1)
                        .as_strs()
                        .expect("str column");
                    for (i, m) in out.iter_mut().enumerate() {
                        let a = &l[rows.row(left.0, i) as usize];
                        let b = &r[rows.row(right.0, i) as usize];
                        *m = op.eval(a.cmp(b));
                    }
                }
            },
            Kernel::Like {
                rel,
                col,
                pattern,
                negated,
            } => {
                let vals = tables[*rel].column(*col).as_strs().expect("string column");
                for (i, m) in out.iter_mut().enumerate() {
                    let a = &vals[rows.row(*rel, i) as usize];
                    *m = like_match(a, pattern) != *negated;
                }
            }
            Kernel::Truthy { rel, col } => match tables[*rel].column(*col) {
                crate::table::Column::Bool(v) => {
                    for (i, m) in out.iter_mut().enumerate() {
                        *m = v[rows.row(*rel, i) as usize];
                    }
                }
                crate::table::Column::Int(v) => {
                    for (i, m) in out.iter_mut().enumerate() {
                        *m = v[rows.row(*rel, i) as usize] != 0;
                    }
                }
                crate::table::Column::Float(v) => {
                    for (i, m) in out.iter_mut().enumerate() {
                        *m = v[rows.row(*rel, i) as usize] != 0.0;
                    }
                }
                // Strings are never truthy.
                crate::table::Column::Str(_) => {}
            },
            Kernel::Not(inner) => {
                inner.eval(tables, rows, out);
                out.iter_mut().for_each(|m| *m = !*m);
            }
            Kernel::And(terms) => {
                out.iter_mut().for_each(|m| *m = true);
                let mut tmp = Vec::new();
                for t in terms {
                    t.eval(tables, rows, &mut tmp);
                    for (m, &v) in out.iter_mut().zip(&tmp) {
                        *m &= v;
                    }
                }
            }
            Kernel::Or(terms) => {
                let mut tmp = Vec::new();
                for t in terms {
                    t.eval(tables, rows, &mut tmp);
                    for (m, &v) in out.iter_mut().zip(&tmp) {
                        *m |= v;
                    }
                }
            }
        }
    }

    /// Short description for `EXPLAIN` output, e.g. `cmp(int,lit)`.
    pub fn describe(&self) -> String {
        match self {
            Kernel::Const(b) => format!("const({b})"),
            Kernel::CmpNumLit { .. } => "cmp(num,lit)".into(),
            Kernel::CmpStrLit { .. } => "cmp(str,lit)".into(),
            Kernel::CmpColCol { mode, .. } => match mode {
                CmpMode::Num => "cmp(num,num)".into(),
                CmpMode::Str => "cmp(str,str)".into(),
                CmpMode::Never => "const(false)".into(),
            },
            Kernel::Like { .. } => "like(str)".into(),
            Kernel::Truthy { .. } => "truthy".into(),
            Kernel::Not(inner) => format!("not({})", inner.describe()),
            Kernel::And(terms) => {
                let parts: Vec<String> = terms.iter().map(Kernel::describe).collect();
                format!("and({})", parts.join(","))
            }
            Kernel::Or(terms) => {
                let parts: Vec<String> = terms.iter().map(Kernel::describe).collect();
                format!("or({})", parts.join(","))
            }
        }
    }
}

/// Describe the kernel a predicate compiles to, or `None` when it takes
/// the row-at-a-time fallback. Used by `EXPLAIN` to annotate scans.
pub fn describe(e: &BExpr, tables: &[&Table]) -> Option<String> {
    compile(e, tables).map(|k| k.describe())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Schema};

    fn table() -> Table {
        Table::from_columns(
            Schema::new(&[
                ("x", ColType::Int),
                ("f", ColType::Float),
                ("s", ColType::Str),
                ("b", ColType::Bool),
            ]),
            vec![
                Column::Int(vec![1, 2, 3, 4]),
                Column::Float(vec![0.5, f64::NAN, 2.5, -1.0]),
                Column::Str(vec!["ab".into(), "cd".into(), "ae".into(), "".into()]),
                Column::Bool(vec![true, false, true, false]),
            ],
        )
    }

    fn run(e: &BExpr, t: &Table) -> Vec<bool> {
        let tables = [t];
        let k = compile(e, &tables).expect("compiles");
        let sel: Vec<u32> = (0..t.n_rows() as u32).collect();
        let mut mask = Vec::new();
        k.eval(&tables, &SelLookup(&sel), &mut mask);
        mask
    }

    fn col(c: usize) -> BExpr {
        BExpr::Col { rel: 0, col: c }
    }

    fn cmp(op: CmpOp, l: BExpr, r: BExpr) -> BExpr {
        BExpr::Cmp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn numeric_comparisons() {
        let t = table();
        let e = cmp(CmpOp::Gt, col(0), BExpr::Lit(Value::Int(2)));
        assert_eq!(run(&e, &t), vec![false, false, true, true]);
        // Flipped literal side.
        let e = cmp(CmpOp::Gt, BExpr::Lit(Value::Int(2)), col(0));
        assert_eq!(run(&e, &t), vec![true, false, false, false]);
        // NaN fails every comparison, != included (Value::compare parity).
        let e = cmp(CmpOp::Ne, col(1), BExpr::Lit(Value::Float(0.5)));
        assert_eq!(run(&e, &t), vec![false, false, true, true]);
    }

    #[test]
    fn string_and_like_kernels() {
        let t = table();
        let e = cmp(CmpOp::Ge, col(2), BExpr::Lit(Value::Str("ae".into())));
        assert_eq!(run(&e, &t), vec![false, true, true, false]);
        let e = BExpr::Like {
            expr: Box::new(col(2)),
            pattern: "a%".into(),
            negated: false,
        };
        assert_eq!(run(&e, &t), vec![true, false, true, false]);
    }

    #[test]
    fn boolean_combinators_and_truthiness() {
        let t = table();
        let e = BExpr::And(vec![
            col(3),
            cmp(CmpOp::Lt, col(0), BExpr::Lit(Value::Int(3))),
        ]);
        assert_eq!(run(&e, &t), vec![true, false, false, false]);
        let e = BExpr::Or(vec![col(3), BExpr::Not(Box::new(col(3)))]);
        assert_eq!(run(&e, &t), vec![true, true, true, true]);
    }

    #[test]
    fn incomparable_types_compile_to_false() {
        let t = table();
        let e = cmp(CmpOp::Eq, col(2), BExpr::Lit(Value::Int(1)));
        assert_eq!(run(&e, &t), vec![false; 4]);
        let e = cmp(CmpOp::Eq, col(0), BExpr::Lit(Value::Null));
        assert_eq!(run(&e, &t), vec![false; 4]);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let t = table();
        let tables = [&t];
        // Arithmetic needs the scalar fallback.
        let e = cmp(
            CmpOp::Eq,
            BExpr::Arith {
                op: crate::ast::ArithOp::Add,
                left: Box::new(col(0)),
                right: Box::new(BExpr::Lit(Value::Int(1))),
            },
            BExpr::Lit(Value::Int(3)),
        );
        assert!(compile(&e, &tables).is_none());
        // predict() never compiles.
        assert!(compile(&BExpr::Predict { rel: 0 }, &tables).is_none());
    }

    #[test]
    fn nullable_columns_fall_back() {
        let mut t = table();
        t.push_row(
            vec![
                Value::Null,
                Value::Float(0.0),
                Value::Str("x".into()),
                Value::Bool(false),
            ],
            None,
        );
        let e = cmp(CmpOp::Gt, col(0), BExpr::Lit(Value::Int(2)));
        assert!(compile(&e, &[&t]).is_none());
    }

    #[test]
    fn describe_names_kernels() {
        let t = table();
        let e = BExpr::And(vec![
            cmp(CmpOp::Gt, col(0), BExpr::Lit(Value::Int(2))),
            BExpr::Like {
                expr: Box::new(col(2)),
                pattern: "a%".into(),
                negated: true,
            },
        ]);
        assert_eq!(describe(&e, &[&t]).unwrap(), "and(cmp(num,lit),like(str))");
    }
}
