//! Vectorized table scans: pushed-down filters evaluated batch by batch,
//! sharded across morsels when a thread budget allows.
//!
//! The scan walks the base table in [`BATCH_SIZE`] windows. Each pushed
//! filter is compiled once into a [`Kernel`]; per batch, each kernel
//! writes a mask over the live selection and `SelVec::retain_mask`
//! compacts it. Filters that do not compile (arithmetic shapes, nullable
//! columns) drop to the shared row-at-a-time evaluator for the surviving
//! rows — semantics are always those of `EvalCtx::eval_pred`.
//!
//! Scan filters are model-free by construction (the optimizer never
//! pushes a `predict()` atom), so they prune identically in normal and
//! debug mode and provenance is unaffected. Model-freeness is also what
//! makes the scan embarrassingly parallel: with `threads > 1` and a large
//! enough table, the row range is split into [`morsel`]s filtered by
//! scoped workers (each with its own scratch context — no prediction
//! variable can be created here) and the per-morsel selections are merged
//! in morsel order, yielding the exact sequential output.

use super::batch::{Batch, BATCH_SIZE};
use super::kernels::{Kernel, SelLookup};
use super::morsel;
use crate::binder::BExpr;
use crate::eval::{EvalCtx, Sym};
use crate::incremental::PipelineTrace;
use crate::table::Table;
use crate::QueryError;

/// Base-row ids of `rel` surviving its pushed-down scan filters, in
/// ascending order (the same survivors, in the same order, as the tuple
/// engine's scan — at every thread count). When a skeleton capture is in
/// flight, the post-filter selection vector's cardinality is recorded in
/// `trace` — the scan output *is* the model-independent selection the
/// prepared skeleton reuses across refreshes.
pub(crate) fn scan(
    ctx: &mut EvalCtx,
    rel: usize,
    trace: Option<&mut PipelineTrace>,
) -> Result<Vec<u32>, QueryError> {
    let out = scan_inner(ctx, rel)?;
    if let Some(t) = trace {
        t.scan_rows.push(out.len());
    }
    Ok(out)
}

fn scan_inner(ctx: &mut EvalCtx, rel: usize) -> Result<Vec<u32>, QueryError> {
    let table = ctx.table_of(rel);
    let n = table.n_rows();
    let query = ctx.query;
    let filters = &query.scan_filters[rel];
    let mut span = rain_obs::Span::enter("scan");
    span.add("rows_in", n as u64);
    if filters.is_empty() {
        span.add("rows_out", n as u64);
        return Ok((0..n as u32).collect());
    }

    let tables: Vec<&Table> = query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();
    let compiled: Vec<Option<Kernel>> = filters
        .iter()
        .map(|f| super::kernels::compile(f, &tables))
        .collect();

    // Parallel path: shard the row range into morsels. Guarded on the
    // filters being model-free (always true for optimizer-built plans) so
    // a worker's scratch context can never observe or create prediction
    // variables — the workers only ever prune concretely.
    if morsel::worth_parallel(ctx.threads, n) && filters.iter().all(|f| !f.contains_predict()) {
        let (db, model, debug) = (ctx.db, ctx.model, ctx.debug);
        let scan_id = span.id();
        let parts = morsel::run_morsels(ctx.threads, n, |start, end| {
            // Workers don't share the spawner's span stack; attach their
            // per-morsel timings to the scan span explicitly. The morsel
            // index is derived from the (deterministic) row range, not
            // from claim order, so traces of the same query agree on
            // which morsel is which across runs and thread interleavings.
            let mut mspan = rain_obs::Span::enter_under(scan_id, "morsel");
            mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
            mspan.add("items", (end - start) as u64);
            let mut wctx = EvalCtx::new(db, model, query, debug);
            scan_range(
                &mut wctx, rel, table, &tables, filters, &compiled, start, end,
            )
        });
        let out = morsel::concat_results(parts)?;
        span.add("rows_out", out.len() as u64);
        return Ok(out);
    }

    let out = scan_range(ctx, rel, table, &tables, filters, &compiled, 0, n)?;
    span.add("rows_out", out.len() as u64);
    Ok(out)
}

/// Filter the window `start..end` of `rel`'s base table, batch by batch,
/// returning the surviving row ids in ascending order. The unit of work
/// shared by the sequential scan (one call over the whole table) and the
/// parallel scan (one call per morsel, each with its own scratch `ctx`).
#[allow(clippy::too_many_arguments)]
fn scan_range(
    ctx: &mut EvalCtx,
    rel: usize,
    table: &Table,
    tables: &[&Table],
    filters: &[BExpr],
    compiled: &[Option<Kernel>],
    start: usize,
    end: usize,
) -> Result<Vec<u32>, QueryError> {
    let mut out = Vec::with_capacity(end - start);
    let mut mask: Vec<bool> = Vec::with_capacity(BATCH_SIZE);
    let mut rows_buf = vec![0u32; rel + 1];
    for batch_start in (start..end).step_by(BATCH_SIZE) {
        let batch_end = (batch_start + BATCH_SIZE).min(end);
        let mut batch = Batch::window(table, batch_start as u32, batch_end as u32);
        for (f, k) in filters.iter().zip(compiled) {
            if batch.sel.is_empty() {
                break;
            }
            match k {
                Some(kernel) => {
                    kernel.eval(tables, &SelLookup(batch.sel.ids()), &mut mask);
                    batch.sel.retain_mask(&mask);
                }
                None => {
                    // Row-at-a-time fallback with the shared evaluator
                    // (including its defensive symbolic branch).
                    let mut err = None;
                    batch.sel.retain_rows(|r| {
                        if err.is_some() {
                            return false;
                        }
                        rows_buf[rel] = r;
                        match ctx.eval_pred(f, &rows_buf) {
                            Ok(Sym::Const(b)) => b,
                            Ok(Sym::Prov(p)) => p.eval_discrete(ctx.reg.preds()),
                            Err(e) => {
                                err = Some(e);
                                false
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
            }
        }
        out.extend_from_slice(batch.sel.ids());
    }
    Ok(out)
}
