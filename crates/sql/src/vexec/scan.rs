//! Vectorized table scans: pushed-down filters evaluated batch by batch.
//!
//! The scan walks the base table in [`BATCH_SIZE`] windows. Each pushed
//! filter is compiled once into a [`Kernel`]; per batch, each kernel
//! writes a mask over the live selection and [`SelVec::retain_mask`]
//! compacts it. Filters that do not compile (arithmetic shapes, nullable
//! columns) drop to the shared row-at-a-time evaluator for the surviving
//! rows — semantics are always those of [`EvalCtx::eval_pred`].
//!
//! Scan filters are model-free by construction (the optimizer never
//! pushes a `predict()` atom), so they prune identically in normal and
//! debug mode and provenance is unaffected.

use super::batch::{Batch, BATCH_SIZE};
use super::kernels::{self, Kernel, SelLookup};
use crate::eval::{EvalCtx, Sym};
use crate::incremental::PipelineTrace;
use crate::table::Table;
use crate::QueryError;

/// Base-row ids of `rel` surviving its pushed-down scan filters, in
/// ascending order (the same survivors, in the same order, as the tuple
/// engine's scan). When a skeleton capture is in flight, the post-filter
/// selection vector's cardinality is recorded in `trace` — the scan
/// output *is* the model-independent selection the prepared skeleton
/// reuses across refreshes.
pub(crate) fn scan(
    ctx: &mut EvalCtx,
    rel: usize,
    trace: Option<&mut PipelineTrace>,
) -> Result<Vec<u32>, QueryError> {
    let out = scan_inner(ctx, rel)?;
    if let Some(t) = trace {
        t.scan_rows.push(out.len());
    }
    Ok(out)
}

fn scan_inner(ctx: &mut EvalCtx, rel: usize) -> Result<Vec<u32>, QueryError> {
    let table = ctx.table_of(rel);
    let n = table.n_rows();
    let query = ctx.query;
    let filters = &query.scan_filters[rel];
    if filters.is_empty() {
        return Ok((0..n as u32).collect());
    }

    let tables: Vec<&Table> = query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();
    let compiled: Vec<Option<Kernel>> = filters
        .iter()
        .map(|f| kernels::compile(f, &tables))
        .collect();

    let mut out = Vec::with_capacity(n);
    let mut mask: Vec<bool> = Vec::with_capacity(BATCH_SIZE);
    let mut rows_buf = vec![0u32; rel + 1];
    for start in (0..n).step_by(BATCH_SIZE) {
        let end = (start + BATCH_SIZE).min(n);
        let mut batch = Batch::window(table, start as u32, end as u32);
        for (f, k) in filters.iter().zip(&compiled) {
            if batch.sel.is_empty() {
                break;
            }
            match k {
                Some(kernel) => {
                    kernel.eval(&tables, &SelLookup(batch.sel.ids()), &mut mask);
                    batch.sel.retain_mask(&mask);
                }
                None => {
                    // Row-at-a-time fallback with the shared evaluator
                    // (including its defensive symbolic branch).
                    let mut err = None;
                    batch.sel.retain_rows(|r| {
                        if err.is_some() {
                            return false;
                        }
                        rows_buf[rel] = r;
                        match ctx.eval_pred(f, &rows_buf) {
                            Ok(Sym::Const(b)) => b,
                            Ok(Sym::Prov(p)) => p.eval_discrete(ctx.reg.preds()),
                            Err(e) => {
                                err = Some(e);
                                false
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
            }
        }
        out.extend_from_slice(batch.sel.ids());
    }
    Ok(out)
}
