//! Vectorized table scans: pushed-down filters evaluated batch by batch,
//! sharded across morsels when a thread budget allows.
//!
//! The scan walks the base table in [`BATCH_SIZE`] windows. Each pushed
//! filter is compiled once into a [`Kernel`]; per batch, each kernel
//! writes a mask over the live selection and `SelVec::retain_mask`
//! compacts it. Filters that do not compile (arithmetic shapes, nullable
//! columns) drop to the shared row-at-a-time evaluator for the surviving
//! rows — semantics are always those of `EvalCtx::eval_pred`.
//!
//! Scan filters are model-free by construction (the optimizer never
//! pushes a `predict()` atom), so they prune identically in normal and
//! debug mode and provenance is unaffected. Model-freeness is also what
//! makes the scan embarrassingly parallel: with `threads > 1` and a large
//! enough table, the row range is split into [`morsel`]s filtered by
//! scoped workers (each with its own scratch context — no prediction
//! variable can be created here) and the per-morsel selections are merged
//! in morsel order, yielding the exact sequential output.

use super::batch::{Batch, BATCH_SIZE};
use super::kernels::{Kernel, SelLookup};
use super::morsel;
use crate::binder::BExpr;
use crate::eval::{EvalCtx, Sym};
use crate::incremental::PipelineTrace;
use crate::table::Table;
use crate::QueryError;

/// Base-row ids of `rel` surviving its pushed-down scan filters, in
/// ascending order (the same survivors, in the same order, as the tuple
/// engine's scan — at every thread count). When a skeleton capture is in
/// flight, the post-filter selection vector's cardinality is recorded in
/// `trace` — the scan output *is* the model-independent selection the
/// prepared skeleton reuses across refreshes.
pub(crate) fn scan(
    ctx: &mut EvalCtx,
    rel: usize,
    trace: Option<&mut PipelineTrace>,
) -> Result<Vec<u32>, QueryError> {
    let out = scan_inner(ctx, rel)?;
    if let Some(t) = trace {
        t.scan_rows.push(out.len());
    }
    Ok(out)
}

fn scan_inner(ctx: &mut EvalCtx, rel: usize) -> Result<Vec<u32>, QueryError> {
    let table = ctx.table_of(rel);
    let n = table.n_rows();
    let query = ctx.query;
    let filters = &query.scan_filters[rel];
    let mut span = rain_obs::Span::enter("scan");
    span.add("rows_in", n as u64);
    if filters.is_empty() {
        span.add("rows_out", n as u64);
        return Ok((0..n as u32).collect());
    }

    let tables: Vec<&Table> = query
        .rels
        .iter()
        .map(|r| ctx.db.table_by_id(r.id))
        .collect();

    // Index access path: resolve the plan's chosen index against the
    // live catalog and seed the selection from its postings instead of
    // walking the table. Any mismatch (index dropped, shape changed)
    // falls through to the sequential path below — same rows either way.
    if let Some(out) = index_scan(ctx, rel, &tables, filters)? {
        span.add("rows_out", out.len() as u64);
        return Ok(out);
    }

    let compiled: Vec<Option<Kernel>> = filters
        .iter()
        .map(|f| super::kernels::compile(f, &tables))
        .collect();

    // Parallel path: shard the row range into morsels. Guarded on the
    // filters being model-free (always true for optimizer-built plans) so
    // a worker's scratch context can never observe or create prediction
    // variables — the workers only ever prune concretely.
    if morsel::worth_parallel(ctx.threads, n) && filters.iter().all(|f| !f.contains_predict()) {
        let (db, model, debug) = (ctx.db, ctx.model, ctx.debug);
        let scan_id = span.id();
        let parts = morsel::run_morsels(ctx.threads, n, |start, end| {
            // Workers don't share the spawner's span stack; attach their
            // per-morsel timings to the scan span explicitly. The morsel
            // index is derived from the (deterministic) row range, not
            // from claim order, so traces of the same query agree on
            // which morsel is which across runs and thread interleavings.
            let mut mspan = rain_obs::Span::enter_under(scan_id, "morsel");
            mspan.add("index", (start / morsel::MORSEL_SIZE) as u64);
            mspan.add("items", (end - start) as u64);
            let mut wctx = EvalCtx::new(db, model, query, debug);
            scan_range(
                &mut wctx, rel, table, &tables, filters, &compiled, start, end,
            )
        });
        let out = morsel::concat_results(parts)?;
        span.add("rows_out", out.len() as u64);
        return Ok(out);
    }

    let out = scan_range(ctx, rel, table, &tables, filters, &compiled, 0, n)?;
    span.add("rows_out", out.len() as u64);
    Ok(out)
}

/// Try to answer `rel`'s scan through the index access path the plan
/// chose. Returns `Ok(None)` when the plan has no index path for this
/// relation or the index cannot serve it (dropped from the catalog,
/// filter shape drifted) — the caller then runs the sequential scan,
/// which produces the identical row set.
///
/// The probe seeds the selection with the index's posting rows (always
/// ascending, i.e. scan order); the relation's *other* filters are then
/// applied to just those candidates, compiled kernels first and the
/// shared row-at-a-time evaluator as fallback — exactly the sequential
/// scan's semantics on a narrower row set.
fn index_scan(
    ctx: &mut EvalCtx,
    rel: usize,
    tables: &[&Table],
    filters: &[BExpr],
) -> Result<Option<Vec<u32>>, QueryError> {
    use crate::ast::CmpOp;
    use crate::index::IndexKind;
    use crate::plan::AccessPath;

    let Some(&AccessPath::IndexScan { filter, col, kind }) = ctx.query.access.get(rel) else {
        return Ok(None);
    };
    let Some(f) = filters.get(filter) else {
        return Ok(None);
    };
    let Some((probe_col, op, lit)) = crate::cost::probe_shape(f) else {
        return Ok(None);
    };
    if probe_col != col {
        return Ok(None);
    }
    let db = ctx.db;
    let Some(ix) = db.index_on(ctx.query.rels[rel].id, col, kind) else {
        return Ok(None); // index dropped since planning: seq-scan fallback
    };
    let mut sel: Vec<u32> = match kind {
        IndexKind::Hash => {
            if op != CmpOp::Eq {
                return Ok(None);
            }
            match crate::eval::join_key(lit) {
                Some(key) => ix.lookup_eq(&key).to_vec(),
                // NULL/NaN literals compare equal to nothing.
                None => Vec::new(),
            }
        }
        IndexKind::Sorted => {
            let Some(v) = lit.as_f64() else {
                return Ok(None);
            };
            match op {
                CmpOp::Lt => ix.lookup_range(None, Some((v, false))),
                CmpOp::Le => ix.lookup_range(None, Some((v, true))),
                CmpOp::Gt => ix.lookup_range(Some((v, false)), None),
                CmpOp::Ge => ix.lookup_range(Some((v, true)), None),
                _ => return Ok(None),
            }
        }
    };
    let mut ispan = rain_obs::Span::enter("index-lookup");
    ispan.add("kind", kind.code() as u64);
    ispan.add("rows", sel.len() as u64);
    drop(ispan);

    // Apply the remaining filters to the candidates only.
    let mut mask: Vec<bool> = Vec::new();
    let mut rows_buf = vec![0u32; rel + 1];
    for (fi, f) in filters.iter().enumerate() {
        if fi == filter || sel.is_empty() {
            continue;
        }
        match super::kernels::compile(f, tables) {
            Some(kernel) => {
                kernel.eval(tables, &SelLookup(&sel), &mut mask);
                let mut keep = 0usize;
                for i in 0..sel.len() {
                    if mask[i] {
                        sel[keep] = sel[i];
                        keep += 1;
                    }
                }
                sel.truncate(keep);
            }
            None => {
                let mut err = None;
                sel.retain(|&r| {
                    if err.is_some() {
                        return false;
                    }
                    rows_buf[rel] = r;
                    match ctx.eval_pred(f, &rows_buf) {
                        Ok(Sym::Const(b)) => b,
                        Ok(Sym::Prov(p)) => p.eval_discrete(ctx.reg.preds()),
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
    }
    Ok(Some(sel))
}

/// Filter the window `start..end` of `rel`'s base table, batch by batch,
/// returning the surviving row ids in ascending order. The unit of work
/// shared by the sequential scan (one call over the whole table) and the
/// parallel scan (one call per morsel, each with its own scratch `ctx`).
#[allow(clippy::too_many_arguments)]
fn scan_range(
    ctx: &mut EvalCtx,
    rel: usize,
    table: &Table,
    tables: &[&Table],
    filters: &[BExpr],
    compiled: &[Option<Kernel>],
    start: usize,
    end: usize,
) -> Result<Vec<u32>, QueryError> {
    let mut out = Vec::with_capacity(end - start);
    let mut mask: Vec<bool> = Vec::with_capacity(BATCH_SIZE);
    let mut rows_buf = vec![0u32; rel + 1];
    for batch_start in (start..end).step_by(BATCH_SIZE) {
        let batch_end = (batch_start + BATCH_SIZE).min(end);
        let mut batch = Batch::window(table, batch_start as u32, batch_end as u32);
        for (f, k) in filters.iter().zip(compiled) {
            if batch.sel.is_empty() {
                break;
            }
            match k {
                Some(kernel) => {
                    kernel.eval(tables, &SelLookup(batch.sel.ids()), &mut mask);
                    batch.sel.retain_mask(&mask);
                }
                None => {
                    // Row-at-a-time fallback with the shared evaluator
                    // (including its defensive symbolic branch).
                    let mut err = None;
                    batch.sel.retain_rows(|r| {
                        if err.is_some() {
                            return false;
                        }
                        rows_buf[rel] = r;
                        match ctx.eval_pred(f, &rows_buf) {
                            Ok(Sym::Const(b)) => b,
                            Ok(Sym::Prov(p)) => p.eval_discrete(ctx.reg.preds()),
                            Err(e) => {
                                err = Some(e);
                                false
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
            }
        }
        out.extend_from_slice(batch.sel.ids());
    }
    Ok(out)
}
