//! Morsel-driven parallelism: deterministic work sharding for the
//! vectorized operators.
//!
//! A *morsel* is a contiguous range of work items — base-table rows for a
//! scan, accumulated tuples for a join probe, prediction variables for a
//! batched refresh. Workers (plain `std::thread::scope` threads, like
//! `rain-influence`'s record scoring) pull morsel indices off one atomic
//! counter, so load balances dynamically, but every morsel's *output* is
//! written into its own pre-allocated slot and the caller concatenates
//! the slots **in morsel order**. That makes parallel execution
//! bit-identical to sequential execution by construction: the merged
//! stream is the same rows in the same order no matter how many workers
//! ran or how they interleaved — which is what keeps the vectorized
//! engine's determinism guarantee (rows *and* provenance equal to the
//! tuple oracle) intact at every thread count.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Work items per morsel. A multiple of the scan batch size so a morsel
/// always holds whole batches; small enough that medium inputs still
/// split across workers, large enough that the per-morsel atomic claim
/// is noise.
pub(crate) const MORSEL_SIZE: usize = 4 * super::batch::BATCH_SIZE;

/// Inputs below this many items run sequentially even when a thread
/// budget is available — thread spawn costs more than the work saves.
pub(crate) const MIN_PARALLEL_ITEMS: usize = 2 * MORSEL_SIZE;

/// True when `n_items` is worth sharding across `threads` workers.
pub(crate) fn worth_parallel(threads: usize, n_items: usize) -> bool {
    threads > 1 && n_items >= MIN_PARALLEL_ITEMS
}

/// How many morsels `n_items` would shard into under a `threads` budget —
/// `1` when the input runs sequentially. `EXPLAIN` uses this so its
/// reported plan shape matches the per-morsel spans a traced run records.
pub(crate) fn morsel_count(threads: usize, n_items: usize) -> usize {
    if worth_parallel(threads, n_items) {
        n_items.div_ceil(MORSEL_SIZE)
    } else {
        1
    }
}

/// Most hash partitions a parallel build/aggregation splits into. Small
/// enough that per-partition routing lists and merge bookkeeping stay
/// cheap, large enough to feed every realistic worker budget.
pub(crate) const MAX_PARTITIONS: usize = 16;

/// How many hash partitions `n_items` splits into for a parallel
/// hash-join build or grouped aggregation. A function of the input size
/// **only** — never of the thread budget — so a traced run records the
/// same partition spans (same count, same deterministic indices) at
/// every parallel thread count.
pub(crate) fn partition_count(n_items: usize) -> usize {
    n_items.div_ceil(MORSEL_SIZE).clamp(1, MAX_PARTITIONS)
}

/// Which partition of `n_parts` a key hashes into. Routing uses its own
/// deterministic hasher (seed-free SipHash) so partition assignment is a
/// pure function of the key — identical across workers, runs, and thread
/// counts.
pub(crate) fn part_of<K: Hash + ?Sized>(key: &K, n_parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n_parts as u64) as usize
}

/// Run `work(task)` for every task index in `0..n_tasks` across up to
/// `threads` scoped workers, returning the outputs **in task order**.
///
/// The task-indexed sibling of [`run_morsels`]: hash-partitioned builds
/// and grouped aggregations shard by partition id instead of contiguous
/// item ranges, but determinism comes from the same construction — each
/// task writes its own pre-allocated slot, claim order never shows.
pub(crate) fn run_tasks<T, F>(threads: usize, n_tasks: usize, work: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<OnceLock<T>> = (0..n_tasks).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n_tasks.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= n_tasks {
                    break;
                }
                let out = work(t);
                let _ = slots[t].set(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every task claimed exactly once"))
        .collect()
}

/// Split `n_items` into contiguous morsels and run `work(start, end)` for
/// each across up to `threads` scoped workers, returning the per-morsel
/// outputs **in morsel order**.
///
/// `work` runs concurrently from several threads and must not rely on
/// claim order; determinism comes from the ordered collection. Callers
/// handle `n_items == 0` (returns no morsels) and sequential fallbacks
/// themselves — this function always spawns.
pub(crate) fn run_morsels<T, F>(threads: usize, n_items: usize, work: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, usize) -> T + Sync,
{
    let n_morsels = n_items.div_ceil(MORSEL_SIZE);
    let slots: Vec<OnceLock<T>> = (0..n_morsels).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n_morsels.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let m = next.fetch_add(1, Ordering::Relaxed);
                if m >= n_morsels {
                    break;
                }
                let start = m * MORSEL_SIZE;
                let end = (start + MORSEL_SIZE).min(n_items);
                let out = work(start, end);
                let _ = slots[m].set(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every morsel claimed exactly once"))
        .collect()
}

/// Concatenate per-morsel `Result<Vec<_>, E>` outputs in morsel order,
/// surfacing the first (lowest-morsel) error — the same error a
/// sequential pass would have hit first.
pub(crate) fn concat_results<T, E>(parts: Vec<Result<Vec<T>, E>>) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum());
    for p in parts {
        out.extend(p?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_outputs_collect_in_order_at_any_thread_count() {
        let n = 3 * MORSEL_SIZE + 17;
        let expect: Vec<usize> = (0..n).collect();
        for threads in [1, 2, 8] {
            let parts = run_morsels(threads, n, |s, e| (s..e).collect::<Vec<_>>());
            assert_eq!(parts.len(), n.div_ceil(MORSEL_SIZE));
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, expect, "threads={threads}");
        }
    }

    #[test]
    fn concat_surfaces_the_first_error() {
        let parts: Vec<Result<Vec<u32>, &str>> =
            vec![Ok(vec![1, 2]), Err("second"), Err("third"), Ok(vec![3])];
        assert_eq!(concat_results(parts), Err("second"));
        let ok: Vec<Result<Vec<u32>, &str>> = vec![Ok(vec![1]), Ok(vec![2, 3])];
        assert_eq!(concat_results(ok), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn small_inputs_are_not_worth_parallelizing() {
        assert!(!worth_parallel(8, MIN_PARALLEL_ITEMS - 1));
        assert!(!worth_parallel(1, 1 << 20));
        assert!(worth_parallel(2, MIN_PARALLEL_ITEMS));
    }

    #[test]
    fn task_outputs_collect_in_order_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let out = run_tasks(threads, 11, |t| t * t);
            let want: Vec<usize> = (0..11).map(|t| t * t).collect();
            assert_eq!(out, want, "threads={threads}");
        }
        assert!(run_tasks(4, 0, |t| t).is_empty());
    }

    #[test]
    fn partition_count_is_thread_independent_and_bounded() {
        assert_eq!(partition_count(0), 1);
        assert_eq!(partition_count(1), 1);
        assert_eq!(partition_count(MORSEL_SIZE), 1);
        assert_eq!(partition_count(MIN_PARALLEL_ITEMS), 2);
        assert_eq!(partition_count(usize::MAX / 2), MAX_PARTITIONS);
    }
}
