//! Morsel-driven parallelism: deterministic work sharding for the
//! vectorized operators.
//!
//! A *morsel* is a contiguous range of work items — base-table rows for a
//! scan, accumulated tuples for a join probe, prediction variables for a
//! batched refresh. Workers (plain `std::thread::scope` threads, like
//! `rain-influence`'s record scoring) pull morsel indices off one atomic
//! counter, so load balances dynamically, but every morsel's *output* is
//! written into its own pre-allocated slot and the caller concatenates
//! the slots **in morsel order**. That makes parallel execution
//! bit-identical to sequential execution by construction: the merged
//! stream is the same rows in the same order no matter how many workers
//! ran or how they interleaved — which is what keeps the vectorized
//! engine's determinism guarantee (rows *and* provenance equal to the
//! tuple oracle) intact at every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Work items per morsel. A multiple of the scan batch size so a morsel
/// always holds whole batches; small enough that medium inputs still
/// split across workers, large enough that the per-morsel atomic claim
/// is noise.
pub(crate) const MORSEL_SIZE: usize = 4 * super::batch::BATCH_SIZE;

/// Inputs below this many items run sequentially even when a thread
/// budget is available — thread spawn costs more than the work saves.
pub(crate) const MIN_PARALLEL_ITEMS: usize = 2 * MORSEL_SIZE;

/// True when `n_items` is worth sharding across `threads` workers.
pub(crate) fn worth_parallel(threads: usize, n_items: usize) -> bool {
    threads > 1 && n_items >= MIN_PARALLEL_ITEMS
}

/// How many morsels `n_items` would shard into under a `threads` budget —
/// `1` when the input runs sequentially. `EXPLAIN` uses this so its
/// reported plan shape matches the per-morsel spans a traced run records.
pub(crate) fn morsel_count(threads: usize, n_items: usize) -> usize {
    if worth_parallel(threads, n_items) {
        n_items.div_ceil(MORSEL_SIZE)
    } else {
        1
    }
}

/// Split `n_items` into contiguous morsels and run `work(start, end)` for
/// each across up to `threads` scoped workers, returning the per-morsel
/// outputs **in morsel order**.
///
/// `work` runs concurrently from several threads and must not rely on
/// claim order; determinism comes from the ordered collection. Callers
/// handle `n_items == 0` (returns no morsels) and sequential fallbacks
/// themselves — this function always spawns.
pub(crate) fn run_morsels<T, F>(threads: usize, n_items: usize, work: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, usize) -> T + Sync,
{
    let n_morsels = n_items.div_ceil(MORSEL_SIZE);
    let slots: Vec<OnceLock<T>> = (0..n_morsels).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n_morsels.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let m = next.fetch_add(1, Ordering::Relaxed);
                if m >= n_morsels {
                    break;
                }
                let start = m * MORSEL_SIZE;
                let end = (start + MORSEL_SIZE).min(n_items);
                let out = work(start, end);
                let _ = slots[m].set(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every morsel claimed exactly once"))
        .collect()
}

/// Concatenate per-morsel `Result<Vec<_>, E>` outputs in morsel order,
/// surfacing the first (lowest-morsel) error — the same error a
/// sequential pass would have hit first.
pub(crate) fn concat_results<T, E>(parts: Vec<Result<Vec<T>, E>>) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum());
    for p in parts {
        out.extend(p?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_outputs_collect_in_order_at_any_thread_count() {
        let n = 3 * MORSEL_SIZE + 17;
        let expect: Vec<usize> = (0..n).collect();
        for threads in [1, 2, 8] {
            let parts = run_morsels(threads, n, |s, e| (s..e).collect::<Vec<_>>());
            assert_eq!(parts.len(), n.div_ceil(MORSEL_SIZE));
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, expect, "threads={threads}");
        }
    }

    #[test]
    fn concat_surfaces_the_first_error() {
        let parts: Vec<Result<Vec<u32>, &str>> =
            vec![Ok(vec![1, 2]), Err("second"), Err("third"), Ok(vec![3])];
        assert_eq!(concat_results(parts), Err("second"));
        let ok: Vec<Result<Vec<u32>, &str>> = vec![Ok(vec![1]), Ok(vec![2, 3])];
        assert_eq!(concat_results(ok), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn small_inputs_are_not_worth_parallelizing() {
        assert!(!worth_parallel(8, MIN_PARALLEL_ITEMS - 1));
        assert!(!worth_parallel(1, 1 << 20));
        assert!(worth_parallel(2, MIN_PARALLEL_ITEMS));
    }
}
