//! Rule-based logical optimizer: bound statement → rewritten physical plan.
//!
//! Three classic rewrites run over the [`BoundStatement`], all chosen to be
//! **provenance-preserving**: debug-mode execution of the optimized plan
//! captures exactly the same polynomials over the same prediction
//! variables as the naive plan, so the relaxations in
//! [`prov`](crate::prov) and the variable registry in
//! [`predvar`](crate::predvar) stay correct for Holistic's `q(θ)` encoding
//! and TwoStep's ILP.
//!
//! 1. **Constant folding** — model-free, column-free subtrees evaluate at
//!    plan time, mirroring the executor's runtime semantics exactly
//!    (integer arithmetic, NULL-on-division-by-zero, truthiness, LIKE).
//!    Conjuncts folding to TRUE disappear; a FALSE conjunct stays and
//!    empties the result at scan time.
//! 2. **Predicate pushdown** — every conjunct whose relation footprint is
//!    a single relation *and* that mentions no `predict()` moves into that
//!    relation's scan filter, pruning base rows before the join pipeline
//!    touches them (hash-join builds shrink accordingly). Model predicates
//!    are never pushed: in debug mode tuples failing only model predicates
//!    must survive symbolically (§5.1), and the pushed filters are applied
//!    identically in both modes, so results and provenance are unchanged.
//! 3. **Projection pruning** — the per-relation column footprint is
//!    narrowed from "whole schema" to exactly the columns the plan still
//!    references. The executor reads columns lazily, so this rule costs
//!    nothing at runtime; its value is in `EXPLAIN` output and as a guard
//!    invariant (a rewrite that *widens* the footprint is a bug, which the
//!    property tests check).
//!
//! After the rewrites, the **cost-based phase** in [`cost`](crate::cost)
//! runs (gated by [`OptimizerConfig::join_reorder`] and
//! [`OptimizerConfig::index_paths`]): it reorders joins by estimated
//! cost, selects index access paths and index-nested-loop join steps
//! against the catalog's secondary indexes, and stamps the plan with
//! cardinality estimates. Join reordering changes tuple *enumeration*
//! order (SELECT output order may differ between two plans of the same
//! query) but never the result set, its provenance polynomials, or the
//! prediction-variable space — the equivalence property tests compare
//! canonicalized rows to check exactly this.

use crate::ast::{ArithOp, CmpOp};
use crate::binder::{BExpr, BoundAggArg, BoundStatement, GroupKey, QueryKind};
use crate::catalog::Database;
use crate::plan::QueryPlan;
use crate::value::{like_match, Value};
use std::collections::BTreeSet;

/// Which rewrite rules to run. [`OptimizerConfig::default`] enables all;
/// [`OptimizerConfig::naive`] disables all (the baseline plan used by the
/// equivalence tests and the `sql_exec` bench comparison).
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    /// Evaluate constant subtrees at plan time.
    pub constant_folding: bool,
    /// Push single-relation model-free conjuncts into scans.
    pub predicate_pushdown: bool,
    /// Narrow per-relation column footprints.
    pub projection_pruning: bool,
    /// Cost-based left-deep join ordering from catalog statistics
    /// (see [`cost::reorder`](crate::cost::reorder)); also stamps the
    /// plan with cardinality estimates.
    pub join_reorder: bool,
    /// Select index access paths and index-nested-loop joins against
    /// the catalog's secondary indexes
    /// (see [`cost::choose_paths`](crate::cost::choose_paths)).
    pub index_paths: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            constant_folding: true,
            predicate_pushdown: true,
            projection_pruning: true,
            join_reorder: true,
            index_paths: true,
        }
    }
}

impl OptimizerConfig {
    /// All rules off: lower the statement exactly as written.
    pub fn naive() -> Self {
        OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: false,
            projection_pruning: false,
            join_reorder: false,
            index_paths: false,
        }
    }
}

/// Optimize a bound statement with all rules enabled.
pub fn optimize(stmt: BoundStatement, db: &Database) -> QueryPlan {
    optimize_with(stmt, db, &OptimizerConfig::default())
}

/// Optimize a bound statement with an explicit rule selection.
pub fn optimize_with(stmt: BoundStatement, db: &Database, cfg: &OptimizerConfig) -> QueryPlan {
    let mut plan = QueryPlan::naive(stmt, db);

    if cfg.constant_folding {
        fold_plan(&mut plan);
    }
    if cfg.predicate_pushdown {
        push_down(&mut plan);
    }
    if cfg.projection_pruning {
        prune_columns(&mut plan);
    }
    if cfg.join_reorder {
        crate::cost::reorder(&mut plan, db);
    }
    if cfg.index_paths {
        crate::cost::choose_paths(&mut plan, db);
    }
    if cfg.join_reorder {
        crate::cost::annotate(&mut plan, db);
    }
    plan
}

/// Rule 1: constant folding over every expression in the plan.
fn fold_plan(plan: &mut QueryPlan) {
    let mut conjuncts = Vec::with_capacity(plan.conjuncts.len());
    for c in plan.conjuncts.drain(..) {
        let folded = fold(c);
        // A conjunct folding to a truthy literal filters nothing: drop it.
        // Falsy literals stay — the executor empties the pipeline cheaply.
        if let BExpr::Lit(v) = &folded {
            if v.is_truthy() {
                continue;
            }
        }
        conjuncts.push(folded);
    }
    plan.conjuncts = conjuncts;

    match &mut plan.kind {
        QueryKind::Select { items } => {
            for (e, _) in items.iter_mut() {
                *e = fold(std::mem::replace(e, BExpr::Lit(Value::Null)));
            }
        }
        QueryKind::Aggregate { aggs, .. } => {
            for agg in aggs.iter_mut() {
                match &mut agg.arg {
                    BoundAggArg::Scalar(e) => {
                        *e = fold(std::mem::replace(e, BExpr::Lit(Value::Null)));
                    }
                    BoundAggArg::ScaledPredict { factor, .. } => {
                        *factor = fold(std::mem::replace(factor, BExpr::Lit(Value::Null)));
                    }
                    BoundAggArg::CountStar | BoundAggArg::Predict { .. } => {}
                }
            }
        }
    }
}

/// Fold one expression bottom-up. Literal-only subtrees evaluate with the
/// executor's exact runtime semantics; everything else is rebuilt with
/// folded children (AND/OR additionally short-circuit on literal members).
pub fn fold(e: BExpr) -> BExpr {
    match e {
        BExpr::Lit(_) | BExpr::Col { .. } | BExpr::Predict { .. } => e,
        BExpr::Not(inner) => {
            let inner = fold(*inner);
            match inner {
                BExpr::Lit(v) => BExpr::Lit(Value::Bool(!v.is_truthy())),
                other => BExpr::Not(Box::new(other)),
            }
        }
        BExpr::And(terms) => {
            let mut kept = Vec::with_capacity(terms.len());
            for t in terms {
                match fold(t) {
                    // A falsy member decides the conjunction.
                    BExpr::Lit(v) if !v.is_truthy() => {
                        return BExpr::Lit(Value::Bool(false));
                    }
                    // Truthy members filter nothing.
                    BExpr::Lit(_) => {}
                    other => kept.push(other),
                }
            }
            match kept.len() {
                0 => BExpr::Lit(Value::Bool(true)),
                1 => kept.into_iter().next().expect("one element"),
                _ => BExpr::And(kept),
            }
        }
        BExpr::Or(terms) => {
            let mut kept = Vec::with_capacity(terms.len());
            for t in terms {
                match fold(t) {
                    BExpr::Lit(v) if v.is_truthy() => {
                        return BExpr::Lit(Value::Bool(true));
                    }
                    BExpr::Lit(_) => {}
                    other => kept.push(other),
                }
            }
            match kept.len() {
                0 => BExpr::Lit(Value::Bool(false)),
                1 => kept.into_iter().next().expect("one element"),
                _ => BExpr::Or(kept),
            }
        }
        BExpr::Cmp { op, left, right } => {
            let left = fold(*left);
            let right = fold(*right);
            if let (BExpr::Lit(l), BExpr::Lit(r)) = (&left, &right) {
                let b = l.compare(r).is_some_and(|ord| op.eval(ord));
                return BExpr::Lit(Value::Bool(b));
            }
            BExpr::Cmp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        BExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let expr = fold(*expr);
            match &expr {
                // Mirror the executor: NULL never matches; the binder has
                // excluded non-string operand types.
                BExpr::Lit(Value::Str(s)) => {
                    return BExpr::Lit(Value::Bool(like_match(s, &pattern) != negated));
                }
                BExpr::Lit(Value::Null) => return BExpr::Lit(Value::Bool(negated)),
                _ => {}
            }
            BExpr::Like {
                expr: Box::new(expr),
                pattern,
                negated,
            }
        }
        BExpr::Arith { op, left, right } => {
            let left = fold(*left);
            let right = fold(*right);
            if let (BExpr::Lit(l), BExpr::Lit(r)) = (&left, &right) {
                return BExpr::Lit(fold_arith(op, l, r));
            }
            BExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

/// Literal arithmetic with the executor's exact semantics: `Int`/`Bool`
/// operands stay integral (except division), division by zero and
/// non-numeric operands yield NULL.
fn fold_arith(op: ArithOp, l: &Value, r: &Value) -> Value {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => {
            let both_int = matches!(
                (l, r),
                (
                    Value::Int(_) | Value::Bool(_),
                    Value::Int(_) | Value::Bool(_)
                )
            );
            let out = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Value::Null;
                    }
                    a / b
                }
            };
            if both_int && op != ArithOp::Div {
                Value::Int(out as i64)
            } else {
                Value::Float(out)
            }
        }
        _ => Value::Null,
    }
}

/// Rule 2: move single-relation, model-free conjuncts into scan filters.
fn push_down(plan: &mut QueryPlan) {
    let mut residual = Vec::with_capacity(plan.conjuncts.len());
    for c in plan.conjuncts.drain(..) {
        let mut footprint = BTreeSet::new();
        c.rels_used(&mut footprint);
        let pushable = footprint.len() == 1 && !c.contains_predict();
        if pushable {
            let rel = *footprint.iter().next().expect("single relation");
            plan.scan_filters[rel].push(c);
        } else {
            residual.push(c);
        }
    }
    plan.conjuncts = residual;
}

/// Rule 3: narrow each relation's column footprint to what the plan reads.
fn prune_columns(plan: &mut QueryPlan) {
    let n = plan.rels.len();
    let mut used: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for c in &plan.conjuncts {
        c.cols_used(&mut used);
    }
    for filters in &plan.scan_filters {
        for f in filters {
            f.cols_used(&mut used);
        }
    }
    match &plan.kind {
        QueryKind::Select { items } => {
            for (e, _) in items {
                e.cols_used(&mut used);
            }
        }
        QueryKind::Aggregate { keys, aggs } => {
            for k in keys {
                if let GroupKey::Col { rel, col, .. } = k {
                    used[*rel].insert(*col);
                }
            }
            for agg in aggs {
                match &agg.arg {
                    BoundAggArg::Scalar(e) => e.cols_used(&mut used),
                    BoundAggArg::ScaledPredict { factor, .. } => factor.cols_used(&mut used),
                    BoundAggArg::CountStar | BoundAggArg::Predict { .. } => {}
                }
            }
        }
    }
    plan.used_cols = used;
}

/// Detect whether a comparison is a pure equi-join conjunct between two
/// disjoint relation sets (exposed for the planner/bench introspection).
pub fn is_equi_join(e: &BExpr) -> bool {
    if let BExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = e
    {
        if left.contains_predict() || right.contains_predict() {
            return false;
        }
        let mut ls = BTreeSet::new();
        let mut rs = BTreeSet::new();
        left.rels_used(&mut ls);
        right.rels_used(&mut rs);
        return !ls.is_empty() && !rs.is_empty() && ls.is_disjoint(&rs);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse_select;
    use crate::table::{ColType, Column, Schema, Table};
    use rain_linalg::Matrix;

    fn db() -> Database {
        let mut db = Database::new();
        let users = Table::from_columns(
            Schema::new(&[
                ("id", ColType::Int),
                ("name", ColType::Str),
                ("age", ColType::Int),
            ]),
            vec![
                Column::Int(vec![1, 2, 3]),
                Column::Str(vec!["a".into(), "b".into(), "c".into()]),
                Column::Int(vec![30, 40, 50]),
            ],
        )
        .with_features(Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0]]));
        db.register("users", users);
        let logins = Table::from_columns(
            Schema::new(&[("id", ColType::Int), ("active", ColType::Bool)]),
            vec![
                Column::Int(vec![1, 2, 3]),
                Column::Bool(vec![true, false, true]),
            ],
        );
        db.register("logins", logins);
        db
    }

    fn plan_for(sql: &str, cfg: &OptimizerConfig) -> QueryPlan {
        let db = db();
        let stmt = parse_select(sql).unwrap();
        let bound = bind(&stmt, &db).unwrap();
        optimize_with(bound, &db, cfg)
    }

    #[test]
    fn folds_constant_conjuncts_away() {
        let p = plan_for(
            "SELECT COUNT(*) FROM users WHERE 1 + 1 = 2 AND age > 35",
            &OptimizerConfig {
                predicate_pushdown: false,
                ..Default::default()
            },
        );
        // `1 + 1 = 2` folds to TRUE and disappears.
        assert_eq!(p.conjuncts.len(), 1);
        assert!(matches!(&p.conjuncts[0], BExpr::Cmp { .. }));
    }

    #[test]
    fn folds_arithmetic_with_runtime_semantics() {
        // Integer division by zero folds to NULL, not a panic.
        let e = fold(BExpr::Arith {
            op: ArithOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(4))),
            right: Box::new(BExpr::Lit(Value::Int(0))),
        });
        assert_eq!(e, BExpr::Lit(Value::Null));
        // Int + Int stays Int.
        let e = fold(BExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(BExpr::Lit(Value::Int(4))),
            right: Box::new(BExpr::Lit(Value::Int(5))),
        });
        assert_eq!(e, BExpr::Lit(Value::Int(9)));
    }

    #[test]
    fn false_conjunct_is_kept_to_empty_the_plan() {
        let p = plan_for(
            "SELECT COUNT(*) FROM users WHERE 1 = 2",
            &OptimizerConfig::default(),
        );
        assert_eq!(p.conjuncts, vec![BExpr::Lit(Value::Bool(false))]);
    }

    #[test]
    fn pushes_single_rel_filters_into_scans() {
        let p = plan_for(
            "SELECT COUNT(*) FROM users u, logins l \
             WHERE u.id = l.id AND l.active = true AND predict(u) = 1",
            &OptimizerConfig::default(),
        );
        // `l.active = true` lands on logins' scan; the join conjunct and
        // the model predicate stay residual.
        assert_eq!(p.scan_filters[0].len(), 0);
        assert_eq!(p.scan_filters[1].len(), 1);
        assert_eq!(p.conjuncts.len(), 2);
        assert!(is_equi_join(&p.conjuncts[0]));
        assert!(p.conjuncts[1].contains_predict());
    }

    #[test]
    fn model_predicates_are_never_pushed() {
        let p = plan_for(
            "SELECT COUNT(*) FROM users WHERE predict(*) = 1 AND age > 35",
            &OptimizerConfig::default(),
        );
        // age filter pushed; predict predicate residual (provenance!).
        assert_eq!(p.scan_filters[0].len(), 1);
        assert_eq!(p.conjuncts.len(), 1);
        assert!(p.conjuncts[0].contains_predict());
    }

    #[test]
    fn prunes_unused_columns() {
        let p = plan_for(
            "SELECT name FROM users WHERE age > 35",
            &OptimizerConfig::default(),
        );
        // Only name (1) and age (2) are read; id (0) is pruned.
        assert_eq!(p.used_cols[0], BTreeSet::from([1, 2]));
        // The naive plan declares the whole schema.
        let naive = plan_for(
            "SELECT name FROM users WHERE age > 35",
            &OptimizerConfig::naive(),
        );
        assert_eq!(naive.used_cols[0], BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn explain_shows_pushdown_and_pruning() {
        let db = db();
        let stmt = parse_select(
            "SELECT COUNT(*) FROM users u, logins l \
             WHERE u.id = l.id AND l.active = true AND predict(u) = 1",
        )
        .unwrap();
        let bound = bind(&stmt, &db).unwrap();
        let text = optimize(bound, &db).explain(&db);
        assert!(text.contains("Scan logins AS l"), "{text}");
        assert!(text.contains("filter=[l.active = true]"), "{text}");
        assert!(text.contains("predict(u) = 1"), "{text}");
    }

    #[test]
    fn explain_engine_annotates_kernels_and_strategy() {
        use crate::exec::Engine;
        let db = db();
        let stmt = parse_select(
            "SELECT COUNT(*) FROM users u, logins l \
             WHERE u.id = l.id AND l.active = true AND u.age + 1 > 30 AND predict(u) = 1",
        )
        .unwrap();
        let bound = bind(&stmt, &db).unwrap();
        let plan = optimize(bound, &db);
        let text = plan.explain_engine(&db, Engine::Vectorized);
        assert!(text.starts_with("Engine: vectorized\n"), "{text}");
        assert!(text.contains("Join [hash(num)]"), "{text}");
        // `l.active = true` compiles to a numeric-comparison kernel; the
        // arithmetic filter on users falls back to the scalar evaluator.
        assert!(text.contains("kernels=[cmp(num,lit)]"), "{text}");
        assert!(text.contains("kernels=[row-fallback]"), "{text}");
        let tuple = plan.explain_engine(&db, Engine::Tuple);
        assert!(tuple.starts_with("Engine: tuple\n"), "{tuple}");
        assert!(tuple.contains("Join [hash]"), "{tuple}");
        assert!(!tuple.contains("kernels="), "{tuple}");
        // The engine-agnostic explain stays unannotated.
        assert!(!plan.explain(&db).contains("Engine:"));

        // The annotation reflects the key the join will actually use: an
        // expression key cannot take the typed path, and a join the
        // schedule cannot key at all is a nested loop.
        let expr_key =
            parse_select("SELECT COUNT(*) FROM users u, logins l WHERE u.id + 0 = l.id").unwrap();
        let plan = optimize(bind(&expr_key, &db).unwrap(), &db);
        let text = plan.explain_engine(&db, Engine::Vectorized);
        assert!(text.contains("Join [hash(general)]"), "{text}");
        let cross =
            parse_select("SELECT COUNT(*) FROM users u, logins l WHERE u.id < l.id").unwrap();
        let plan = optimize(bind(&cross, &db).unwrap(), &db);
        let text = plan.explain_engine(&db, Engine::Vectorized);
        assert!(text.contains("Join [nested-loop]"), "{text}");
    }

    #[test]
    fn explain_renders_access_paths_and_estimates() {
        use crate::exec::Engine;
        use crate::index::IndexKind;
        let mut db = db();
        db.create_index("users", "age", IndexKind::Sorted).unwrap();
        db.create_index("logins", "id", IndexKind::Hash).unwrap();

        // A range filter on the sorted-indexed column becomes an index
        // scan; the plain logical explain already calls it out.
        let stmt = parse_select("SELECT COUNT(*) FROM users WHERE age > 35").unwrap();
        let plan = optimize(bind(&stmt, &db).unwrap(), &db);
        assert!(
            plan.explain(&db).contains("access=index-scan(age)"),
            "{}",
            plan.explain(&db)
        );
        // Engine renders name the default path too, and an index scan
        // starts from a posting list — one morsel, not a table shard.
        let exec = plan.explain_exec(&db, Engine::Vectorized, 2);
        assert!(exec.starts_with("Engine: vectorized threads=2\n"), "{exec}");
        assert!(exec.contains("access=index-scan(age)"), "{exec}");
        assert!(exec.contains("morsels=1"), "{exec}");

        // The same filter without index paths is a sequential scan —
        // named only when an engine render asks.
        let stmt = parse_select("SELECT COUNT(*) FROM users WHERE age > 35").unwrap();
        let seq = optimize_with(
            bind(&stmt, &db).unwrap(),
            &db,
            &OptimizerConfig {
                index_paths: false,
                ..Default::default()
            },
        );
        assert!(
            !seq.explain(&db).contains("access="),
            "{}",
            seq.explain(&db)
        );
        assert!(
            seq.explain_engine(&db, Engine::Vectorized)
                .contains("access=seq-scan"),
            "{}",
            seq.explain_engine(&db, Engine::Vectorized)
        );

        // An equi join whose inner side carries a hash index turns into
        // an index-nested-loop step under the vectorized engine; the
        // tuple oracle ignores physical annotations and stays a hash join.
        let stmt =
            parse_select("SELECT COUNT(*) FROM users u, logins l WHERE u.id = l.id").unwrap();
        let plan = optimize(bind(&stmt, &db).unwrap(), &db);
        let vec_text = plan.explain_engine(&db, Engine::Vectorized);
        assert!(vec_text.contains("index-nested-loop(id)"), "{vec_text}");
        assert!(
            plan.explain_engine(&db, Engine::Tuple)
                .contains("Join [hash"),
            "{}",
            plan.explain_engine(&db, Engine::Tuple)
        );

        // `analyze` pairs the optimizer's estimates with observed counts;
        // without it neither annotation appears.
        let analyzed = plan.explain_analyze(&db, Engine::Vectorized, 1, &[3, 3], &[3]);
        assert!(analyzed.contains("est=3 actual=3"), "{analyzed}");
        assert!(!vec_text.contains("est="), "{vec_text}");
        assert!(!vec_text.contains("actual="), "{vec_text}");
    }

    #[test]
    fn naive_config_is_identity_lowering() {
        let p = plan_for(
            "SELECT COUNT(*) FROM users WHERE 1 = 1 AND age > 35",
            &OptimizerConfig::naive(),
        );
        assert_eq!(p.conjuncts.len(), 2);
        assert!(p.scan_filters.iter().all(Vec::is_empty));
    }
}
