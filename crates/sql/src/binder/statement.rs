//! Statement binding: SELECT lists, aggregates, GROUP BY, and the
//! [`BoundStatement`] the optimizer consumes.

use super::{BExpr, BindError, Binder, BoundRel};
use crate::ast::{AggFunc, ArithOp, Expr, SelectItem, SelectStmt};
use crate::value::Value;

/// An aggregate argument after binding.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundAggArg {
    /// `COUNT(*)`.
    CountStar,
    /// A model-independent expression.
    Scalar(BExpr),
    /// `predict(rel)`.
    Predict {
        /// Relation index.
        rel: usize,
    },
    /// `factor * predict(rel)` with a model-independent factor — the
    /// appendix-B shape (`SUM(10^position · predict(image))`).
    ScaledPredict {
        /// Relation index.
        rel: usize,
        /// Model-independent multiplier expression.
        factor: BExpr,
    },
}

/// A bound aggregate select item.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAgg {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument.
    pub arg: BoundAggArg,
    /// Output column name.
    pub name: String,
}

/// A bound GROUP BY key.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupKey {
    /// A plain column.
    Col {
        /// Relation index.
        rel: usize,
        /// Column index.
        col: usize,
        /// Output column name.
        name: String,
    },
    /// `predict(rel)` — groups are the model's classes.
    Predict {
        /// Relation index.
        rel: usize,
    },
}

/// The projection/aggregation shape of a bound query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Plain SPJ select. `items` are `(expression, output name)`.
    Select {
        /// Output expressions with names.
        items: Vec<(BExpr, String)>,
    },
    /// Aggregate query (possibly grouped).
    Aggregate {
        /// Group keys (empty = one global group).
        keys: Vec<GroupKey>,
        /// Aggregates, in select-list order.
        aggs: Vec<BoundAgg>,
    },
}

/// A fully bound SPJA statement: the binder's output and the optimizer's
/// input. Every name in it is resolved to relation/column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundStatement {
    /// FROM relations in order.
    pub rels: Vec<BoundRel>,
    /// All WHERE/ON conjuncts, ready for pushdown.
    pub conjuncts: Vec<BExpr>,
    /// Projection or aggregation.
    pub kind: QueryKind,
}

impl<'a> Binder<'a> {
    /// Bind a full SELECT statement in the current context.
    pub fn bind_statement(&mut self, stmt: &SelectStmt) -> Result<BoundStatement, BindError> {
        self.bind_from(&stmt.from)?;

        // Conjuncts: WHERE plus all JOIN ... ON conditions, split on AND.
        let mut conjuncts = Vec::new();
        for cond in stmt.join_conds.iter().chain(
            stmt.where_clause
                .as_ref()
                .map(std::iter::once)
                .into_iter()
                .flatten(),
        ) {
            let bound = self.bind_expr(cond)?;
            self.validate_predicate(&bound)?;
            split_conjuncts(bound, &mut conjuncts);
        }

        let kind = if stmt.is_aggregate() {
            self.bind_aggregate(stmt)?
        } else {
            self.bind_select(stmt)?
        };
        Ok(BoundStatement {
            rels: self.context().rels.clone(),
            conjuncts,
            kind,
        })
    }

    fn bind_select(&self, stmt: &SelectStmt) -> Result<QueryKind, BindError> {
        if !stmt.group_by.is_empty() {
            return Err(BindError::InvalidGroupBy(
                "GROUP BY requires aggregates in the select list",
            ));
        }
        let mut items = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    let rels = &self.context().rels;
                    let many = rels.len() > 1;
                    for (ri, rel) in rels.iter().enumerate() {
                        let table = self.db().table_by_id(rel.id);
                        for (ci, col) in table.schema().iter().enumerate() {
                            let name = if many {
                                format!("{}_{}", rel.alias, col.name)
                            } else {
                                col.name.clone()
                            };
                            items.push((BExpr::Col { rel: ri, col: ci }, name));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr)?;
                    if bound.contains_predict() && !matches!(bound, BExpr::Predict { .. }) {
                        return Err(BindError::InvalidPredict(
                            "predict() must appear bare in the select list",
                        ));
                    }
                    let name = alias.clone().unwrap_or_else(|| display_name(expr));
                    items.push((bound, name));
                }
                SelectItem::Agg { .. } => unreachable!("bind_select on aggregate query"),
            }
        }
        Ok(QueryKind::Select { items })
    }

    fn bind_aggregate(&self, stmt: &SelectStmt) -> Result<QueryKind, BindError> {
        let mut keys = Vec::new();
        for g in &stmt.group_by {
            match self.bind_expr(g)? {
                BExpr::Col { rel, col } => {
                    let table = self.db().table_by_id(self.context().rels[rel].id);
                    let name = table.schema().col(col).name.clone();
                    keys.push(GroupKey::Col { rel, col, name });
                }
                BExpr::Predict { rel } => keys.push(GroupKey::Predict { rel }),
                _ => {
                    return Err(BindError::InvalidGroupBy(
                        "GROUP BY keys must be columns or predict()",
                    ))
                }
            }
        }
        let mut aggs = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Agg { func, expr, alias } => {
                    let arg = match (func, expr) {
                        (AggFunc::Count, None) => BoundAggArg::CountStar,
                        (AggFunc::Count, Some(_)) => {
                            return Err(BindError::InvalidAggregate(
                                "COUNT(expr) unsupported; use COUNT(*)",
                            ))
                        }
                        (_, None) => unreachable!("parser enforces agg args"),
                        (_, Some(e)) => self.bind_agg_arg(e)?,
                    };
                    let name = alias.clone().unwrap_or_else(|| func.as_str().to_string());
                    aggs.push(BoundAgg {
                        func: *func,
                        arg,
                        name,
                    });
                }
                SelectItem::Expr { expr, .. } => {
                    // Non-aggregate items must be group keys.
                    let bound = self.bind_expr(expr)?;
                    let is_key = keys.iter().any(|k| match (k, &bound) {
                        (GroupKey::Col { rel, col, .. }, BExpr::Col { rel: r, col: c }) => {
                            rel == r && col == c
                        }
                        (GroupKey::Predict { rel }, BExpr::Predict { rel: r }) => rel == r,
                        _ => false,
                    });
                    if !is_key {
                        return Err(BindError::NonKeySelectItem(display_name(expr)));
                    }
                }
                SelectItem::Star => return Err(BindError::StarWithAggregate),
            }
        }
        Ok(QueryKind::Aggregate { keys, aggs })
    }

    /// Bind a SUM/AVG argument: a model-free expression, a bare
    /// `predict(rel)`, or `factor * predict(rel)` / `predict(rel) * factor`
    /// with a model-free factor (the appendix-B multi-class OCR shape).
    fn bind_agg_arg(&self, e: &Expr) -> Result<BoundAggArg, BindError> {
        // Recognize the scaled shape on the *unbound* AST, because the
        // general expression binder rejects predict inside arithmetic.
        if let Expr::Arith {
            op: ArithOp::Mul,
            left,
            right,
        } = e
        {
            let (pred, factor) = match (&**left, &**right) {
                (Expr::Predict { .. }, other) => (&**left, other),
                (other, Expr::Predict { .. }) => (&**right, other),
                _ => (&Expr::Literal(Value::Null), &**left),
            };
            if let Expr::Predict { .. } = pred {
                let BExpr::Predict { rel } = self.bind_expr(pred)? else {
                    unreachable!()
                };
                let factor = self.bind_expr(factor)?;
                if factor.contains_predict() {
                    return Err(BindError::InvalidAggregate(
                        "at most one predict() per aggregate product",
                    ));
                }
                return Ok(BoundAggArg::ScaledPredict { rel, factor });
            }
        }
        Ok(match self.bind_expr(e)? {
            BExpr::Predict { rel } => BoundAggArg::Predict { rel },
            bound if !bound.contains_predict() => BoundAggArg::Scalar(bound),
            _ => {
                return Err(BindError::InvalidAggregate(
                    "predict() must appear bare (or scaled by a model-free factor) \
                     as an aggregate argument",
                ))
            }
        })
    }
}

/// Split a bound predicate into top-level conjuncts.
fn split_conjuncts(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::And(terms) => {
            for t in terms {
                split_conjuncts(t, out);
            }
        }
        other => out.push(other),
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Predict { .. } => "predict".into(),
        _ => "expr".into(),
    }
}
