//! Expression binding: name resolution, typing, and `predict()` placement.

use super::{BindError, Binder};
use crate::ast::{ArithOp, CmpOp, Expr};
use crate::table::ColType;
use crate::value::Value;
use std::collections::BTreeSet;

/// A bound scalar expression (all names resolved to indices).
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Literal.
    Lit(Value),
    /// Column `rels[rel].columns[col]`.
    Col {
        /// Relation index into the FROM list.
        rel: usize,
        /// Column index within that relation.
        col: usize,
    },
    /// Model inference over relation `rel`'s current row.
    Predict {
        /// Relation index into the FROM list.
        rel: usize,
    },
    /// Negation.
    Not(Box<BExpr>),
    /// Conjunction.
    And(Vec<BExpr>),
    /// Disjunction.
    Or(Vec<BExpr>),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
    },
    /// `LIKE`.
    Like {
        /// Operand.
        expr: Box<BExpr>,
        /// Pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
    },
}

impl BExpr {
    /// Record which relations the expression touches.
    pub fn rels_used(&self, out: &mut BTreeSet<usize>) {
        match self {
            BExpr::Lit(_) => {}
            BExpr::Col { rel, .. } | BExpr::Predict { rel } => {
                out.insert(*rel);
            }
            BExpr::Not(e) => e.rels_used(out),
            BExpr::And(es) | BExpr::Or(es) => {
                for e in es {
                    e.rels_used(out);
                }
            }
            BExpr::Cmp { left, right, .. } | BExpr::Arith { left, right, .. } => {
                left.rels_used(out);
                right.rels_used(out);
            }
            BExpr::Like { expr, .. } => expr.rels_used(out),
        }
    }

    /// Record which columns of each relation the expression reads.
    pub fn cols_used(&self, out: &mut [BTreeSet<usize>]) {
        match self {
            BExpr::Lit(_) | BExpr::Predict { .. } => {}
            BExpr::Col { rel, col } => {
                out[*rel].insert(*col);
            }
            BExpr::Not(e) => e.cols_used(out),
            BExpr::And(es) | BExpr::Or(es) => {
                for e in es {
                    e.cols_used(out);
                }
            }
            BExpr::Cmp { left, right, .. } | BExpr::Arith { left, right, .. } => {
                left.cols_used(out);
                right.cols_used(out);
            }
            BExpr::Like { expr, .. } => expr.cols_used(out),
        }
    }

    /// True when the expression mentions `predict` anywhere.
    pub fn contains_predict(&self) -> bool {
        match self {
            BExpr::Predict { .. } => true,
            BExpr::Lit(_) | BExpr::Col { .. } => false,
            BExpr::Not(e) | BExpr::Like { expr: e, .. } => e.contains_predict(),
            BExpr::And(es) | BExpr::Or(es) => es.iter().any(BExpr::contains_predict),
            BExpr::Cmp { left, right, .. } | BExpr::Arith { left, right, .. } => {
                left.contains_predict() || right.contains_predict()
            }
        }
    }
}

/// Static type of a bound expression; `None` means statically unknown
/// (NULL literals), which every operator accepts.
pub fn infer_type(e: &BExpr, col_ty: &dyn Fn(usize, usize) -> ColType) -> Option<ColType> {
    match e {
        BExpr::Lit(Value::Int(_)) => Some(ColType::Int),
        BExpr::Lit(Value::Float(_)) => Some(ColType::Float),
        BExpr::Lit(Value::Str(_)) => Some(ColType::Str),
        BExpr::Lit(Value::Bool(_)) => Some(ColType::Bool),
        BExpr::Lit(Value::Null) => None,
        BExpr::Col { rel, col } => Some(col_ty(*rel, *col)),
        BExpr::Predict { .. } => Some(ColType::Int),
        BExpr::Not(_) | BExpr::And(_) | BExpr::Or(_) | BExpr::Cmp { .. } | BExpr::Like { .. } => {
            Some(ColType::Bool)
        }
        BExpr::Arith { op, left, right } => {
            let lt = infer_type(left, col_ty);
            let rt = infer_type(right, col_ty);
            if *op != ArithOp::Div
                && lt.is_none_or(|t| t == ColType::Int || t == ColType::Bool)
                && rt.is_none_or(|t| t == ColType::Int || t == ColType::Bool)
            {
                Some(ColType::Int)
            } else {
                Some(ColType::Float)
            }
        }
    }
}

fn type_name(t: Option<ColType>) -> &'static str {
    match t {
        None => "null",
        Some(ColType::Bool) => "bool",
        Some(ColType::Int) => "int",
        Some(ColType::Float) => "float",
        Some(ColType::Str) => "string",
    }
}

fn is_numeric(t: Option<ColType>) -> bool {
    t.is_none_or(|t| matches!(t, ColType::Int | ColType::Float | ColType::Bool))
}

impl<'a> Binder<'a> {
    /// Static type of a bound expression in the current context.
    pub fn expr_type(&self, e: &BExpr) -> Option<ColType> {
        infer_type(e, &|rel, col| self.col_type(rel, col))
    }

    /// Bind a scalar expression in the current context: resolve names,
    /// type-check operators, and enforce that `predict` stays out of
    /// arithmetic (paper §3.1).
    pub fn bind_expr(&self, e: &Expr) -> Result<BExpr, BindError> {
        Ok(match e {
            Expr::Literal(v) => BExpr::Lit(v.clone()),
            Expr::Column { qualifier, name } => {
                let (rel, col) = self.resolve_column(qualifier.as_deref(), name)?;
                BExpr::Col { rel, col }
            }
            Expr::Predict { rel } => {
                let rel = match rel {
                    Some(alias) => self.resolve_rel(alias)?,
                    None => {
                        if self.context().rels.len() != 1 {
                            return Err(BindError::AmbiguousPredict);
                        }
                        0
                    }
                };
                let bound = &self.context().rels[rel];
                if self.db().table_by_id(bound.id).features().is_none() {
                    return Err(BindError::MissingFeatures(bound.table.clone()));
                }
                BExpr::Predict { rel }
            }
            Expr::Not(inner) => BExpr::Not(Box::new(self.bind_expr(inner)?)),
            Expr::And(terms) => BExpr::And(
                terms
                    .iter()
                    .map(|t| self.bind_expr(t))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Or(terms) => BExpr::Or(
                terms
                    .iter()
                    .map(|t| self.bind_expr(t))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Cmp { op, left, right } => {
                let l = self.bind_expr(left)?;
                let r = self.bind_expr(right)?;
                let (lt, rt) = (self.expr_type(&l), self.expr_type(&r));
                // Numeric compares with numeric, string with string; NULL
                // compares with anything (and yields no ordering at run
                // time, exactly as before).
                let compatible =
                    lt.is_none() || rt.is_none() || lt == rt || (is_numeric(lt) && is_numeric(rt));
                if !compatible {
                    return Err(BindError::TypeMismatch {
                        context: "comparison",
                        expected: type_name(lt),
                        found: type_name(rt).to_string(),
                    });
                }
                BExpr::Cmp {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let bound = self.bind_expr(expr)?;
                if bound.contains_predict() {
                    return Err(BindError::InvalidPredict(
                        "predict() cannot be used with LIKE",
                    ));
                }
                let ty = self.expr_type(&bound);
                if !matches!(ty, None | Some(ColType::Str)) {
                    return Err(BindError::TypeMismatch {
                        context: "LIKE",
                        expected: "string",
                        found: type_name(ty).to_string(),
                    });
                }
                BExpr::Like {
                    expr: Box::new(bound),
                    pattern: pattern.clone(),
                    negated: *negated,
                }
            }
            Expr::Arith { op, left, right } => {
                let l = self.bind_expr(left)?;
                let r = self.bind_expr(right)?;
                if l.contains_predict() || r.contains_predict() {
                    return Err(BindError::InvalidPredict(
                        "predict() may not appear inside arithmetic",
                    ));
                }
                for side in [&l, &r] {
                    let ty = self.expr_type(side);
                    if !is_numeric(ty) {
                        return Err(BindError::TypeMismatch {
                            context: "arithmetic",
                            expected: "a numeric operand",
                            found: type_name(ty).to_string(),
                        });
                    }
                }
                BExpr::Arith {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        })
    }

    /// Enforce where `predict` may appear inside a predicate: bare in a
    /// comparison against a model-free expression or another `predict`.
    pub(crate) fn validate_predicate(&self, e: &BExpr) -> Result<(), BindError> {
        match e {
            BExpr::Predict { .. } => Err(BindError::InvalidPredict(
                "predict() must be compared, not used as a bare boolean",
            )),
            BExpr::Lit(_) | BExpr::Col { .. } => Ok(()),
            BExpr::Not(inner) => self.validate_predicate(inner),
            BExpr::And(terms) | BExpr::Or(terms) => {
                terms.iter().try_for_each(|t| self.validate_predicate(t))
            }
            // bind_expr already rejects predict under LIKE and arithmetic.
            BExpr::Like { .. } => Ok(()),
            BExpr::Arith { left, right, .. } => {
                self.validate_predicate(left)?;
                self.validate_predicate(right)
            }
            BExpr::Cmp { left, right, .. } => {
                let lp = matches!(**left, BExpr::Predict { .. });
                let rp = matches!(**right, BExpr::Predict { .. });
                if (left.contains_predict() && !lp) || (right.contains_predict() && !rp) {
                    return Err(BindError::InvalidPredict(
                        "predict() must appear bare in comparisons",
                    ));
                }
                Ok(())
            }
        }
    }
}
