//! Semantic analysis: parser AST → typed, name-resolved bound statements.
//!
//! The binder is the middle layer of the query stack
//! (`parser → binder → optimizer → executor`). It consumes a raw
//! [`SelectStmt`], resolves every table and column
//! against the [`Database`] catalog — honoring
//! table aliases and scoped binding contexts — type-checks expressions,
//! enforces the dialect's `predict()` placement rules (paper §3.1), and
//! emits a [`BoundStatement`] whose expressions address relations and
//! columns by index, so the optimizer and executor never touch a string.
//!
//! Errors are reported as the typed [`BindError`] enum (thiserror-style
//! hand-rolled `Display`/`Error` impls — the workspace is dependency-free),
//! never as panics: unknown tables/columns, ambiguous unqualified names,
//! duplicate aliases, and type mismatches each get their own variant so
//! callers can match on the failure class.
//!
//! Binding contexts form a stack ([`Binder::push_context`] /
//! [`Binder::pop_context`]): each context scopes the FROM relations of one
//! SELECT, so subqueries bind their own names without leaking into (or
//! clobbering) the enclosing scope. Name resolution searches innermost
//! first; hits in an enclosing context are reported as unsupported
//! correlated references until the executor grows subquery support.

mod expression;
mod statement;
mod table_ref;

pub use expression::{infer_type, BExpr};
pub use statement::{BoundAgg, BoundAggArg, BoundStatement, GroupKey, QueryKind};
pub use table_ref::{BindContext, BoundRel};

use crate::ast::SelectStmt;
use crate::catalog::Database;
use crate::table::ColType;

/// A name-resolution, validation, or typing error.
///
/// Every variant corresponds to one failure class the binder can hit; the
/// `Display` impl renders the operator-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// FROM references a table the catalog does not know.
    UnknownTable(String),
    /// Two FROM items share an alias.
    DuplicateAlias(String),
    /// A column name resolves to nothing in scope (rendered with its
    /// qualifier when one was written).
    UnknownColumn {
        /// Optional `alias.` qualifier as written.
        qualifier: Option<String>,
        /// Column name as written.
        name: String,
    },
    /// An unqualified column name matches more than one relation in scope.
    AmbiguousColumn(String),
    /// A qualifier or `predict(alias)` names no relation in scope.
    UnknownAlias(String),
    /// `predict(*)` with more than one relation in scope.
    AmbiguousPredict,
    /// `predict()` over a table registered without a feature matrix.
    MissingFeatures(String),
    /// An expression's operand types don't fit the operator.
    TypeMismatch {
        /// Where the mismatch happened (operator or clause).
        context: &'static str,
        /// What the operator needed.
        expected: &'static str,
        /// What the operand was.
        found: String,
    },
    /// `predict()` used somewhere the dialect forbids (inside arithmetic,
    /// under LIKE, as a bare boolean, non-bare in comparisons/projections).
    InvalidPredict(&'static str),
    /// An unsupported aggregate shape (e.g. `COUNT(expr)`).
    InvalidAggregate(&'static str),
    /// A GROUP BY clause problem (non-column/non-predict key, or GROUP BY
    /// without aggregates).
    InvalidGroupBy(&'static str),
    /// A non-aggregate select item that is not a GROUP BY key.
    NonKeySelectItem(String),
    /// `SELECT *` mixed with aggregates.
    StarWithAggregate,
    /// A construct the binder recognizes but the engine cannot run yet.
    Unsupported(&'static str),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::UnknownTable(t) => write!(f, "unknown table {t}"),
            BindError::DuplicateAlias(a) => write!(f, "duplicate alias {a}"),
            BindError::UnknownColumn {
                qualifier: Some(q),
                name,
            } => {
                write!(f, "unknown column {q}.{name}")
            }
            BindError::UnknownColumn {
                qualifier: None,
                name,
            } => {
                write!(f, "unknown column {name}")
            }
            BindError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}; qualify it"),
            BindError::UnknownAlias(a) => write!(f, "unknown relation alias {a}"),
            BindError::AmbiguousPredict => write!(
                f,
                "predict(*) is ambiguous with multiple relations; use predict(alias)"
            ),
            BindError::MissingFeatures(t) => {
                write!(f, "table {t} has no feature matrix for predict()")
            }
            BindError::TypeMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            BindError::InvalidPredict(msg) => write!(f, "{msg}"),
            BindError::InvalidAggregate(msg) => write!(f, "{msg}"),
            BindError::InvalidGroupBy(msg) => write!(f, "{msg}"),
            BindError::NonKeySelectItem(item) => {
                write!(f, "non-aggregate select item {item} must be a GROUP BY key")
            }
            BindError::StarWithAggregate => write!(f, "SELECT * not allowed with aggregates"),
            BindError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Bind a parsed statement against a database.
///
/// The standalone entry point: builds a [`Binder`], opens the statement's
/// root context, and lowers the AST into a [`BoundStatement`].
pub fn bind(stmt: &SelectStmt, db: &Database) -> Result<BoundStatement, BindError> {
    Binder::new(db).bind_statement(stmt)
}

/// The binder: catalog access plus a stack of scoped binding contexts.
pub struct Binder<'a> {
    db: &'a Database,
    contexts: Vec<BindContext>,
}

impl<'a> Binder<'a> {
    /// A binder over a database with an empty root context.
    pub fn new(db: &'a Database) -> Self {
        Binder {
            db,
            contexts: vec![BindContext::default()],
        }
    }

    /// The database being bound against.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// Open a fresh scope (entering a subquery). Names bound in the new
    /// context shadow — and never leak into — enclosing contexts.
    pub fn push_context(&mut self) {
        self.contexts.push(BindContext::default());
    }

    /// Close the innermost scope (leaving a subquery), discarding its
    /// bindings.
    ///
    /// # Panics
    /// Panics if only the root context remains — push/pop must pair.
    pub fn pop_context(&mut self) -> BindContext {
        assert!(
            self.contexts.len() > 1,
            "pop_context: cannot pop the root context"
        );
        self.contexts.pop().expect("non-empty context stack")
    }

    /// The innermost (current) context.
    pub fn context(&self) -> &BindContext {
        self.contexts.last().expect("non-empty context stack")
    }

    pub(crate) fn context_mut(&mut self) -> &mut BindContext {
        self.contexts.last_mut().expect("non-empty context stack")
    }

    /// Depth of the context stack (1 = just the root).
    pub fn depth(&self) -> usize {
        self.contexts.len()
    }

    /// Resolve a relation alias, searching innermost context first.
    /// Matches in an enclosing context are correlated references, which
    /// the executor cannot run yet.
    pub(crate) fn resolve_rel(&self, alias: &str) -> Result<usize, BindError> {
        for (depth, ctx) in self.contexts.iter().rev().enumerate() {
            if let Some(rel) = ctx.rels.iter().position(|r| r.alias == alias) {
                if depth == 0 {
                    return Ok(rel);
                }
                return Err(BindError::Unsupported(
                    "correlated references to an enclosing scope",
                ));
            }
        }
        Err(BindError::UnknownAlias(alias.to_string()))
    }

    /// Resolve a (possibly qualified) column name against the current
    /// context, walking outward for qualified names bound in enclosing
    /// scopes (rejected as correlated until subqueries execute).
    pub(crate) fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<(usize, usize), BindError> {
        match qualifier {
            Some(q) => {
                let rel = self.resolve_rel(q)?;
                let table = self.db.table_by_id(self.context().rels[rel].id);
                let col =
                    table
                        .schema()
                        .index_of(name)
                        .ok_or_else(|| BindError::UnknownColumn {
                            qualifier: Some(q.to_string()),
                            name: name.to_string(),
                        })?;
                Ok((rel, col))
            }
            None => {
                let mut found = None;
                for (ri, rel) in self.context().rels.iter().enumerate() {
                    let table = self.db.table_by_id(rel.id);
                    if let Some(ci) = table.schema().index_of(name) {
                        if found.is_some() {
                            return Err(BindError::AmbiguousColumn(name.to_string()));
                        }
                        found = Some((ri, ci));
                    }
                }
                found.ok_or_else(|| BindError::UnknownColumn {
                    qualifier: None,
                    name: name.to_string(),
                })
            }
        }
    }

    /// Column type of a bound column reference in the current context.
    pub(crate) fn col_type(&self, rel: usize, col: usize) -> ColType {
        self.db
            .table_by_id(self.context().rels[rel].id)
            .schema()
            .col(col)
            .ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TableRef;
    use crate::table::{ColType, Column, Schema, Table};

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            "users",
            Table::from_columns(
                Schema::new(&[("id", ColType::Int)]),
                vec![Column::Int(vec![1, 2])],
            ),
        );
        db.register(
            "logins",
            Table::from_columns(
                Schema::new(&[("id", ColType::Int)]),
                vec![Column::Int(vec![1])],
            ),
        );
        db
    }

    #[test]
    fn contexts_scope_and_shadow() {
        let db = db();
        let mut b = Binder::new(&db);
        b.bind_from(&[TableRef {
            name: "users".into(),
            alias: "u".into(),
        }])
        .unwrap();
        assert!(b.resolve_rel("u").is_ok());

        // Inner scope: `u` is not visible as a plain relation...
        b.push_context();
        assert!(matches!(b.resolve_rel("u"), Err(BindError::Unsupported(_))));
        // ...but a fresh binding of the SAME alias shadows the outer one.
        b.bind_from(&[TableRef {
            name: "logins".into(),
            alias: "u".into(),
        }])
        .unwrap();
        let rel = b.resolve_rel("u").unwrap();
        assert_eq!(b.context().rels[rel].table, "logins");

        // Popping restores the outer binding.
        b.pop_context();
        let rel = b.resolve_rel("u").unwrap();
        assert_eq!(b.context().rels[rel].table, "users");
    }

    #[test]
    #[should_panic(expected = "cannot pop the root context")]
    fn root_context_cannot_be_popped() {
        let db = db();
        let mut b = Binder::new(&db);
        b.pop_context();
    }

    #[test]
    fn unknown_alias_vs_correlated() {
        let db = db();
        let mut b = Binder::new(&db);
        assert_eq!(
            b.resolve_rel("ghost"),
            Err(BindError::UnknownAlias("ghost".into()))
        );
        b.bind_from(&[TableRef {
            name: "users".into(),
            alias: "outer_u".into(),
        }])
        .unwrap();
        b.push_context();
        assert!(matches!(
            b.resolve_rel("outer_u"),
            Err(BindError::Unsupported(_))
        ));
    }
}
