//! FROM-clause binding: table references → catalog-resolved relations.

use super::{BindError, Binder};
use crate::ast::TableRef;
use crate::catalog::TableId;

/// A FROM-list relation after binding: stable catalog id plus the names
/// the rest of the pipeline still wants (the prediction-variable registry
/// keys by table name, the printer by alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundRel {
    /// Stable catalog id (hot-path lookups go through this).
    pub id: TableId,
    /// Catalog table name (lowercase).
    pub table: String,
    /// Alias used in the query.
    pub alias: String,
}

/// One scope's worth of name bindings: the relations its FROM clause put
/// in scope, in order. Lives on the binder's context stack.
#[derive(Debug, Clone, Default)]
pub struct BindContext {
    /// FROM relations bound in this scope.
    pub rels: Vec<BoundRel>,
}

impl<'a> Binder<'a> {
    /// Bind a FROM list into the current context: resolve each table name
    /// against the catalog and reject duplicate aliases.
    pub fn bind_from(&mut self, from: &[TableRef]) -> Result<(), BindError> {
        for tr in from {
            self.bind_table_ref(tr)?;
        }
        Ok(())
    }

    /// Bind one table reference into the current context.
    pub fn bind_table_ref(&mut self, tr: &TableRef) -> Result<usize, BindError> {
        let entry = self
            .db()
            .entry(&tr.name)
            .ok_or_else(|| BindError::UnknownTable(tr.name.clone()))?;
        let (id, name) = (entry.id, entry.name.clone());
        let ctx = self.context_mut();
        if ctx.rels.iter().any(|r| r.alias == tr.alias) {
            return Err(BindError::DuplicateAlias(tr.alias.clone()));
        }
        ctx.rels.push(BoundRel {
            id,
            table: name,
            alias: tr.alias.clone(),
        });
        Ok(ctx.rels.len() - 1)
    }
}
