//! The database catalog: named tables.

use crate::table::Table;
use std::collections::HashMap;

/// A named collection of tables (the queried database `D` of the paper).
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or replace) a table under a lowercase name.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_ascii_lowercase(), table);
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Iterate over `(name, table)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColType, Column, Schema};

    #[test]
    fn register_and_lookup() {
        let mut db = Database::new();
        let t = Table::from_columns(
            Schema::new(&[("x", ColType::Int)]),
            vec![Column::Int(vec![1, 2, 3])],
        );
        db.register("Users", t);
        assert!(db.table("users").is_some());
        assert!(db.table("USERS").is_some());
        assert!(db.table("logins").is_none());
        assert_eq!(db.table("users").unwrap().n_rows(), 3);
    }
}
