//! The database catalog: stable table ids, typed schemas, name lookup.
//!
//! The catalog is the binder's source of truth. Every registered table gets
//! a stable [`TableId`]; the binder resolves names once, and from then on
//! the planner and executor address tables by id — no string lookups on the
//! hot path. Columns are addressed by a [`ColumnRef`] (table id + ordinal),
//! with names and types carried by the table's [`Schema`](crate::table::Schema).

use crate::index::{IndexKind, TableIndex};
use crate::stats::TableStats;
use crate::table::{ColType, ColumnDef, Table};
use crate::value::Value;
use std::collections::HashMap;

/// Stable identifier of a registered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Two-part data version of a catalog entry.
///
/// `gen` counts full replacements (re-registering a name swaps the table
/// wholesale, so row identities from before the bump are meaningless).
/// `delta` counts row appends within the current generation: identities of
/// pre-existing rows survive, only new rows arrived. Cached artifacts that
/// key on row identity (prepared query skeletons) record the whole pair at
/// build time; on mismatch they can distinguish "rebuild from scratch"
/// (`gen` moved) from "extend for appended rows" (`delta` moved) — see
/// [`StaleKind`](crate::StaleKind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TableVersion {
    /// Full-replacement generation (bumped by [`Database::register`] on an
    /// existing name).
    pub gen: u64,
    /// Append sequence within the generation (bumped by
    /// [`Database::append_to`], reset to 0 on replacement).
    pub delta: u64,
}

impl std::fmt::Display for TableVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}d{}", self.gen, self.delta)
    }
}

/// A fully resolved column: owning table plus ordinal position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Ordinal position within the table's schema.
    pub index: u32,
}

/// A catalog entry: the table plus its registration metadata.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Stable id (survives re-registration under the same name).
    pub id: TableId,
    /// Lowercase catalog name.
    pub name: String,
    /// Data version: `gen` bumps on re-registration, `delta` on appends.
    /// Cached artifacts keyed on row identity (e.g. prepared query
    /// skeletons) record it at build time and revalidate before reuse.
    pub version: TableVersion,
    /// The table itself.
    pub table: Table,
    /// Statistics for the cost-based planner, recomputed on every
    /// mutation and stamped with the version they describe.
    pub stats: TableStats,
    /// Secondary indexes, rebuilt eagerly on every mutation. At most one
    /// per `(column, kind)` pair.
    pub indexes: Vec<TableIndex>,
}

/// A named collection of tables (the queried database `D` of the paper).
#[derive(Debug, Clone, Default)]
pub struct Database {
    entries: Vec<TableEntry>,
    by_name: HashMap<String, usize>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or replace) a table under a lowercase name, returning its
    /// stable id. Replacing an existing name keeps the original id, so
    /// bound plans survive data refreshes as long as the schema matches.
    pub fn register(&mut self, name: &str, table: Table) -> TableId {
        let name = name.to_ascii_lowercase();
        match self.by_name.get(&name) {
            Some(&slot) => {
                self.entries[slot].table = table;
                self.entries[slot].version.gen += 1;
                self.entries[slot].version.delta = 0;
                self.refresh_entry(slot);
                self.entries[slot].id
            }
            None => {
                let slot = self.entries.len();
                let id = TableId(slot as u32);
                self.by_name.insert(name.clone(), slot);
                self.entries.push(TableEntry {
                    id,
                    name,
                    version: TableVersion::default(),
                    table,
                    stats: TableStats::empty(),
                    indexes: Vec::new(),
                });
                self.refresh_entry(slot);
                id
            }
        }
    }

    /// Recompute stats and rebuild indexes after a mutation of
    /// `entries[slot]`. Index definitions survive a replacement as long
    /// as the column still exists with a compatible type; otherwise the
    /// index is dropped (a sorted index on a now-string column cannot be
    /// rebuilt).
    fn refresh_entry(&mut self, slot: usize) {
        let entry = &mut self.entries[slot];
        entry.stats = TableStats::compute(&entry.table, entry.version);
        let defs: Vec<(String, IndexKind)> = entry
            .indexes
            .iter()
            .map(|ix| (ix.column.clone(), ix.kind))
            .collect();
        entry.indexes.clear();
        for (column, kind) in defs {
            if let Some(col) = entry.table.schema().index_of(&column) {
                if let Ok(ix) = TableIndex::build(&entry.table, &column, col, kind) {
                    entry.indexes.push(ix);
                }
            }
        }
    }

    /// Register a table with an explicit version, as part of restoring a
    /// previously-persisted catalog (snapshot load / log replay). Behaves
    /// like [`Database::register`] but pins the entry's version instead of
    /// bumping it, so the restored catalog is bit-identical to the one
    /// that was persisted.
    pub fn register_with_version(
        &mut self,
        name: &str,
        table: Table,
        version: TableVersion,
    ) -> TableId {
        let id = self.register(name, table);
        let entry = &mut self.entries[id.0 as usize];
        entry.version = version;
        // `register` stamped the stats with the bumped version; re-stamp
        // with the pinned one so stats always describe the live version.
        entry.stats.version = version;
        id
    }

    /// Append rows (and optionally row-aligned feature vectors) to a table
    /// in place, bumping its `delta` version. Row identities of existing
    /// tuples survive — this is the cheap ingestion path that lets cached
    /// skeletons distinguish "grown" from "replaced".
    ///
    /// All rows are validated (arity, cell types, feature presence and
    /// width) before any mutation, so an `Err` leaves the catalog
    /// untouched.
    pub fn append_to(
        &mut self,
        name: &str,
        rows: Vec<Vec<Value>>,
        features: Option<Vec<Vec<f64>>>,
    ) -> Result<(TableId, TableVersion), String> {
        let name_lc = name.to_ascii_lowercase();
        let &slot = self
            .by_name
            .get(&name_lc)
            .ok_or_else(|| format!("unknown table {name_lc}"))?;
        let entry = &self.entries[slot];
        validate_append(&entry.table, &rows, features.as_deref())?;
        let entry = &mut self.entries[slot];
        entry.table.append_rows(rows, features.as_deref());
        entry.version.delta += 1;
        let out = (entry.id, entry.version);
        self.refresh_entry(slot);
        Ok(out)
    }

    /// Create (or rebuild) a secondary index on `table.column`. Replaces
    /// an existing index of the same `(column, kind)`; fails for unknown
    /// tables/columns and for sorted indexes on string columns. Returns
    /// the table id and the number of indexed entries.
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<(TableId, usize), String> {
        let name_lc = table.to_ascii_lowercase();
        let &slot = self
            .by_name
            .get(&name_lc)
            .ok_or_else(|| format!("unknown table {name_lc}"))?;
        let entry = &mut self.entries[slot];
        let column = column.to_ascii_lowercase();
        let col = entry
            .table
            .schema()
            .index_of(&column)
            .ok_or_else(|| format!("table {name_lc} has no column {column}"))?;
        let ix = TableIndex::build(&entry.table, &column, col, kind)?;
        let entries = ix.len();
        entry
            .indexes
            .retain(|other| !(other.column == column && other.kind == kind));
        entry.indexes.push(ix);
        Ok((entry.id, entries))
    }

    /// The index of a given kind on `(table, column ordinal)`, if one
    /// exists. This is the executor's probe point: access paths resolve
    /// lazily against the live catalog, so a plan that references a
    /// since-dropped index falls back to a sequential scan.
    pub fn index_on(&self, id: TableId, col: usize, kind: IndexKind) -> Option<&TableIndex> {
        self.entries[id.0 as usize]
            .indexes
            .iter()
            .find(|ix| ix.col == col && ix.kind == kind)
    }

    /// Planner statistics for a table id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn stats_of(&self, id: TableId) -> &TableStats {
        &self.entries[id.0 as usize].stats
    }

    /// Full two-part data version of a table id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn table_version(&self, id: TableId) -> TableVersion {
        self.entries[id.0 as usize].version
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.entry(name).map(|e| &e.table)
    }

    /// Resolve a case-insensitive name to a table id.
    pub fn resolve(&self, name: &str) -> Option<TableId> {
        self.entry(name).map(|e| e.id)
    }

    /// Full entry for a case-insensitive name.
    pub fn entry(&self, name: &str) -> Option<&TableEntry> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|&i| &self.entries[i])
    }

    /// Table addressed by id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn table_by_id(&self, id: TableId) -> &Table {
        &self.entries[id.0 as usize].table
    }

    /// Catalog name of a table id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn name_of(&self, id: TableId) -> &str {
        &self.entries[id.0 as usize].name
    }

    /// Column definition for a resolved column reference.
    ///
    /// # Panics
    /// Panics if the reference was not issued by this database.
    pub fn column(&self, col: ColumnRef) -> &ColumnDef {
        self.table_by_id(col.table).schema().col(col.index as usize)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, table)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.entries.iter().map(|e| (&e.name, &e.table))
    }

    /// Iterate over full catalog entries in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &TableEntry> {
        self.entries.iter()
    }
}

/// Check an append batch against a table without mutating anything:
/// arity, cell-type compatibility (the coercions [`Column::push`] accepts,
/// plus NULL anywhere), and feature presence/width.
fn validate_append(
    table: &Table,
    rows: &[Vec<Value>],
    features: Option<&[Vec<f64>]>,
) -> Result<(), String> {
    let schema = table.schema();
    let want_feat = table.features().is_some() || (table.n_rows() == 0 && features.is_some());
    match (want_feat, features) {
        (true, None) => {
            return Err("table carries features; append must supply them".into());
        }
        (false, Some(_)) => {
            return Err("table has no feature matrix; append must not supply features".into());
        }
        _ => {}
    }
    if let Some(feats) = features {
        if feats.len() != rows.len() {
            return Err(format!(
                "feature batch has {} rows, value batch has {}",
                feats.len(),
                rows.len()
            ));
        }
        let width = table
            .features()
            .map(|m| m.cols())
            .or_else(|| feats.first().map(|f| f.len()))
            .unwrap_or(0);
        for (i, f) in feats.iter().enumerate() {
            if f.len() != width {
                return Err(format!(
                    "feature row {i} has width {}, expected {width}",
                    f.len()
                ));
            }
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if row.len() != schema.len() {
            return Err(format!(
                "row {i} has {} values, schema has {} columns",
                row.len(),
                schema.len()
            ));
        }
        for (def, v) in schema.iter().zip(row) {
            let ok = matches!(
                (def.ty, v),
                (_, Value::Null)
                    | (ColType::Bool, Value::Bool(_))
                    | (ColType::Int, Value::Int(_) | Value::Bool(_))
                    | (ColType::Float, Value::Float(_) | Value::Int(_))
                    | (ColType::Str, Value::Str(_))
            );
            if !ok {
                return Err(format!(
                    "row {i}: value {v:?} does not fit {:?} column {}",
                    def.ty, def.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColType, Column, Schema};

    fn ints(name: &str, vals: Vec<i64>) -> Table {
        Table::from_columns(
            Schema::new(&[(name, ColType::Int)]),
            vec![Column::Int(vals)],
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut db = Database::new();
        db.register("Users", ints("x", vec![1, 2, 3]));
        assert!(db.table("users").is_some());
        assert!(db.table("USERS").is_some());
        assert!(db.table("logins").is_none());
        assert_eq!(db.table("users").unwrap().n_rows(), 3);
    }

    #[test]
    fn ids_are_stable_across_replacement() {
        let mut db = Database::new();
        let a = db.register("a", ints("x", vec![1]));
        let b = db.register("b", ints("x", vec![2]));
        assert_ne!(a, b);
        // Replacing keeps the id; data is swapped.
        let a2 = db.register("A", ints("x", vec![7, 8]));
        assert_eq!(a, a2);
        assert_eq!(db.table_by_id(a).n_rows(), 2);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn versions_bump_on_replacement() {
        let mut db = Database::new();
        let a = db.register("a", ints("x", vec![1]));
        assert_eq!(db.table_version(a), TableVersion { gen: 0, delta: 0 });
        db.register("a", ints("x", vec![1, 2]));
        assert_eq!(
            db.table_version(a),
            TableVersion { gen: 1, delta: 0 },
            "replacement bumps the generation"
        );
        let b = db.register("b", ints("x", vec![3]));
        assert_eq!(
            db.table_version(b),
            TableVersion { gen: 0, delta: 0 },
            "fresh names start at g0d0"
        );
    }

    #[test]
    fn appends_bump_delta_and_replacement_resets_it() {
        let mut db = Database::new();
        let a = db.register("a", ints("x", vec![1]));
        let (id, v) = db
            .append_to("A", vec![vec![Value::Int(2)], vec![Value::Int(3)]], None)
            .unwrap();
        assert_eq!(id, a);
        assert_eq!(v, TableVersion { gen: 0, delta: 1 });
        assert_eq!(db.table_by_id(a).n_rows(), 3);
        assert_eq!(db.table_by_id(a).value(2, 0), Value::Int(3));
        db.register("a", ints("x", vec![9]));
        assert_eq!(
            db.table_version(a),
            TableVersion { gen: 1, delta: 0 },
            "replacement resets the delta sequence"
        );
    }

    #[test]
    fn append_validates_before_mutating() {
        let mut db = Database::new();
        let a = db.register("a", ints("x", vec![1]));
        // Second row is bad: the whole batch must be rejected atomically.
        let err = db
            .append_to(
                "a",
                vec![vec![Value::Int(2)], vec![Value::Str("no".into())]],
                None,
            )
            .unwrap_err();
        assert!(err.contains("row 1"), "unexpected error: {err}");
        assert_eq!(db.table_by_id(a).n_rows(), 1, "failed append is atomic");
        assert_eq!(db.table_version(a), TableVersion::default());
        assert!(db.append_to("missing", vec![], None).is_err());
        let err = db.append_to("a", vec![vec![]], None).unwrap_err();
        assert!(err.contains("0 values"), "unexpected error: {err}");
        let err = db
            .append_to("a", vec![vec![Value::Int(1)]], Some(vec![vec![1.0]]))
            .unwrap_err();
        assert!(err.contains("no feature matrix"), "unexpected error: {err}");
    }

    #[test]
    fn append_with_features_and_nulls() {
        use rain_linalg::Matrix;
        let mut db = Database::new();
        let t = ints("x", vec![1, 2]).with_features(Matrix::from_rows(&[&[0.5], &[1.5]]));
        let a = db.register("a", t);
        db.append_to("a", vec![vec![Value::Null]], Some(vec![vec![2.5]]))
            .unwrap();
        let t = db.table_by_id(a);
        assert_eq!(t.n_rows(), 3);
        assert!(t.is_null(2, 0));
        assert_eq!(t.feature_row(2), Some(&[2.5][..]));
        // Missing features on a featured table is rejected.
        assert!(db.append_to("a", vec![vec![Value::Int(4)]], None).is_err());
        // Wrong width too.
        assert!(db
            .append_to("a", vec![vec![Value::Int(4)]], Some(vec![vec![1.0, 2.0]]))
            .is_err());
    }

    #[test]
    fn register_with_version_pins_versions() {
        let mut db = Database::new();
        let v = TableVersion { gen: 4, delta: 7 };
        let a = db.register_with_version("a", ints("x", vec![1]), v);
        assert_eq!(db.table_version(a), v);
    }

    #[test]
    fn resolve_and_column_metadata() {
        let mut db = Database::new();
        let id = db.register("t", ints("score", vec![5]));
        assert_eq!(db.resolve("T"), Some(id));
        assert_eq!(db.resolve("missing"), None);
        assert_eq!(db.name_of(id), "t");
        let col = ColumnRef {
            table: id,
            index: 0,
        };
        assert_eq!(db.column(col).name, "score");
        assert_eq!(db.column(col).ty, ColType::Int);
    }
}
