//! The database catalog: stable table ids, typed schemas, name lookup.
//!
//! The catalog is the binder's source of truth. Every registered table gets
//! a stable [`TableId`]; the binder resolves names once, and from then on
//! the planner and executor address tables by id — no string lookups on the
//! hot path. Columns are addressed by a [`ColumnRef`] (table id + ordinal),
//! with names and types carried by the table's [`Schema`](crate::table::Schema).

use crate::table::{ColumnDef, Table};
use std::collections::HashMap;

/// Stable identifier of a registered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A fully resolved column: owning table plus ordinal position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Ordinal position within the table's schema.
    pub index: u32,
}

/// A catalog entry: the table plus its registration metadata.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Stable id (survives re-registration under the same name).
    pub id: TableId,
    /// Lowercase catalog name.
    pub name: String,
    /// Data version: bumped every time the name is re-registered. Cached
    /// artifacts keyed on row identity (e.g. prepared query skeletons)
    /// record it at build time and revalidate before reuse.
    pub version: u64,
    /// The table itself.
    pub table: Table,
}

/// A named collection of tables (the queried database `D` of the paper).
#[derive(Debug, Clone, Default)]
pub struct Database {
    entries: Vec<TableEntry>,
    by_name: HashMap<String, usize>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or replace) a table under a lowercase name, returning its
    /// stable id. Replacing an existing name keeps the original id, so
    /// bound plans survive data refreshes as long as the schema matches.
    pub fn register(&mut self, name: &str, table: Table) -> TableId {
        let name = name.to_ascii_lowercase();
        match self.by_name.get(&name) {
            Some(&slot) => {
                self.entries[slot].table = table;
                self.entries[slot].version += 1;
                self.entries[slot].id
            }
            None => {
                let id = TableId(self.entries.len() as u32);
                self.by_name.insert(name.clone(), self.entries.len());
                self.entries.push(TableEntry {
                    id,
                    name,
                    version: 0,
                    table,
                });
                id
            }
        }
    }

    /// Data version of a table id (see [`TableEntry::version`]).
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn version_of(&self, id: TableId) -> u64 {
        self.entries[id.0 as usize].version
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.entry(name).map(|e| &e.table)
    }

    /// Resolve a case-insensitive name to a table id.
    pub fn resolve(&self, name: &str) -> Option<TableId> {
        self.entry(name).map(|e| e.id)
    }

    /// Full entry for a case-insensitive name.
    pub fn entry(&self, name: &str) -> Option<&TableEntry> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|&i| &self.entries[i])
    }

    /// Table addressed by id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn table_by_id(&self, id: TableId) -> &Table {
        &self.entries[id.0 as usize].table
    }

    /// Catalog name of a table id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this database.
    pub fn name_of(&self, id: TableId) -> &str {
        &self.entries[id.0 as usize].name
    }

    /// Column definition for a resolved column reference.
    ///
    /// # Panics
    /// Panics if the reference was not issued by this database.
    pub fn column(&self, col: ColumnRef) -> &ColumnDef {
        self.table_by_id(col.table).schema().col(col.index as usize)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, table)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.entries.iter().map(|e| (&e.name, &e.table))
    }

    /// Iterate over full catalog entries in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &TableEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColType, Column, Schema};

    fn ints(name: &str, vals: Vec<i64>) -> Table {
        Table::from_columns(
            Schema::new(&[(name, ColType::Int)]),
            vec![Column::Int(vals)],
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut db = Database::new();
        db.register("Users", ints("x", vec![1, 2, 3]));
        assert!(db.table("users").is_some());
        assert!(db.table("USERS").is_some());
        assert!(db.table("logins").is_none());
        assert_eq!(db.table("users").unwrap().n_rows(), 3);
    }

    #[test]
    fn ids_are_stable_across_replacement() {
        let mut db = Database::new();
        let a = db.register("a", ints("x", vec![1]));
        let b = db.register("b", ints("x", vec![2]));
        assert_ne!(a, b);
        // Replacing keeps the id; data is swapped.
        let a2 = db.register("A", ints("x", vec![7, 8]));
        assert_eq!(a, a2);
        assert_eq!(db.table_by_id(a).n_rows(), 2);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn versions_bump_on_replacement() {
        let mut db = Database::new();
        let a = db.register("a", ints("x", vec![1]));
        assert_eq!(db.version_of(a), 0);
        db.register("a", ints("x", vec![1, 2]));
        assert_eq!(db.version_of(a), 1, "replacement bumps the version");
        let b = db.register("b", ints("x", vec![3]));
        assert_eq!(db.version_of(b), 0, "fresh names start at version 0");
    }

    #[test]
    fn resolve_and_column_metadata() {
        let mut db = Database::new();
        let id = db.register("t", ints("score", vec![5]));
        assert_eq!(db.resolve("T"), Some(id));
        assert_eq!(db.resolve("missing"), None);
        assert_eq!(db.name_of(id), "t");
        let col = ColumnRef {
            table: id,
            index: 0,
        };
        assert_eq!(db.column(col).name, "score");
        assert_eq!(db.column(col).ty, ColType::Int);
    }
}
