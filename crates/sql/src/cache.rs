//! Plan + skeleton cache for repeat queries: the serving layer's warm
//! path.
//!
//! An interactive complaint-debugging service sees the same SQL text over
//! and over — the analyst re-runs a query after every fix, and every
//! debug-run iterates over the same complained-about statements. All of
//! the model-independent work (parse → bind → optimize → skeleton
//! capture) is a pure function of the SQL and the catalog state, so a
//! [`QueryCache`] memoizes it: entries are keyed by **normalized SQL**
//! (parse + canonical re-print, so whitespace/case/paren variants share
//! one entry) and validated against the **catalog versions** recorded in
//! the cached [`PreparedQuery`] skeleton. A hit turns a full debug
//! execution into a [`PreparedQuery::refresh`]; a stale entry (queried
//! table re-registered since capture) is counted as an invalidation and
//! transparently re-prepared.
//!
//! The cache is deliberately single-threaded: a server shards one cache
//! per session behind the session's mutex, which is what lets unrelated
//! sessions execute in parallel without a shared lock.

use crate::catalog::Database;
use crate::exec::{Engine, QueryOutput};
use crate::incremental::{prepare_with, PreparedQuery};
use crate::optimize::optimize;
use crate::QueryError;
use rain_model::Classifier;
use std::collections::HashMap;

/// Monotonic counters describing a cache's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a cached, still-valid skeleton.
    pub hits: u64,
    /// Lookups for SQL never seen (normalized) before.
    pub misses: u64,
    /// Cached skeletons dropped because a queried table was re-registered
    /// since capture (each is immediately re-prepared).
    pub invalidations: u64,
}

/// What one cache lookup did, surfaced to clients in query responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// Valid cached skeleton reused.
    Hit,
    /// No entry; planned and prepared from scratch.
    Miss,
    /// Entry existed but was stale; re-planned and re-prepared.
    Invalidated,
}

impl CacheEvent {
    /// Wire/debug label.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheEvent::Hit => "hit",
            CacheEvent::Miss => "miss",
            CacheEvent::Invalidated => "invalidated",
        }
    }
}

/// A cache entry checked out for exclusive use (e.g. for the iterations
/// of a debug run); return it with [`QueryCache::checkin`].
#[derive(Debug)]
pub struct CachedQuery {
    /// Normalized-SQL cache key.
    pub key: String,
    /// The (fresh or cached) prepared skeleton.
    pub prepared: PreparedQuery,
    /// What the lookup did.
    pub event: CacheEvent,
}

/// A prepared-skeleton cache keyed by normalized SQL, validated against
/// catalog versions. See the module docs.
#[derive(Debug)]
pub struct QueryCache {
    engine: Engine,
    /// Worker budget for captures and refreshes issued through this
    /// cache (`0` = auto, `1` = sequential) — a per-session parallelism
    /// cap in the serving layer.
    threads: usize,
    entries: HashMap<String, PreparedQuery>,
    stats: CacheStats,
}

impl QueryCache {
    /// An empty cache capturing skeletons on `engine`, with an automatic
    /// worker budget.
    pub fn new(engine: Engine) -> Self {
        QueryCache {
            engine,
            threads: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The same cache with an explicit worker budget for its captures
    /// and refreshes (`0` = auto, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The cache's capture engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The cache's worker budget (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The canonical cache key of a SQL string: parse + re-print, so any
    /// two statements with the same syntax tree share an entry.
    pub fn normalize(sql: &str) -> Result<String, QueryError> {
        let stmt = crate::parser::parse_select(sql).map_err(QueryError::Parse)?;
        Ok(crate::printer::stmt_to_sql(&stmt))
    }

    /// Check out the prepared skeleton for `sql`, preparing on a miss and
    /// transparently re-preparing on invalidation (a stale entry is
    /// re-planned from the SQL, so even schema-changing re-registrations
    /// recover). The entry is *removed* from the cache until
    /// [`QueryCache::checkin`] returns it — callers hold it across a whole
    /// debug run's refreshes. Captures run under the cache's worker
    /// budget.
    pub fn checkout(
        &mut self,
        db: &Database,
        model: &dyn Classifier,
        sql: &str,
    ) -> Result<CachedQuery, QueryError> {
        self.checkout_threaded(db, model, sql, self.threads)
    }

    /// [`QueryCache::checkout`] with an explicit worker budget for any
    /// capture this lookup triggers (`0` = auto) — a debug run passes
    /// its own (session-capped) budget so a throttled run's skeleton
    /// capture is throttled too, not just its refreshes.
    pub fn checkout_threaded(
        &mut self,
        db: &Database,
        model: &dyn Classifier,
        sql: &str,
        threads: usize,
    ) -> Result<CachedQuery, QueryError> {
        let mut span = rain_obs::Span::enter("cache-checkout");
        let key = Self::normalize(sql)?;
        let event = match self.entries.remove(&key) {
            Some(prepared) if !prepared.is_stale(db) => {
                self.stats.hits += 1;
                span.add("hit", 1);
                return Ok(CachedQuery {
                    key,
                    prepared,
                    event: CacheEvent::Hit,
                });
            }
            Some(_) => {
                self.stats.invalidations += 1;
                CacheEvent::Invalidated
            }
            None => {
                self.stats.misses += 1;
                CacheEvent::Miss
            }
        };
        span.add("hit", 0);
        let stmt = crate::parser::parse_select(sql).map_err(QueryError::Parse)?;
        let bound = crate::binder::bind(&stmt, db)?;
        let plan = optimize(bound, db);
        let prepared = prepare_with(db, model, &plan, self.engine, threads)?;
        Ok(CachedQuery {
            key,
            prepared,
            event,
        })
    }

    /// Return a checked-out entry to the cache.
    pub fn checkin(&mut self, cq: CachedQuery) {
        self.entries.insert(cq.key, cq.prepared);
    }

    /// Execute `sql` in debug mode through the cache: checkout → refresh →
    /// checkin. Repeat queries skip planning and skeleton capture
    /// entirely and pay only the model refresh.
    pub fn execute(
        &mut self,
        db: &Database,
        model: &dyn Classifier,
        sql: &str,
    ) -> Result<(QueryOutput, CacheEvent), QueryError> {
        let cq = self.checkout(db, model, sql)?;
        let out = cq.prepared.refresh_threaded(db, model, self.threads)?;
        let event = cq.event;
        self.checkin(cq);
        Ok((out, event))
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident (checked-in) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every resident entry (counted as invalidations).
    pub fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColType, Column, Schema, Table};
    use rain_linalg::Matrix;
    use rain_model::{Classifier, LogisticRegression};

    fn db_with(vals: Vec<i64>) -> Database {
        let feats: Vec<Vec<f64>> = vals.iter().map(|&v| vec![v as f64 - 1.5]).collect();
        let refs: Vec<&[f64]> = feats.iter().map(|r| r.as_slice()).collect();
        let t = Table::from_columns(
            Schema::new(&[("id", ColType::Int)]),
            vec![Column::Int(vals)],
        )
        .with_features(Matrix::from_rows(&refs));
        let mut db = Database::new();
        db.register("t", t);
        db
    }

    fn model() -> LogisticRegression {
        let mut m = LogisticRegression::new(1, 0.0);
        m.set_params(&[10.0, 0.0]);
        m
    }

    #[test]
    fn normalization_merges_spelling_variants() {
        let a = QueryCache::normalize("SELECT COUNT(*) FROM t WHERE predict(*) = 1").unwrap();
        let b = QueryCache::normalize("select  count(*)  from T where (predict(*)) = 1").unwrap();
        assert_eq!(a, b);
        assert!(QueryCache::normalize("SELECT FROM").is_err());
    }

    #[test]
    fn hits_misses_and_results() {
        let db = db_with(vec![0, 1, 2, 3]);
        let m = model();
        let mut cache = QueryCache::new(Engine::Vectorized);
        let sql = "SELECT COUNT(*) FROM t WHERE predict(*) = 1";

        let (out, ev) = cache.execute(&db, &m, sql).unwrap();
        assert_eq!(ev, CacheEvent::Miss);
        assert_eq!(out.scalar().unwrap(), crate::Value::Int(2));

        // Same statement, different spelling: a hit on the same entry.
        let (out2, ev2) = cache
            .execute(&db, &m, "select count(*) from T where (predict(*)) = 1")
            .unwrap();
        assert_eq!(ev2, CacheEvent::Hit);
        assert_eq!(out2.scalar().unwrap(), crate::Value::Int(2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_output_matches_fresh_execution() {
        let db = db_with(vec![0, 1, 2, 3, 4, 5]);
        let m = model();
        let mut cache = QueryCache::new(Engine::Vectorized);
        let sql = "SELECT id FROM t WHERE predict(*) = 1 AND id < 5";
        let (first, _) = cache.execute(&db, &m, sql).unwrap();
        let (second, ev) = cache.execute(&db, &m, sql).unwrap();
        assert_eq!(ev, CacheEvent::Hit);
        assert_eq!(first.table.to_tsv(), second.table.to_tsv());
        assert_eq!(first.row_prov, second.row_prov);
        assert_eq!(first.predvars.preds(), second.predvars.preds());
    }

    #[test]
    fn reregistration_invalidates_and_reprepares() {
        let mut db = db_with(vec![0, 1, 2, 3]);
        let m = model();
        let mut cache = QueryCache::new(Engine::Vectorized);
        let sql = "SELECT COUNT(*) FROM t WHERE predict(*) = 1";
        cache.execute(&db, &m, sql).unwrap();

        // Replace the queried table: the cached skeleton is now stale.
        let replacement = db_with(vec![0, 1, 2, 3, 4, 5]);
        db.register("t", replacement.table("t").unwrap().clone());
        let (out, ev) = cache.execute(&db, &m, sql).unwrap();
        assert_eq!(ev, CacheEvent::Invalidated);
        assert_eq!(out.scalar().unwrap(), crate::Value::Int(4));
        assert_eq!(cache.stats().invalidations, 1);

        // The re-prepared entry is warm again.
        let (_, ev) = cache.execute(&db, &m, sql).unwrap();
        assert_eq!(ev, CacheEvent::Hit);
    }

    #[test]
    fn checkout_holds_entry_across_refreshes() {
        let db = db_with(vec![0, 1, 2, 3]);
        let m = model();
        let mut cache = QueryCache::new(Engine::Vectorized);
        let sql = "SELECT COUNT(*) FROM t WHERE predict(*) = 1";
        let cq = cache.checkout(&db, &m, sql).unwrap();
        assert_eq!(cq.event, CacheEvent::Miss);
        assert!(cache.is_empty(), "checked-out entry is not resident");
        // Multiple refreshes on the checked-out skeleton (a debug run).
        for _ in 0..3 {
            let out = cq.prepared.refresh(&db, &m).unwrap();
            assert_eq!(out.scalar().unwrap(), crate::Value::Int(2));
        }
        cache.checkin(cq);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.checkout(&db, &m, sql).unwrap().event, CacheEvent::Hit);
    }

    #[test]
    fn clear_counts_invalidations() {
        let db = db_with(vec![0, 1]);
        let m = model();
        let mut cache = QueryCache::new(Engine::Vectorized);
        cache.execute(&db, &m, "SELECT COUNT(*) FROM t").unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
    }
}
