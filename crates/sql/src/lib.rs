//! The Query 2.0 substrate: storage, SQL, execution, and provenance.
//!
//! This crate implements everything the Rain paper assumes from its
//! database layer (§3.1, §5.1, §5.3), structured as a four-stage query
//! stack — `parser → binder → optimizer → executor`:
//!
//! - columnar [`table::Table`]s with row-aligned feature matrices for
//!   in-database model inference, registered in a [`catalog`] that issues
//!   stable table ids,
//! - a hand-written SQL [`parser`] for the SPJA dialect with
//!   `predict(alias)` model predicates,
//! - a [`binder`] that resolves names against the catalog (aliases,
//!   scoped contexts, typed [`BindError`]s) into a [`BoundStatement`],
//! - an [`optimize()`]r in two phases — rule-based rewrites (constant
//!   folding, predicate pushdown, projection pruning, all
//!   provenance-preserving) and a **cost-based phase** ([`cost`]) that
//!   picks the cheapest left-deep join order and index access paths
//!   from catalog [`stats`] — lowering to a physical
//!   [`plan::QueryPlan`],
//! - typed **secondary indexes** ([`index`]) on registered columns —
//!   hash for equality, sorted for ranges — backing index scans and
//!   index-nested-loop joins with output bit-identical to the full-scan
//!   paths,
//! - two execution engines behind one [`exec::execute`] entry point: the
//!   default **vectorized columnar engine** ([`vexec`] — selection-vector
//!   scans with typed predicate kernels, hash joins over column slices,
//!   struct-of-arrays joined tuples, and **morsel-parallel** scans and
//!   join probes behind [`ExecOptions::threads`]) and the tuple-at-a-time
//!   oracle it is differentially tested against, both sharing one
//!   evaluation core so results and provenance are bit-identical at every
//!   thread count,
//! - **provenance polynomials** ([`prov`]) over prediction variables,
//!   captured during debug-mode execution, and their **differentiable
//!   relaxation** with reverse-mode gradients — the machinery behind the
//!   Holistic approach and the input to TwoStep's ILP encoding,
//! - an **incremental re-execution subsystem** ([`incremental`]):
//!   [`prepare`] captures a query's model-independent skeleton once and
//!   [`PreparedQuery::refresh`] re-assembles the full debug-mode output
//!   under new model parameters from one batched inference — bit-identical
//!   to a fresh execution, at a fraction of the cost, which is what the
//!   train–rank–fix loop re-executes through each iteration,
//! - a **prepared-skeleton cache** ([`cache::QueryCache`]) keyed by
//!   normalized SQL and validated against catalog versions — the serving
//!   layer's warm path, with hit/miss/invalidation counters and
//!   transparent re-prepare on invalidation.
//!
//! # Example
//!
//! ```
//! use rain_sql::{Database, ExecOptions, run_query};
//! use rain_sql::table::{ColType, Column, Schema, Table};
//! use rain_linalg::Matrix;
//! use rain_model::{Classifier, LogisticRegression};
//!
//! // A tiny table of two rows with 1-D features.
//! let table = Table::from_columns(
//!     Schema::new(&[("id", ColType::Int)]),
//!     vec![Column::Int(vec![10, 11])],
//! )
//! .with_features(Matrix::from_rows(&[&[1.0], &[-1.0]]));
//! let mut db = Database::new();
//! db.register("users", table);
//!
//! // A fixed model: predicts class 1 iff the feature is positive.
//! let mut model = LogisticRegression::new(1, 0.0);
//! model.set_params(&[10.0, 0.0]);
//!
//! let out = run_query(
//!     &db,
//!     &model,
//!     "SELECT COUNT(*) FROM users WHERE predict(*) = 1",
//!     ExecOptions::debug(),
//! )
//! .unwrap();
//! assert_eq!(out.scalar().value(), Some(rain_sql::Value::Int(1)));
//! // Debug mode captured a provenance polynomial over 2 prediction vars.
//! assert_eq!(out.predvars.len(), 2);
//! ```

pub mod ast;
pub mod binder;
pub mod cache;
pub mod catalog;
pub mod cost;
mod eval;
pub mod exec;
pub mod incremental;
pub mod index;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod plan;
pub mod predvar;
pub mod printer;
pub mod prov;
pub mod stats;
pub mod table;
pub mod value;
pub mod vexec;

pub use ast::{AggFunc, ArithOp, CmpOp, Expr, SelectItem, SelectStmt, TableRef};
pub use binder::{bind, BExpr, BindError, Binder, BoundStatement};
pub use cache::{CacheEvent, CacheStats, CachedQuery, QueryCache};
pub use catalog::{ColumnRef, Database, TableId, TableVersion};
pub use exec::{
    execute, resolve_threads, run_query, run_stmt, Engine, ExecOptions, QueryOutput, ScalarResult,
    MAX_EXEC_THREADS,
};
pub use incremental::{
    prepare, prepare_with, PreparedQuery, ScoreMemo, SkeletonStats, StaleKind, StalePolicy,
};
pub use index::{IndexKind, TableIndex};
pub use lexer::SqlError;
pub use optimize::{optimize, optimize_with, OptimizerConfig};
pub use parser::parse_select;
pub use plan::{AccessPath, JoinAlgo, ModelDeps, PlanEstimates, QueryPlan};
pub use predvar::{PredVarInfo, PredVarRegistry};
pub use prov::{AggSum, AggTerm, BoolProv, CellProv, ProbGrad, Probs, VarId};
pub use stats::{ColumnStats, TableStats};
pub use value::Value;

/// Errors from parsing, binding, or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical or syntactic error.
    Parse(SqlError),
    /// Name-resolution, typing, or validation error (see [`BindError`]).
    Bind(BindError),
    /// Runtime error.
    Exec(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Bind(e) => write!(f, "bind error: {e}"),
            QueryError::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Bind(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BindError> for QueryError {
    fn from(e: BindError) -> Self {
        QueryError::Bind(e)
    }
}
