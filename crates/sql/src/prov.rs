//! Provenance polynomials over model-prediction variables, and their
//! differentiable relaxation (paper §5.3.1).
//!
//! During debug-mode execution every model inference instance over a
//! queried record becomes a **prediction variable** (a [`VarId`]). Tuple
//! membership is a boolean formula ([`BoolProv`]) over atoms of the form
//! *"the model predicts class c on record v"*; aggregate cells are sums (or
//! ratios of sums, for AVG) of `formula × term` pairs ([`CellProv`]).
//!
//! The same representation is evaluated three ways:
//!
//! 1. **Discretely** against hard predictions — must agree exactly with the
//!    ordinary query result (an invariant the tests enforce).
//! 2. **Relaxed** against prediction probabilities, using the paper's
//!    tractable independence-assuming substitution
//!    (`x AND y → x·y`, `x OR y → 1-(1-x)(1-y)`, `NOT x → 1-x`,
//!    aggregates → expectations, AVG → ratio of expectations).
//! 3. **Gradient** of the relaxed value with respect to every variable's
//!    class probabilities, by reverse-mode accumulation over the formula
//!    DAG — this is what turns a user complaint into `∇q` for influence
//!    analysis.

use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a prediction variable (one model inference instance).
pub type VarId = u32;

/// Boolean provenance formula over prediction atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolProv {
    /// Constant truth value (model-independent sub-predicates fold here).
    Const(bool),
    /// Atom: `predict(var) == class`.
    PredIs {
        /// Prediction variable.
        var: VarId,
        /// Class the prediction is compared to.
        class: usize,
    },
    /// Atom: `predict(left) == predict(right)` (join conditions). Relaxes
    /// to `Σ_c p_l[c]·p_r[c]` in one node instead of a 2·C-term DNF.
    PredEq {
        /// Left prediction variable.
        left: VarId,
        /// Right prediction variable.
        right: VarId,
    },
    /// Negation.
    Not(Box<BoolProv>),
    /// Conjunction.
    And(Vec<BoolProv>),
    /// Disjunction.
    Or(Vec<BoolProv>),
}

/// The numeric quantity a row contributes to an aggregate when its
/// membership formula holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggTerm {
    /// Contributes 1 (COUNT).
    One,
    /// Contributes a model-independent constant (SUM/AVG of a column).
    Const(f64),
    /// Contributes the numeric value of the prediction: discretely the
    /// class index, relaxed to the expectation `Σ_c c·p[c]`
    /// (SUM/AVG of `predict(...)`; for binary models this is `P(class 1)`).
    PredValue(VarId),
    /// Contributes `weight ×` the prediction's numeric value — the
    /// appendix-B generalization (`SUM(10^position · predict(image))` in
    /// the OCR example). Relaxes to `weight · Σ_c c·p[c]`.
    ScaledPred {
        /// Prediction variable.
        var: VarId,
        /// Model-independent multiplier.
        weight: f64,
    },
}

/// A sum `Σ_rows 1[formula] · term` — the provenance of a COUNT/SUM cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggSum {
    /// `(membership formula, contributed term)` per candidate row.
    pub terms: Vec<(BoolProv, AggTerm)>,
}

/// Provenance of one output cell.
///
/// Aggregate sums sit behind [`Arc`]: the incremental refresh path emits
/// one `CellProv` per aggregate cell per iteration, and the underlying
/// [`AggSum`] (one term per candidate tuple — thousands of formulas on the
/// paper's workloads) is owned by the cached query skeleton. Sharing it
/// makes a refresh's provenance emission O(cells) instead of O(terms).
#[derive(Debug, Clone, PartialEq)]
pub enum CellProv {
    /// Membership formula of a non-aggregate output row.
    Bool(BoolProv),
    /// COUNT or SUM cell.
    Sum(Arc<AggSum>),
    /// AVG cell: numerator / denominator (both sums over the same rows).
    Ratio(Arc<AggSum>, Arc<AggSum>),
}

/// Per-variable class probabilities: `probs[var][class]`.
#[derive(Debug, Clone)]
pub struct Probs {
    /// `p[var][class]`, each row summing to 1.
    pub p: Vec<Vec<f64>>,
}

impl Probs {
    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.p.len()
    }
}

/// Gradient of a relaxed value w.r.t. every `p[var][class]`; sparse over
/// variables, dense over classes.
#[derive(Debug, Clone, Default)]
pub struct ProbGrad {
    /// `d value / d p[var][class]`.
    pub g: HashMap<VarId, Vec<f64>>,
}

impl ProbGrad {
    fn slot(&mut self, var: VarId, n_classes: usize) -> &mut Vec<f64> {
        self.g.entry(var).or_insert_with(|| vec![0.0; n_classes])
    }

    /// Accumulate `other × scale` into `self`.
    pub fn add_scaled(&mut self, other: &ProbGrad, scale: f64) {
        for (&var, gs) in &other.g {
            let slot = self.slot(var, gs.len());
            for (s, &g) in slot.iter_mut().zip(gs) {
                *s += scale * g;
            }
        }
    }
}

impl BoolProv {
    /// Conjunction with constant folding.
    pub fn and(terms: Vec<BoolProv>) -> BoolProv {
        let mut out = Vec::with_capacity(terms.len());
        for t in terms {
            match t {
                BoolProv::Const(true) => {}
                BoolProv::Const(false) => return BoolProv::Const(false),
                BoolProv::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BoolProv::Const(true),
            1 => out.pop().unwrap(),
            _ => BoolProv::And(out),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(terms: Vec<BoolProv>) -> BoolProv {
        let mut out = Vec::with_capacity(terms.len());
        for t in terms {
            match t {
                BoolProv::Const(false) => {}
                BoolProv::Const(true) => return BoolProv::Const(true),
                BoolProv::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BoolProv::Const(false),
            1 => out.pop().unwrap(),
            _ => BoolProv::Or(out),
        }
    }

    /// Negation with folding.
    pub fn negate(self) -> BoolProv {
        match self {
            BoolProv::Const(b) => BoolProv::Const(!b),
            BoolProv::Not(inner) => *inner,
            other => BoolProv::Not(Box::new(other)),
        }
    }

    /// True when the formula contains no prediction atoms.
    pub fn is_const(&self) -> bool {
        matches!(self, BoolProv::Const(_))
    }

    /// Evaluate against hard predictions (`preds[var] = class`).
    pub fn eval_discrete(&self, preds: &[usize]) -> bool {
        match self {
            BoolProv::Const(b) => *b,
            BoolProv::PredIs { var, class } => preds[*var as usize] == *class,
            BoolProv::PredEq { left, right } => preds[*left as usize] == preds[*right as usize],
            BoolProv::Not(inner) => !inner.eval_discrete(preds),
            BoolProv::And(terms) => terms.iter().all(|t| t.eval_discrete(preds)),
            BoolProv::Or(terms) => terms.iter().any(|t| t.eval_discrete(preds)),
        }
    }

    /// Relaxed (probabilistic) evaluation per §5.3.1.
    pub fn eval_relaxed(&self, probs: &Probs) -> f64 {
        match self {
            BoolProv::Const(b) => *b as u8 as f64,
            BoolProv::PredIs { var, class } => probs.p[*var as usize][*class],
            BoolProv::PredEq { left, right } => {
                let l = &probs.p[*left as usize];
                let r = &probs.p[*right as usize];
                rain_linalg::vecops::dot(l, r)
            }
            BoolProv::Not(inner) => 1.0 - inner.eval_relaxed(probs),
            BoolProv::And(terms) => terms.iter().map(|t| t.eval_relaxed(probs)).product(),
            BoolProv::Or(terms) => {
                1.0 - terms
                    .iter()
                    .map(|t| 1.0 - t.eval_relaxed(probs))
                    .product::<f64>()
            }
        }
    }

    /// Reverse-mode accumulation: add `adj · ∂(relaxed)/∂p[·][·]` into
    /// `grad`.
    pub fn accumulate_grad(&self, probs: &Probs, adj: f64, grad: &mut ProbGrad) {
        if adj == 0.0 {
            return;
        }
        match self {
            BoolProv::Const(_) => {}
            BoolProv::PredIs { var, class } => {
                let n = probs.p[*var as usize].len();
                grad.slot(*var, n)[*class] += adj;
            }
            BoolProv::PredEq { left, right } => {
                let l = probs.p[*left as usize].clone();
                let r = probs.p[*right as usize].clone();
                let ls = grad.slot(*left, l.len());
                for (s, &rc) in ls.iter_mut().zip(&r) {
                    *s += adj * rc;
                }
                let rs = grad.slot(*right, r.len());
                for (s, &lc) in rs.iter_mut().zip(&l) {
                    *s += adj * lc;
                }
            }
            BoolProv::Not(inner) => inner.accumulate_grad(probs, -adj, grad),
            BoolProv::And(terms) => {
                // adjoint of child i = adj · Π_{j≠i} x_j (prefix/suffix products).
                let vals: Vec<f64> = terms.iter().map(|t| t.eval_relaxed(probs)).collect();
                let n = vals.len();
                let mut prefix = vec![1.0; n + 1];
                for i in 0..n {
                    prefix[i + 1] = prefix[i] * vals[i];
                }
                let mut suffix = vec![1.0; n + 1];
                for i in (0..n).rev() {
                    suffix[i] = suffix[i + 1] * vals[i];
                }
                for (i, t) in terms.iter().enumerate() {
                    t.accumulate_grad(probs, adj * prefix[i] * suffix[i + 1], grad);
                }
            }
            BoolProv::Or(terms) => {
                // 1 - Π(1-x_j): adjoint of child i = adj · Π_{j≠i}(1-x_j).
                let vals: Vec<f64> = terms.iter().map(|t| 1.0 - t.eval_relaxed(probs)).collect();
                let n = vals.len();
                let mut prefix = vec![1.0; n + 1];
                for i in 0..n {
                    prefix[i + 1] = prefix[i] * vals[i];
                }
                let mut suffix = vec![1.0; n + 1];
                for i in (0..n).rev() {
                    suffix[i] = suffix[i + 1] * vals[i];
                }
                for (i, t) in terms.iter().enumerate() {
                    t.accumulate_grad(probs, adj * prefix[i] * suffix[i + 1], grad);
                }
            }
        }
    }

    /// Collect the distinct variables mentioned by the formula.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<VarId>) {
        match self {
            BoolProv::Const(_) => {}
            BoolProv::PredIs { var, .. } => {
                out.insert(*var);
            }
            BoolProv::PredEq { left, right } => {
                out.insert(*left);
                out.insert(*right);
            }
            BoolProv::Not(inner) => inner.collect_vars(out),
            BoolProv::And(terms) | BoolProv::Or(terms) => {
                for t in terms {
                    t.collect_vars(out);
                }
            }
        }
    }
}

impl AggTerm {
    /// Discrete numeric value of the term.
    pub fn eval_discrete(&self, preds: &[usize]) -> f64 {
        match self {
            AggTerm::One => 1.0,
            AggTerm::Const(v) => *v,
            AggTerm::PredValue(var) => preds[*var as usize] as f64,
            AggTerm::ScaledPred { var, weight } => weight * preds[*var as usize] as f64,
        }
    }

    /// Relaxed numeric value (`PredValue` → `Σ_c c·p[c]`).
    pub fn eval_relaxed(&self, probs: &Probs) -> f64 {
        match self {
            AggTerm::One => 1.0,
            AggTerm::Const(v) => *v,
            AggTerm::PredValue(var) => probs.p[*var as usize]
                .iter()
                .enumerate()
                .map(|(c, &p)| c as f64 * p)
                .sum(),
            AggTerm::ScaledPred { var, weight } => {
                weight
                    * probs.p[*var as usize]
                        .iter()
                        .enumerate()
                        .map(|(c, &p)| c as f64 * p)
                        .sum::<f64>()
            }
        }
    }

    fn accumulate_grad(&self, probs: &Probs, adj: f64, grad: &mut ProbGrad) {
        match self {
            AggTerm::PredValue(var) => {
                let n = probs.p[*var as usize].len();
                let slot = grad.slot(*var, n);
                for (c, s) in slot.iter_mut().enumerate() {
                    *s += adj * c as f64;
                }
            }
            AggTerm::ScaledPred { var, weight } => {
                let n = probs.p[*var as usize].len();
                let slot = grad.slot(*var, n);
                for (c, s) in slot.iter_mut().enumerate() {
                    *s += adj * weight * c as f64;
                }
            }
            AggTerm::One | AggTerm::Const(_) => {}
        }
    }
}

impl AggSum {
    /// Discrete value of the sum.
    pub fn eval_discrete(&self, preds: &[usize]) -> f64 {
        self.terms
            .iter()
            .filter(|(f, _)| f.eval_discrete(preds))
            .map(|(_, t)| t.eval_discrete(preds))
            .sum()
    }

    /// Relaxed value `Σ relaxed(formula)·relaxed(term)`.
    pub fn eval_relaxed(&self, probs: &Probs) -> f64 {
        self.terms
            .iter()
            .map(|(f, t)| f.eval_relaxed(probs) * t.eval_relaxed(probs))
            .sum()
    }

    /// Reverse-mode accumulation into `grad`.
    pub fn accumulate_grad(&self, probs: &Probs, adj: f64, grad: &mut ProbGrad) {
        if adj == 0.0 {
            return;
        }
        for (f, t) in &self.terms {
            let fv = f.eval_relaxed(probs);
            let tv = t.eval_relaxed(probs);
            f.accumulate_grad(probs, adj * tv, grad);
            t.accumulate_grad(probs, adj * fv, grad);
        }
    }
}

impl CellProv {
    /// Discrete value of the cell (bools as 0/1).
    pub fn eval_discrete(&self, preds: &[usize]) -> f64 {
        match self {
            CellProv::Bool(f) => f.eval_discrete(preds) as u8 as f64,
            CellProv::Sum(s) => s.eval_discrete(preds),
            CellProv::Ratio(num, den) => {
                let d = den.eval_discrete(preds);
                if d == 0.0 {
                    0.0
                } else {
                    num.eval_discrete(preds) / d
                }
            }
        }
    }

    /// Relaxed value of the cell. AVG relaxes to the ratio of expectations
    /// (with a small floor on the denominator to stay differentiable).
    pub fn eval_relaxed(&self, probs: &Probs) -> f64 {
        match self {
            CellProv::Bool(f) => f.eval_relaxed(probs),
            CellProv::Sum(s) => s.eval_relaxed(probs),
            CellProv::Ratio(num, den) => {
                let d = den.eval_relaxed(probs).max(1e-9);
                num.eval_relaxed(probs) / d
            }
        }
    }

    /// Gradient of the relaxed value w.r.t. all probabilities.
    pub fn grad(&self, probs: &Probs) -> ProbGrad {
        let mut g = ProbGrad::default();
        self.accumulate_grad(probs, 1.0, &mut g);
        g
    }

    /// Reverse-mode accumulation with an external adjoint.
    pub fn accumulate_grad(&self, probs: &Probs, adj: f64, grad: &mut ProbGrad) {
        match self {
            CellProv::Bool(f) => f.accumulate_grad(probs, adj, grad),
            CellProv::Sum(s) => s.accumulate_grad(probs, adj, grad),
            CellProv::Ratio(num, den) => {
                // d(n/d) = dn/d - n·dd/d².
                let d = den.eval_relaxed(probs).max(1e-9);
                let nv = num.eval_relaxed(probs);
                num.accumulate_grad(probs, adj / d, grad);
                den.accumulate_grad(probs, -adj * nv / (d * d), grad);
            }
        }
    }

    /// Distinct variables mentioned by the cell.
    pub fn vars(&self) -> std::collections::BTreeSet<VarId> {
        let mut out = std::collections::BTreeSet::new();
        match self {
            CellProv::Bool(f) => f.collect_vars(&mut out),
            CellProv::Sum(s) => {
                for (f, t) in &s.terms {
                    f.collect_vars(&mut out);
                    if let AggTerm::PredValue(v) | AggTerm::ScaledPred { var: v, .. } = t {
                        out.insert(*v);
                    }
                }
            }
            CellProv::Ratio(num, den) => {
                for s in [num, den] {
                    for (f, t) in &s.terms {
                        f.collect_vars(&mut out);
                        if let AggTerm::PredValue(v) | AggTerm::ScaledPred { var: v, .. } = t {
                            out.insert(*v);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_probs(ps: &[f64]) -> Probs {
        Probs {
            p: ps.iter().map(|&p| vec![1.0 - p, p]).collect(),
        }
    }

    fn atom(var: VarId) -> BoolProv {
        BoolProv::PredIs { var, class: 1 }
    }

    #[test]
    fn constant_folding() {
        assert_eq!(BoolProv::and(vec![BoolProv::Const(true), atom(0)]), atom(0));
        assert_eq!(
            BoolProv::and(vec![BoolProv::Const(false), atom(0)]),
            BoolProv::Const(false)
        );
        assert_eq!(BoolProv::or(vec![]), BoolProv::Const(false));
        assert_eq!(BoolProv::and(vec![]), BoolProv::Const(true));
        assert_eq!(atom(0).negate().negate(), atom(0));
        // Nested And flattens.
        assert_eq!(
            BoolProv::and(vec![BoolProv::and(vec![atom(0), atom(1)]), atom(2)]),
            BoolProv::And(vec![atom(0), atom(1), atom(2)])
        );
    }

    #[test]
    fn discrete_evaluation() {
        let f = BoolProv::and(vec![atom(0), atom(1).negate()]);
        assert!(f.eval_discrete(&[1, 0]));
        assert!(!f.eval_discrete(&[1, 1]));
        let eq = BoolProv::PredEq { left: 0, right: 1 };
        assert!(eq.eval_discrete(&[3, 3]));
        assert!(!eq.eval_discrete(&[3, 4]));
    }

    #[test]
    fn relaxation_rules_match_paper() {
        let p = binary_probs(&[0.3, 0.6]);
        // AND → product.
        let f = BoolProv::and(vec![atom(0), atom(1)]);
        assert!((f.eval_relaxed(&p) - 0.3 * 0.6).abs() < 1e-12);
        // OR → 1-(1-x)(1-y).
        let f = BoolProv::or(vec![atom(0), atom(1)]);
        assert!((f.eval_relaxed(&p) - (1.0 - 0.7 * 0.4)).abs() < 1e-12);
        // NOT → 1-x.
        assert!((atom(0).negate().eval_relaxed(&p) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn relaxation_agrees_with_discrete_at_unit_probabilities() {
        // Degenerate probabilities (0/1) must reproduce discrete semantics.
        let f = BoolProv::or(vec![
            BoolProv::and(vec![atom(0), atom(1)]),
            atom(2).negate(),
        ]);
        for bits in 0..8u32 {
            let preds: Vec<usize> = (0..3).map(|i| ((bits >> i) & 1) as usize).collect();
            let probs = Probs {
                p: preds
                    .iter()
                    .map(|&c| {
                        let mut row = vec![0.0, 0.0];
                        row[c] = 1.0;
                        row
                    })
                    .collect(),
            };
            assert_eq!(
                f.eval_discrete(&preds) as u8 as f64,
                f.eval_relaxed(&probs),
                "bits {bits}"
            );
        }
    }

    #[test]
    fn read_once_relaxation_equals_exact_expectation() {
        // When every variable appears once, the relaxation IS the
        // expectation (paper cites [29]). Check against brute-force
        // enumeration for (x0 AND x1) OR x2.
        let f = BoolProv::or(vec![BoolProv::and(vec![atom(0), atom(1)]), atom(2)]);
        let ps = [0.2, 0.7, 0.4];
        let probs = binary_probs(&ps);
        let mut expect = 0.0;
        for bits in 0..8u32 {
            let preds: Vec<usize> = (0..3).map(|i| ((bits >> i) & 1) as usize).collect();
            let weight: f64 = (0..3)
                .map(|i| if preds[i] == 1 { ps[i] } else { 1.0 - ps[i] })
                .product();
            if f.eval_discrete(&preds) {
                expect += weight;
            }
        }
        assert!((f.eval_relaxed(&probs) - expect).abs() < 1e-12);
    }

    #[test]
    fn pred_eq_relaxes_to_dot_product() {
        let probs = Probs {
            p: vec![vec![0.2, 0.5, 0.3], vec![0.1, 0.8, 0.1]],
        };
        let f = BoolProv::PredEq { left: 0, right: 1 };
        let expect = 0.2 * 0.1 + 0.5 * 0.8 + 0.3 * 0.1;
        assert!((f.eval_relaxed(&probs) - expect).abs() < 1e-12);
    }

    /// Finite-difference check of a cell gradient.
    fn check_grad(cell: &CellProv, probs: &Probs) {
        let g = cell.grad(probs);
        let eps = 1e-6;
        for var in 0..probs.n_vars() {
            for c in 0..probs.p[var].len() {
                let mut up = probs.clone();
                up.p[var][c] += eps;
                let mut dn = probs.clone();
                dn.p[var][c] -= eps;
                let fd = (cell.eval_relaxed(&up) - cell.eval_relaxed(&dn)) / (2.0 * eps);
                let got = g.g.get(&(var as VarId)).map_or(0.0, |v| v[c]);
                assert!(
                    (fd - got).abs() < 1e-6,
                    "var {var} class {c}: fd {fd} vs {got}"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let probs = Probs {
            p: vec![vec![0.7, 0.3], vec![0.4, 0.6], vec![0.9, 0.1]],
        };
        // Shared-variable formula exercises the product rules.
        let f = BoolProv::or(vec![
            BoolProv::and(vec![atom(0), atom(1)]),
            BoolProv::and(vec![atom(0).negate(), atom(2)]),
        ]);
        check_grad(&CellProv::Bool(f), &probs);
        // A COUNT over three rows.
        let sum = AggSum {
            terms: vec![
                (atom(0), AggTerm::One),
                (atom(1), AggTerm::One),
                (BoolProv::and(vec![atom(0), atom(2)]), AggTerm::One),
            ],
        };
        check_grad(&CellProv::Sum(Arc::new(sum.clone())), &probs);
        // An AVG (ratio) with a PredValue numerator.
        let num = AggSum {
            terms: vec![
                (BoolProv::Const(true), AggTerm::PredValue(0)),
                (BoolProv::Const(true), AggTerm::PredValue(1)),
            ],
        };
        let den = AggSum {
            terms: vec![
                (BoolProv::Const(true), AggTerm::One),
                (BoolProv::Const(true), AggTerm::One),
            ],
        };
        check_grad(&CellProv::Ratio(Arc::new(num), Arc::new(den)), &probs);
        // PredEq gradient.
        let probs3 = Probs {
            p: vec![vec![0.2, 0.5, 0.3], vec![0.1, 0.8, 0.1]],
        };
        check_grad(
            &CellProv::Bool(BoolProv::PredEq { left: 0, right: 1 }),
            &probs3,
        );
    }

    #[test]
    fn count_cell_discrete_and_relaxed() {
        let sum = AggSum {
            terms: vec![(atom(0), AggTerm::One), (atom(1), AggTerm::One)],
        };
        let cell = CellProv::Sum(Arc::new(sum));
        assert_eq!(cell.eval_discrete(&[1, 0]), 1.0);
        let probs = binary_probs(&[0.9, 0.2]);
        assert!((cell.eval_relaxed(&probs) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn avg_ratio_semantics() {
        // AVG(predict) over two always-present rows.
        let num = AggSum {
            terms: vec![
                (BoolProv::Const(true), AggTerm::PredValue(0)),
                (BoolProv::Const(true), AggTerm::PredValue(1)),
            ],
        };
        let den = AggSum {
            terms: vec![
                (BoolProv::Const(true), AggTerm::One),
                (BoolProv::Const(true), AggTerm::One),
            ],
        };
        let cell = CellProv::Ratio(Arc::new(num), Arc::new(den));
        assert_eq!(cell.eval_discrete(&[1, 0]), 0.5);
        let probs = binary_probs(&[0.8, 0.4]);
        assert!((cell.eval_relaxed(&probs) - 0.6).abs() < 1e-12);
        // Empty denominator → 0, not NaN.
        let empty = CellProv::Ratio(Arc::default(), Arc::default());
        assert_eq!(empty.eval_discrete(&[]), 0.0);
    }

    #[test]
    fn vars_collection() {
        let f = BoolProv::or(vec![
            BoolProv::and(vec![atom(3), atom(1)]),
            BoolProv::PredEq { left: 5, right: 1 },
        ]);
        let cell = CellProv::Bool(f);
        let vars: Vec<VarId> = cell.vars().into_iter().collect();
        assert_eq!(vars, vec![1, 3, 5]);
    }
}
