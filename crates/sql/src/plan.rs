//! Physical query plans: what the executor runs.
//!
//! The planning pipeline is split in two. The **logical** side is the
//! [`BoundStatement`]: relations as written in FROM order, the WHERE
//! clause as a conjunct list, and the projection/aggregation shape —
//! no execution decisions at all. A [`QueryPlan`] is the **physical**
//! side: relations in the join order the executor will actually use,
//! per-relation scan filters (predicates pushed below the joins), an
//! [`AccessPath`] per scan, a [`JoinAlgo`] per join step, and the
//! optimizer's cardinality estimates ([`PlanEstimates`]).
//! [`QueryPlan::naive`] lowers a bound statement with default physical
//! choices (FROM order, sequential scans, hash joins) — the baseline
//! the optimizer (and the equivalence property tests) compare against;
//! [`optimize`](crate::optimize::optimize) runs the rule-based rewrites
//! plus the cost-based phase in [`cost`](crate::cost).
//!
//! [`QueryPlan::explain`] renders the plan as an indented operator tree,
//! which is how the optimizer's work (pushdown, folding, pruning, join
//! ordering, access-path selection) is made visible to users and
//! asserted in tests. [`QueryPlan::explain_engine`] additionally
//! annotates which engine would run the plan, the access path of each
//! scan (`seq-scan` / `index-scan(col)`), which predicate kernels each
//! scan filter compiles to, and the join strategy (including
//! `index-nested-loop`). [`QueryPlan::explain_analyze`] adds
//! `est=…/actual=…` row counts from a traced execution next to the
//! optimizer's estimates.

use crate::binder::{BExpr, BoundAggArg, BoundRel, BoundStatement, GroupKey, QueryKind};
use crate::catalog::Database;
use crate::exec::Engine;
use crate::index::IndexKind;

use crate::table::Table;
use std::collections::BTreeSet;

/// How a scan reads its relation: full scan, or a probe into one of the
/// table's secondary indexes (see [`index`](crate::index)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Read every row, applying scan filters as it goes.
    SeqScan,
    /// Resolve one scan filter through a secondary index and apply the
    /// remaining filters only to the rows it returns. The executor
    /// resolves the index against the live catalog at run time and
    /// falls back to [`AccessPath::SeqScan`] if it has been dropped.
    IndexScan {
        /// Index into this relation's `scan_filters` entry: the
        /// predicate the index answers.
        filter: usize,
        /// Indexed column ordinal.
        col: usize,
        /// Which index to probe (hash for `=`, sorted for ranges).
        kind: IndexKind,
    },
}

/// How a join step matches its inner (right) relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build a transient hash table over the inner side, probe with the
    /// outer tuples (or a nested-loop cross product when the step has
    /// no equi-keys).
    Hash,
    /// Probe the inner table's persistent hash index directly — no
    /// per-query build. Chosen when the single equi-key's inner side is
    /// a bare indexed column and the inner scan has no filters. Falls
    /// back to [`JoinAlgo::Hash`] if the index has been dropped.
    IndexNestedLoop {
        /// Indexed column ordinal on the inner relation.
        col: usize,
    },
}

/// The cost-based optimizer's cardinality estimates, kept on the plan
/// so `EXPLAIN (analyze)` can print `est=…` next to `actual=…`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanEstimates {
    /// Estimated rows surviving each relation's scan filters, in plan
    /// order.
    pub scan_rows: Vec<u64>,
    /// Estimated rows out of each join step (step `i` joins relation
    /// `i + 1` into the accumulated left side).
    pub join_rows: Vec<u64>,
}

/// A physical SPJA plan, ready for execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// FROM relations in join order.
    pub rels: Vec<BoundRel>,
    /// Per-relation predicates applied at scan time, before any join.
    /// Always model-free (predicate pushdown never moves a `predict()`
    /// atom, so debug-mode provenance is unchanged).
    pub scan_filters: Vec<Vec<BExpr>>,
    /// Residual conjuncts: join conditions, model predicates, and
    /// anything touching several relations. Applied as early as their
    /// relation footprint allows.
    pub conjuncts: Vec<BExpr>,
    /// Projection or aggregation.
    pub kind: QueryKind,
    /// Column footprint per relation: every column the plan can read
    /// (projection pruning computes the minimal set; the naive plan
    /// declares full schemas).
    pub used_cols: Vec<BTreeSet<usize>>,
    /// Access path per relation, aligned with `rels`.
    pub access: Vec<AccessPath>,
    /// Join algorithm per join step (`rels.len() - 1` entries; empty
    /// for single-relation plans).
    pub join_algos: Vec<JoinAlgo>,
    /// Cardinality estimates from the cost-based phase; `None` until
    /// [`cost`](crate::cost) has run.
    pub est: Option<PlanEstimates>,
}

/// Which operators of a plan read the model — the classification the
/// incremental prepare/refresh machinery is built on. Scan filters are
/// model-free by construction (the optimizer never pushes a `predict()`
/// atom), so model dependence can only sit in residual conjuncts or in the
/// projection/aggregation shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelDeps {
    /// Indices into [`QueryPlan::conjuncts`] that contain a `predict()`
    /// atom. These never prune in debug mode — they only contribute
    /// symbolic membership formulas.
    pub model_conjuncts: Vec<usize>,
    /// True when the output shape itself reads the model: a bare
    /// `predict()` select item, a `GROUP BY predict(...)` key, or a
    /// `SUM/AVG(predict(...))` aggregate argument.
    pub model_output: bool,
}

impl ModelDeps {
    /// True when no operator reads the model at all; re-executing such a
    /// plan under new parameters can reuse the cached result verbatim.
    pub fn is_model_free(&self) -> bool {
        self.model_conjuncts.is_empty() && !self.model_output
    }
}

impl QueryPlan {
    /// Classify which operators of this plan depend on the model.
    pub fn model_deps(&self) -> ModelDeps {
        let model_conjuncts = self
            .conjuncts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains_predict())
            .map(|(i, _)| i)
            .collect();
        let model_output = match &self.kind {
            QueryKind::Select { items } => items.iter().any(|(e, _)| e.contains_predict()),
            QueryKind::Aggregate { keys, aggs } => {
                keys.iter().any(|k| matches!(k, GroupKey::Predict { .. }))
                    || aggs.iter().any(|a| {
                        matches!(
                            a.arg,
                            BoundAggArg::Predict { .. } | BoundAggArg::ScaledPredict { .. }
                        )
                    })
            }
        };
        ModelDeps {
            model_conjuncts,
            model_output,
        }
    }

    /// Lower a bound statement with **no** rewriting: no scan filters, no
    /// folding, full-schema column footprints. This is exactly the shape
    /// the seed executor ran, kept as the optimizer's baseline.
    pub fn naive(stmt: BoundStatement, db: &Database) -> QueryPlan {
        let n = stmt.rels.len();
        let used_cols = stmt
            .rels
            .iter()
            .map(|r| (0..db.table_by_id(r.id).schema().len()).collect())
            .collect();
        QueryPlan {
            scan_filters: vec![Vec::new(); n],
            rels: stmt.rels,
            conjuncts: stmt.conjuncts,
            kind: stmt.kind,
            used_cols,
            access: vec![AccessPath::SeqScan; n],
            join_algos: vec![JoinAlgo::Hash; n.saturating_sub(1)],
            est: None,
        }
    }

    /// Render the plan as an indented operator tree, e.g.:
    ///
    /// ```text
    /// Aggregate keys=[] aggs=[count(*)]
    ///   Filter [predict(u) = 1]
    ///     Join
    ///       Scan users AS u cols=[id] filter=[u.id < 10]
    ///       Scan logins AS l cols=[id]
    /// ```
    pub fn explain(&self, db: &Database) -> String {
        self.render(db, None, None, None)
    }

    /// [`QueryPlan::explain`] for a specific engine: prefixes an
    /// `Engine:` line, tags the join strategy, and (for the vectorized
    /// engine) annotates each scan with the predicate kernels its filters
    /// compile to — `row-fallback` marks filters the kernel compiler
    /// hands back to the shared scalar evaluator.
    pub fn explain_engine(&self, db: &Database, engine: Engine) -> String {
        self.render(db, Some(engine), None, None)
    }

    /// [`QueryPlan::explain_engine`] for a concrete execution
    /// configuration: the `Engine:` line reports the resolved worker
    /// count (`threads` as an [`ExecOptions::threads`](crate::exec::ExecOptions)-style
    /// knob, `0` = auto; the tuple oracle always resolves to 1) and each
    /// vectorized scan is annotated with the number of morsels it would
    /// shard into — the same counts a traced run records as per-morsel
    /// worker spans.
    pub fn explain_exec(&self, db: &Database, engine: Engine, threads: usize) -> String {
        let resolved = match engine {
            Engine::Vectorized => crate::exec::resolve_threads(threads),
            Engine::Tuple => 1,
        };
        self.render(db, Some(engine), Some(resolved), None)
    }

    /// [`QueryPlan::explain_exec`] plus observed row counts from a traced
    /// execution: every `Scan` and every join step gains `est=…`
    /// (the optimizer's cardinality estimate, when the cost-based phase
    /// ran) and `actual=…` (what the execution produced). `scan_rows`
    /// and `join_rows` are in plan order, exactly as a
    /// [`SkeletonStats`](crate::SkeletonStats) reports them.
    pub fn explain_analyze(
        &self,
        db: &Database,
        engine: Engine,
        threads: usize,
        scan_rows: &[usize],
        join_rows: &[usize],
    ) -> String {
        let resolved = match engine {
            Engine::Vectorized => crate::exec::resolve_threads(threads),
            Engine::Tuple => 1,
        };
        self.render(
            db,
            Some(engine),
            Some(resolved),
            Some((scan_rows, join_rows)),
        )
    }

    fn render(
        &self,
        db: &Database,
        engine: Option<Engine>,
        threads: Option<usize>,
        analyze: Option<(&[usize], &[usize])>,
    ) -> String {
        let mut out = String::new();
        let mut indent = 0usize;
        let vectorized = engine == Some(Engine::Vectorized);
        if let Some(engine) = engine {
            match threads {
                Some(t) => out.push_str(&format!(
                    "Engine: {} threads={t}\n",
                    crate::printer::engine_name(engine)
                )),
                None => out.push_str(&format!(
                    "Engine: {}\n",
                    crate::printer::engine_name(engine)
                )),
            }
        }
        let push = |line: String, indent: usize, out: &mut String| {
            out.push_str(&"  ".repeat(indent));
            out.push_str(&line);
            out.push('\n');
        };
        match &self.kind {
            QueryKind::Select { items } => {
                let cols: Vec<String> = items
                    .iter()
                    .map(|(e, n)| format!("{} AS {n}", self.expr_sql(e, db)))
                    .collect();
                push(format!("Project [{}]", cols.join(", ")), indent, &mut out);
            }
            QueryKind::Aggregate { keys, aggs } => {
                let key_strs: Vec<String> = keys
                    .iter()
                    .map(|k| match k {
                        GroupKey::Col { name, .. } => name.clone(),
                        GroupKey::Predict { rel } => {
                            format!("predict({})", self.rels[*rel].alias)
                        }
                    })
                    .collect();
                let agg_strs: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        let arg = match &a.arg {
                            BoundAggArg::CountStar => "*".to_string(),
                            BoundAggArg::Scalar(e) => self.expr_sql(e, db),
                            BoundAggArg::Predict { rel } => {
                                format!("predict({})", self.rels[*rel].alias)
                            }
                            BoundAggArg::ScaledPredict { rel, factor } => format!(
                                "{} * predict({})",
                                self.expr_sql(factor, db),
                                self.rels[*rel].alias
                            ),
                        };
                        format!("{}({arg})", a.func.as_str())
                    })
                    .collect();
                push(
                    format!(
                        "Aggregate keys=[{}] aggs=[{}]",
                        key_strs.join(", "),
                        agg_strs.join(", ")
                    ),
                    indent,
                    &mut out,
                );
            }
        }
        indent += 1;
        if !self.conjuncts.is_empty() {
            let preds: Vec<String> = self
                .conjuncts
                .iter()
                .map(|c| self.expr_sql(c, db))
                .collect();
            push(
                format!("Filter [{}]", preds.join(" AND ")),
                indent,
                &mut out,
            );
            indent += 1;
        }
        let tables: Vec<&Table> = self.rels.iter().map(|r| db.table_by_id(r.id)).collect();
        if self.rels.len() > 1 {
            let mut line = "Join".to_string();
            if engine.is_some() {
                // Derive the annotation from the engines' actual schedule
                // (and, for vexec, the same key classification the join
                // dispatch uses) — one entry per join step.
                let steps: Vec<String> = crate::eval::join_schedule(self)
                    .iter()
                    .enumerate()
                    .map(|(si, keys)| {
                        let inl = vectorized
                            && matches!(
                                self.join_algos.get(si),
                                Some(JoinAlgo::IndexNestedLoop { .. })
                            );
                        let mut step = if keys.is_empty() {
                            "nested-loop".to_string()
                        } else if inl {
                            let JoinAlgo::IndexNestedLoop { col } = self.join_algos[si] else {
                                unreachable!()
                            };
                            let schema = db.table_by_id(self.rels[si + 1].id).schema();
                            format!("index-nested-loop({})", schema.col(col).name)
                        } else if vectorized {
                            let pairs: Vec<(BExpr, BExpr)> = keys
                                .iter()
                                .map(|(le, re, _)| (le.clone(), re.clone()))
                                .collect();
                            crate::vexec::join::strategy(&tables, &pairs)
                                .describe()
                                .to_string()
                        } else {
                            "hash".to_string()
                        };
                        if let Some((_, join_rows)) = analyze {
                            if let Some(e) = self.est.as_ref().and_then(|e| e.join_rows.get(si)) {
                                step.push_str(&format!(" est={e}"));
                            }
                            if let Some(a) = join_rows.get(si) {
                                step.push_str(&format!(" actual={a}"));
                            }
                        }
                        step
                    })
                    .collect();
                line.push_str(&format!(" [{}]", steps.join("; ")));
            }
            push(line, indent, &mut out);
            indent += 1;
        }
        for (ri, rel) in self.rels.iter().enumerate() {
            let schema = db.table_by_id(rel.id).schema();
            let cols: Vec<&str> = self.used_cols[ri]
                .iter()
                .map(|&c| schema.col(c).name.as_str())
                .collect();
            let mut line = format!(
                "Scan {} AS {} cols=[{}]",
                rel.table,
                rel.alias,
                cols.join(", ")
            );
            // Access path: engine renders always say it; the plain
            // logical render only calls out non-default index scans.
            match self.access.get(ri) {
                Some(AccessPath::IndexScan { col, .. }) => {
                    line.push_str(&format!(" access=index-scan({})", schema.col(*col).name));
                }
                _ if engine.is_some() => line.push_str(" access=seq-scan"),
                _ => {}
            }
            if !self.scan_filters[ri].is_empty() {
                let preds: Vec<String> = self.scan_filters[ri]
                    .iter()
                    .map(|c| self.expr_sql(c, db))
                    .collect();
                line.push_str(&format!(" filter=[{}]", preds.join(" AND ")));
                if vectorized {
                    let kernels: Vec<String> = self.scan_filters[ri]
                        .iter()
                        .map(|c| {
                            crate::vexec::kernels::describe(c, &tables)
                                .unwrap_or_else(|| "row-fallback".into())
                        })
                        .collect();
                    line.push_str(&format!(" kernels=[{}]", kernels.join(", ")));
                }
            }
            if let Some(t) = threads.filter(|_| vectorized) {
                // Mirror the scan's parallel guard exactly: no filters =
                // identity scan, only model-free filters shard, and an
                // index scan starts from a posting list instead of
                // sharding the table.
                let n = db.table_by_id(rel.id).n_rows();
                let indexed = matches!(self.access.get(ri), Some(AccessPath::IndexScan { .. }));
                let shardable = !indexed
                    && !self.scan_filters[ri].is_empty()
                    && self.scan_filters[ri].iter().all(|f| !f.contains_predict());
                let morsels = if shardable {
                    crate::vexec::morsel::morsel_count(t, n)
                } else {
                    1
                };
                line.push_str(&format!(" morsels={morsels}"));
            }
            if let Some((scan_rows, _)) = analyze {
                if let Some(e) = self.est.as_ref().and_then(|e| e.scan_rows.get(ri)) {
                    line.push_str(&format!(" est={e}"));
                }
                if let Some(a) = scan_rows.get(ri) {
                    line.push_str(&format!(" actual={a}"));
                }
            }
            push(line, indent, &mut out);
        }
        out
    }

    /// Render a bound expression with alias-qualified column names.
    pub fn expr_sql(&self, e: &BExpr, db: &Database) -> String {
        match e {
            BExpr::Lit(v) => match v {
                crate::value::Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            },
            BExpr::Col { rel, col } => {
                let r = &self.rels[*rel];
                let name = &db.table_by_id(r.id).schema().col(*col).name;
                if self.rels.len() > 1 {
                    format!("{}.{}", r.alias, name)
                } else {
                    name.clone()
                }
            }
            BExpr::Predict { rel } => format!("predict({})", self.rels[*rel].alias),
            BExpr::Not(inner) => format!("NOT ({})", self.expr_sql(inner, db)),
            BExpr::And(terms) => {
                let parts: Vec<String> = terms.iter().map(|t| self.expr_sql(t, db)).collect();
                format!("({})", parts.join(" AND "))
            }
            BExpr::Or(terms) => {
                let parts: Vec<String> = terms.iter().map(|t| self.expr_sql(t, db)).collect();
                format!("({})", parts.join(" OR "))
            }
            BExpr::Cmp { op, left, right } => {
                format!(
                    "{} {} {}",
                    self.expr_sql(left, db),
                    op.as_str(),
                    self.expr_sql(right, db)
                )
            }
            BExpr::Like {
                expr,
                pattern,
                negated,
            } => format!(
                "{}{} LIKE '{pattern}'",
                self.expr_sql(expr, db),
                if *negated { " NOT" } else { "" }
            ),
            BExpr::Arith { op, left, right } => {
                use crate::ast::ArithOp;
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                format!(
                    "({} {sym} {})",
                    self.expr_sql(left, db),
                    self.expr_sql(right, db)
                )
            }
        }
    }
}
