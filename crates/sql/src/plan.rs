//! Name resolution and validation: AST → bound query.
//!
//! The binder resolves table aliases and column names against the catalog,
//! splits `WHERE`/`ON` into a flat list of conjuncts (so the executor can
//! push each down as early as possible), classifies the query as plain
//! select vs aggregate, and enforces the dialect's `predict()` placement
//! rules: `predict` may appear **bare** in comparisons, as an aggregate
//! argument, or as a GROUP BY key — never inside arithmetic (paper §3.1;
//! appendix B leaves relaxing aggregate comparisons to future work).

use crate::ast::{AggFunc, ArithOp, CmpOp, Expr, SelectItem, SelectStmt};
use crate::catalog::Database;
use crate::value::Value;
use crate::QueryError;
use std::collections::BTreeSet;

/// A FROM-list relation after binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundRel {
    /// Catalog table name.
    pub table: String,
    /// Alias used in the query.
    pub alias: String,
}

/// A bound scalar expression (all names resolved to indices).
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Literal.
    Lit(Value),
    /// Column `rels[rel].columns[col]`.
    Col {
        /// Relation index into the FROM list.
        rel: usize,
        /// Column index within that relation.
        col: usize,
    },
    /// Model inference over relation `rel`'s current row.
    Predict {
        /// Relation index into the FROM list.
        rel: usize,
    },
    /// Negation.
    Not(Box<BExpr>),
    /// Conjunction.
    And(Vec<BExpr>),
    /// Disjunction.
    Or(Vec<BExpr>),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
    },
    /// `LIKE`.
    Like {
        /// Operand.
        expr: Box<BExpr>,
        /// Pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
    },
}

impl BExpr {
    /// Record which relations the expression touches.
    pub fn rels_used(&self, out: &mut BTreeSet<usize>) {
        match self {
            BExpr::Lit(_) => {}
            BExpr::Col { rel, .. } | BExpr::Predict { rel } => {
                out.insert(*rel);
            }
            BExpr::Not(e) => e.rels_used(out),
            BExpr::And(es) | BExpr::Or(es) => {
                for e in es {
                    e.rels_used(out);
                }
            }
            BExpr::Cmp { left, right, .. } | BExpr::Arith { left, right, .. } => {
                left.rels_used(out);
                right.rels_used(out);
            }
            BExpr::Like { expr, .. } => expr.rels_used(out),
        }
    }

    /// True when the expression mentions `predict` anywhere.
    pub fn contains_predict(&self) -> bool {
        match self {
            BExpr::Predict { .. } => true,
            BExpr::Lit(_) | BExpr::Col { .. } => false,
            BExpr::Not(e) | BExpr::Like { expr: e, .. } => e.contains_predict(),
            BExpr::And(es) | BExpr::Or(es) => es.iter().any(BExpr::contains_predict),
            BExpr::Cmp { left, right, .. } | BExpr::Arith { left, right, .. } => {
                left.contains_predict() || right.contains_predict()
            }
        }
    }
}

/// An aggregate argument after binding.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundAggArg {
    /// `COUNT(*)`.
    CountStar,
    /// A model-independent expression.
    Scalar(BExpr),
    /// `predict(rel)`.
    Predict {
        /// Relation index.
        rel: usize,
    },
    /// `factor * predict(rel)` with a model-independent factor — the
    /// appendix-B shape (`SUM(10^position · predict(image))`).
    ScaledPredict {
        /// Relation index.
        rel: usize,
        /// Model-independent multiplier expression.
        factor: BExpr,
    },
}

/// A bound aggregate select item.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAgg {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument.
    pub arg: BoundAggArg,
    /// Output column name.
    pub name: String,
}

/// A bound GROUP BY key.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupKey {
    /// A plain column.
    Col {
        /// Relation index.
        rel: usize,
        /// Column index.
        col: usize,
        /// Output column name.
        name: String,
    },
    /// `predict(rel)` — groups are the model's classes.
    Predict {
        /// Relation index.
        rel: usize,
    },
}

/// The projection/aggregation shape of a bound query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Plain SPJ select. `items` are `(expression, output name)`.
    Select {
        /// Output expressions with names.
        items: Vec<(BExpr, String)>,
    },
    /// Aggregate query (possibly grouped).
    Aggregate {
        /// Group keys (empty = one global group).
        keys: Vec<GroupKey>,
        /// Aggregates, in select-list order.
        aggs: Vec<BoundAgg>,
    },
}

/// A fully bound SPJA query.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// FROM relations in order.
    pub rels: Vec<BoundRel>,
    /// All WHERE/ON conjuncts, ready for pushdown.
    pub conjuncts: Vec<BExpr>,
    /// Projection or aggregation.
    pub kind: QueryKind,
}

/// Bind a parsed statement against a database.
pub fn bind(stmt: &SelectStmt, db: &Database) -> Result<BoundQuery, QueryError> {
    let binder = Binder::new(stmt, db)?;
    binder.bind(stmt)
}

struct Binder<'a> {
    db: &'a Database,
    rels: Vec<BoundRel>,
}

impl<'a> Binder<'a> {
    fn new(stmt: &SelectStmt, db: &'a Database) -> Result<Self, QueryError> {
        let mut rels = Vec::with_capacity(stmt.from.len());
        for tr in &stmt.from {
            if db.table(&tr.name).is_none() {
                return Err(QueryError::Bind(format!("unknown table {}", tr.name)));
            }
            if rels.iter().any(|r: &BoundRel| r.alias == tr.alias) {
                return Err(QueryError::Bind(format!("duplicate alias {}", tr.alias)));
            }
            rels.push(BoundRel { table: tr.name.to_ascii_lowercase(), alias: tr.alias.clone() });
        }
        Ok(Binder { db, rels })
    }

    fn bind(self, stmt: &SelectStmt) -> Result<BoundQuery, QueryError> {
        // Conjuncts: WHERE plus all JOIN ... ON conditions, split on AND.
        let mut conjuncts = Vec::new();
        for cond in stmt
            .join_conds
            .iter()
            .chain(stmt.where_clause.as_ref().map(std::iter::once).into_iter().flatten())
        {
            let bound = self.expr(cond)?;
            self.validate_predicate(&bound)?;
            split_conjuncts(bound, &mut conjuncts);
        }

        let kind = if stmt.is_aggregate() {
            self.bind_aggregate(stmt)?
        } else {
            self.bind_select(stmt)?
        };
        Ok(BoundQuery { rels: self.rels, conjuncts, kind })
    }

    fn bind_select(&self, stmt: &SelectStmt) -> Result<QueryKind, QueryError> {
        if !stmt.group_by.is_empty() {
            return Err(QueryError::Bind(
                "GROUP BY requires aggregates in the select list".into(),
            ));
        }
        let mut items = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    let many = self.rels.len() > 1;
                    for (ri, rel) in self.rels.iter().enumerate() {
                        let table = self.db.table(&rel.table).expect("bound table");
                        for (ci, col) in table.schema().iter().enumerate() {
                            let name = if many {
                                format!("{}_{}", rel.alias, col.name)
                            } else {
                                col.name.clone()
                            };
                            items.push((BExpr::Col { rel: ri, col: ci }, name));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.expr(expr)?;
                    if bound.contains_predict() && !matches!(bound, BExpr::Predict { .. }) {
                        return Err(QueryError::Bind(
                            "predict() must appear bare in the select list".into(),
                        ));
                    }
                    let name = alias.clone().unwrap_or_else(|| display_name(expr));
                    items.push((bound, name));
                }
                SelectItem::Agg { .. } => unreachable!("bind_select on aggregate query"),
            }
        }
        Ok(QueryKind::Select { items })
    }

    fn bind_aggregate(&self, stmt: &SelectStmt) -> Result<QueryKind, QueryError> {
        let mut keys = Vec::new();
        for g in &stmt.group_by {
            match self.expr(g)? {
                BExpr::Col { rel, col } => {
                    let table = self.db.table(&self.rels[rel].table).expect("bound");
                    let name = table.schema().col(col).name.clone();
                    keys.push(GroupKey::Col { rel, col, name });
                }
                BExpr::Predict { rel } => keys.push(GroupKey::Predict { rel }),
                _ => {
                    return Err(QueryError::Bind(
                        "GROUP BY keys must be columns or predict()".into(),
                    ))
                }
            }
        }
        let mut aggs = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Agg { func, expr, alias } => {
                    let arg = match (func, expr) {
                        (AggFunc::Count, None) => BoundAggArg::CountStar,
                        (AggFunc::Count, Some(_)) => {
                            return Err(QueryError::Bind(
                                "COUNT(expr) unsupported; use COUNT(*)".into(),
                            ))
                        }
                        (_, None) => unreachable!("parser enforces agg args"),
                        (_, Some(e)) => self.bind_agg_arg(e)?,
                    };
                    let name = alias.clone().unwrap_or_else(|| func.as_str().to_string());
                    aggs.push(BoundAgg { func: *func, arg, name });
                }
                SelectItem::Expr { expr, .. } => {
                    // Non-aggregate items must be group keys.
                    let bound = self.expr(expr)?;
                    let is_key = keys.iter().any(|k| match (k, &bound) {
                        (GroupKey::Col { rel, col, .. }, BExpr::Col { rel: r, col: c }) => {
                            rel == r && col == c
                        }
                        (GroupKey::Predict { rel }, BExpr::Predict { rel: r }) => rel == r,
                        _ => false,
                    });
                    if !is_key {
                        return Err(QueryError::Bind(
                            "non-aggregate select items must be GROUP BY keys".into(),
                        ));
                    }
                }
                SelectItem::Star => {
                    return Err(QueryError::Bind("SELECT * not allowed with aggregates".into()))
                }
            }
        }
        Ok(QueryKind::Aggregate { keys, aggs })
    }

    /// Bind a SUM/AVG argument: a model-free expression, a bare
    /// `predict(rel)`, or `factor * predict(rel)` / `predict(rel) * factor`
    /// with a model-free factor (the appendix-B multi-class OCR shape).
    fn bind_agg_arg(&self, e: &Expr) -> Result<BoundAggArg, QueryError> {
        // Recognize the scaled shape on the *unbound* AST, because the
        // general expression binder rejects predict inside arithmetic.
        if let Expr::Arith { op: crate::ast::ArithOp::Mul, left, right } = e {
            let (pred, factor) = match (&**left, &**right) {
                (Expr::Predict { .. }, other) => (&**left, other),
                (other, Expr::Predict { .. }) => (&**right, other),
                _ => (&Expr::Literal(crate::value::Value::Null), &**left),
            };
            if let Expr::Predict { .. } = pred {
                let BExpr::Predict { rel } = self.expr(pred)? else { unreachable!() };
                let factor = self.expr(factor)?;
                if factor.contains_predict() {
                    return Err(QueryError::Bind(
                        "at most one predict() per aggregate product".into(),
                    ));
                }
                return Ok(BoundAggArg::ScaledPredict { rel, factor });
            }
        }
        Ok(match self.expr(e)? {
            BExpr::Predict { rel } => BoundAggArg::Predict { rel },
            bound if !bound.contains_predict() => BoundAggArg::Scalar(bound),
            _ => {
                return Err(QueryError::Bind(
                    "predict() must appear bare (or scaled by a model-free factor) \
                     as an aggregate argument"
                        .into(),
                ))
            }
        })
    }

    fn expr(&self, e: &Expr) -> Result<BExpr, QueryError> {
        Ok(match e {
            Expr::Literal(v) => BExpr::Lit(v.clone()),
            Expr::Column { qualifier, name } => {
                let (rel, col) = self.resolve_column(qualifier.as_deref(), name)?;
                BExpr::Col { rel, col }
            }
            Expr::Predict { rel } => {
                let rel = match rel {
                    Some(alias) => self.resolve_rel(alias)?,
                    None => {
                        if self.rels.len() != 1 {
                            return Err(QueryError::Bind(
                                "predict(*) is ambiguous with multiple relations; \
                                 use predict(alias)"
                                    .into(),
                            ));
                        }
                        0
                    }
                };
                let table = self.db.table(&self.rels[rel].table).expect("bound");
                if table.features().is_none() {
                    return Err(QueryError::Bind(format!(
                        "table {} has no feature matrix for predict()",
                        self.rels[rel].table
                    )));
                }
                BExpr::Predict { rel }
            }
            Expr::Not(inner) => BExpr::Not(Box::new(self.expr(inner)?)),
            Expr::And(terms) => {
                BExpr::And(terms.iter().map(|t| self.expr(t)).collect::<Result<_, _>>()?)
            }
            Expr::Or(terms) => {
                BExpr::Or(terms.iter().map(|t| self.expr(t)).collect::<Result<_, _>>()?)
            }
            Expr::Cmp { op, left, right } => BExpr::Cmp {
                op: *op,
                left: Box::new(self.expr(left)?),
                right: Box::new(self.expr(right)?),
            },
            Expr::Like { expr, pattern, negated } => BExpr::Like {
                expr: Box::new(self.expr(expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Arith { op, left, right } => {
                let l = self.expr(left)?;
                let r = self.expr(right)?;
                if l.contains_predict() || r.contains_predict() {
                    return Err(QueryError::Bind(
                        "predict() may not appear inside arithmetic".into(),
                    ));
                }
                BExpr::Arith { op: *op, left: Box::new(l), right: Box::new(r) }
            }
        })
    }

    fn resolve_rel(&self, alias: &str) -> Result<usize, QueryError> {
        self.rels
            .iter()
            .position(|r| r.alias == alias)
            .ok_or_else(|| QueryError::Bind(format!("unknown relation alias {alias}")))
    }

    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<(usize, usize), QueryError> {
        match qualifier {
            Some(q) => {
                let rel = self.resolve_rel(q)?;
                let table = self.db.table(&self.rels[rel].table).expect("bound");
                let col = table
                    .schema()
                    .index_of(name)
                    .ok_or_else(|| QueryError::Bind(format!("unknown column {q}.{name}")))?;
                Ok((rel, col))
            }
            None => {
                let mut found = None;
                for (ri, rel) in self.rels.iter().enumerate() {
                    let table = self.db.table(&rel.table).expect("bound");
                    if let Some(ci) = table.schema().index_of(name) {
                        if found.is_some() {
                            return Err(QueryError::Bind(format!(
                                "ambiguous column {name}; qualify it"
                            )));
                        }
                        found = Some((ri, ci));
                    }
                }
                found.ok_or_else(|| QueryError::Bind(format!("unknown column {name}")))
            }
        }
    }

    /// Enforce where `predict` may appear inside a predicate: bare in a
    /// comparison against a model-free expression or another `predict`.
    fn validate_predicate(&self, e: &BExpr) -> Result<(), QueryError> {
        match e {
            BExpr::Predict { .. } => Err(QueryError::Bind(
                "predict() must be compared, not used as a bare boolean".into(),
            )),
            BExpr::Lit(_) | BExpr::Col { .. } => Ok(()),
            BExpr::Not(inner) => self.validate_predicate(inner),
            BExpr::And(terms) | BExpr::Or(terms) => {
                terms.iter().try_for_each(|t| self.validate_predicate(t))
            }
            BExpr::Like { expr, .. } => {
                if expr.contains_predict() {
                    Err(QueryError::Bind("predict() cannot be used with LIKE".into()))
                } else {
                    Ok(())
                }
            }
            BExpr::Arith { left, right, .. } => {
                // Binder already rejects predict inside arithmetic.
                self.validate_predicate(left)?;
                self.validate_predicate(right)
            }
            BExpr::Cmp { left, right, .. } => {
                let lp = matches!(**left, BExpr::Predict { .. });
                let rp = matches!(**right, BExpr::Predict { .. });
                if (left.contains_predict() && !lp) || (right.contains_predict() && !rp) {
                    return Err(QueryError::Bind(
                        "predict() must appear bare in comparisons".into(),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Split a bound predicate into top-level conjuncts.
fn split_conjuncts(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::And(terms) => {
            for t in terms {
                split_conjuncts(t, out);
            }
        }
        other => out.push(other),
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Predict { .. } => "predict".into(),
        _ => "expr".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::table::{ColType, Column, Schema, Table};
    use rain_linalg::Matrix;

    fn db() -> Database {
        let mut db = Database::new();
        let users = Table::from_columns(
            Schema::new(&[("id", ColType::Int), ("name", ColType::Str)]),
            vec![Column::Int(vec![1, 2]), Column::Str(vec!["a".into(), "b".into()])],
        )
        .with_features(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
        db.register("users", users);
        let logins = Table::from_columns(
            Schema::new(&[("id", ColType::Int), ("active", ColType::Bool)]),
            vec![Column::Int(vec![1, 2]), Column::Bool(vec![true, false])],
        );
        db.register("logins", logins);
        db
    }

    fn bind_str(sql: &str) -> Result<BoundQuery, QueryError> {
        bind(&parse_select(sql).unwrap(), &db())
    }

    #[test]
    fn binds_columns_and_splits_conjuncts() {
        let q = bind_str(
            "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id \
             WHERE l.active = true AND predict(u) = 1",
        )
        .unwrap();
        assert_eq!(q.rels.len(), 2);
        assert_eq!(q.conjuncts.len(), 3);
        // The ON condition resolves to rel 0 / rel 1 id columns.
        match &q.conjuncts[0] {
            BExpr::Cmp { left, right, .. } => {
                assert_eq!(**left, BExpr::Col { rel: 0, col: 0 });
                assert_eq!(**right, BExpr::Col { rel: 1, col: 0 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let q = bind_str("SELECT name FROM users WHERE active = true").unwrap_err();
        // `active` is in logins, not users.
        assert!(matches!(q, QueryError::Bind(msg) if msg.contains("unknown column")));
        let q = bind_str("SELECT * FROM users u, logins l WHERE name = 'a'").unwrap();
        assert!(matches!(q.conjuncts[0], BExpr::Cmp { .. }));
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        let err = bind_str("SELECT * FROM users u, logins l WHERE id = 1").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("ambiguous")));
    }

    #[test]
    fn predict_star_needs_single_relation() {
        let err =
            bind_str("SELECT COUNT(*) FROM users u, logins l WHERE predict(*) = 1").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("ambiguous")));
        let ok = bind_str("SELECT COUNT(*) FROM users WHERE predict(*) = 1").unwrap();
        assert!(matches!(ok.conjuncts[0], BExpr::Cmp { .. }));
    }

    #[test]
    fn predict_requires_features() {
        let err = bind_str("SELECT COUNT(*) FROM logins WHERE predict(*) = 1").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("feature matrix")));
    }

    #[test]
    fn predict_inside_arithmetic_is_rejected() {
        let err =
            bind_str("SELECT COUNT(*) FROM users WHERE predict(*) + 1 = 2").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("arithmetic")));
    }

    #[test]
    fn bare_predict_predicate_is_rejected() {
        let err = bind_str("SELECT COUNT(*) FROM users WHERE predict(*)").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("bare boolean")));
    }

    #[test]
    fn group_by_key_binding() {
        let q = bind_str("SELECT COUNT(*) AS n FROM users GROUP BY name").unwrap();
        match q.kind {
            QueryKind::Aggregate { keys, aggs } => {
                assert_eq!(keys.len(), 1);
                assert!(matches!(keys[0], GroupKey::Col { name: ref n, .. } if n == "name"));
                assert_eq!(aggs[0].name, "n");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_predict_binds() {
        let q = bind_str("SELECT COUNT(*) FROM users GROUP BY predict(*)").unwrap();
        match q.kind {
            QueryKind::Aggregate { keys, .. } => {
                assert_eq!(keys, vec![GroupKey::Predict { rel: 0 }]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nonkey_select_item_in_aggregate_rejected() {
        let err = bind_str("SELECT name, COUNT(*) FROM users GROUP BY id").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("GROUP BY keys")));
        // Key items are fine.
        assert!(bind_str("SELECT name, COUNT(*) FROM users GROUP BY name").is_ok());
    }

    #[test]
    fn star_expansion_qualifies_on_multi_rel() {
        let q = bind_str("SELECT * FROM users u, logins l WHERE u.id = l.id").unwrap();
        match q.kind {
            QueryKind::Select { items } => {
                let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
                assert_eq!(names, vec!["u_id", "u_name", "l_id", "l_active"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_table_is_rejected() {
        let err = bind_str("SELECT * FROM missing").unwrap_err();
        assert!(matches!(err, QueryError::Bind(msg) if msg.contains("unknown table")));
    }
}
