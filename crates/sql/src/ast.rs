//! Abstract syntax for the supported SPJA dialect (paper §3.1).
//!
//! The dialect covers exactly what the paper's Table 1/2 queries need:
//!
//! ```sql
//! SELECT COUNT(*) | SUM(e) | AVG(e) | e [AS name], ...
//! FROM t1 [a1], t2 [a2], ... [JOIN t ON cond ...]
//! WHERE conjunctions/disjunctions of comparisons and LIKE
//! GROUP BY col | predict(alias)
//! ```
//!
//! with `predict(alias)` denoting inference of the session model over the
//! feature vector of `alias`'s current row (`Mθ.predict(alias.*)` in the
//! paper's notation).

use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression (pre-binding: names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference `qualifier.name` or bare `name`.
    Column {
        /// Optional table alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Model inference `predict(alias)` or `predict(*)` (single relation).
    Predict {
        /// Relation alias the model reads features from; `None` = `*`.
        rel: Option<String>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// String-valued operand.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
}

impl AggFunc {
    /// The SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A scalar expression with an optional output alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS` alias.
        alias: Option<String>,
    },
    /// An aggregate with an optional output alias. `expr` is `None` for
    /// `COUNT(*)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated expression (`None` for `COUNT(*)`).
        expr: Option<Expr>,
        /// `AS` alias.
        alias: Option<String>,
    },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM relations (comma list and explicit JOINs, flattened in order).
    pub from: Vec<TableRef>,
    /// `ON` conditions of explicit JOINs (conjoined into WHERE by the
    /// binder).
    pub join_conds: Vec<Expr>,
    /// WHERE clause.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
}

impl SelectStmt {
    /// True when any select item is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }))
    }
}
