//! Rendering ASTs back to SQL text.
//!
//! Primarily used by the property tests (parse → print → parse must be a
//! fixpoint) and for diagnostics.

use crate::ast::{AggFunc, ArithOp, Expr, SelectItem, SelectStmt};
use crate::exec::Engine;
use crate::value::Value;
use std::fmt::Write;

/// Human name of an execution engine, used by `EXPLAIN` headers and the
/// bench reports.
pub fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Vectorized => "vectorized",
        Engine::Tuple => "tuple",
    }
}

/// Render an expression to SQL text (fully parenthesized, so precedence
/// never changes meaning on re-parse).
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Literal(Value::Null) => "NULL".into(),
        Expr::Literal(Value::Bool(b)) => b.to_string().to_uppercase(),
        Expr::Literal(Value::Int(v)) => v.to_string(),
        Expr::Literal(Value::Float(v)) => {
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Literal(Value::Str(s)) => format!("'{}'", s.replace('\'', "''")),
        Expr::Column {
            qualifier: Some(q),
            name,
        } => format!("{q}.{name}"),
        Expr::Column {
            qualifier: None,
            name,
        } => name.clone(),
        Expr::Predict { rel: Some(r) } => format!("predict({r})"),
        Expr::Predict { rel: None } => "predict(*)".into(),
        Expr::Not(inner) => format!("NOT ({})", expr_to_sql(inner)),
        Expr::And(terms) => paren_join(terms, " AND "),
        Expr::Or(terms) => paren_join(terms, " OR "),
        Expr::Cmp { op, left, right } => {
            format!(
                "({}) {} ({})",
                expr_to_sql(left),
                op.as_str(),
                expr_to_sql(right)
            )
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({}) {}LIKE '{}'",
            expr_to_sql(expr),
            if *negated { "NOT " } else { "" },
            pattern.replace('\'', "''")
        ),
        Expr::Arith { op, left, right } => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!("({}) {} ({})", expr_to_sql(left), sym, expr_to_sql(right))
        }
    }
}

fn paren_join(terms: &[Expr], sep: &str) -> String {
    let parts: Vec<String> = terms
        .iter()
        .map(|t| format!("({})", expr_to_sql(t)))
        .collect();
    parts.join(sep)
}

/// Render a statement back to SQL text.
pub fn stmt_to_sql(s: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    let items: Vec<String> = s
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Star => "*".into(),
            SelectItem::Expr { expr, alias } => {
                let mut t = expr_to_sql(expr);
                if let Some(a) = alias {
                    let _ = write!(t, " AS {a}");
                }
                t
            }
            SelectItem::Agg { func, expr, alias } => {
                let arg = match expr {
                    None => "*".to_string(),
                    Some(e) => expr_to_sql(e),
                };
                let mut t = format!("{}({arg})", func_name(*func));
                if let Some(a) = alias {
                    let _ = write!(t, " AS {a}");
                }
                t
            }
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str(" FROM ");
    let mut first = true;
    let mut join_iter = s.join_conds.iter();
    for (i, tr) in s.from.iter().enumerate() {
        // Relations beyond the comma-list prefix came from explicit JOINs;
        // we re-render everything as a comma list with the ON conditions
        // folded into WHERE, which is semantically identical for inner
        // joins. The exception: when join_conds exist, render as JOINs to
        // preserve the original shape for as many trailing relations as
        // there are conditions.
        let n_joins = s.join_conds.len();
        let is_join_rel = i >= s.from.len() - n_joins && i > 0;
        if first {
            first = false;
        } else if is_join_rel {
            out.push_str(" JOIN ");
        } else {
            out.push_str(", ");
        }
        out.push_str(&tr.name);
        if tr.alias != tr.name {
            let _ = write!(out, " {}", tr.alias);
        }
        if is_join_rel {
            if let Some(cond) = join_iter.next() {
                let _ = write!(out, " ON {}", expr_to_sql(cond));
            }
        }
    }
    if let Some(w) = &s.where_clause {
        let _ = write!(out, " WHERE {}", expr_to_sql(w));
    }
    if !s.group_by.is_empty() {
        let keys: Vec<String> = s.group_by.iter().map(expr_to_sql).collect();
        let _ = write!(out, " GROUP BY {}", keys.join(", "));
    }
    out
}

fn func_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "COUNT",
        AggFunc::Sum => "SUM",
        AggFunc::Avg => "AVG",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn roundtrip(sql: &str) {
        let ast1 = parse_select(sql).unwrap();
        let printed = stmt_to_sql(&ast1);
        let ast2 =
            parse_select(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        let printed2 = stmt_to_sql(&ast2);
        assert_eq!(
            printed, printed2,
            "print→parse→print not a fixpoint for {sql}"
        );
    }

    #[test]
    fn roundtrips_paper_queries() {
        for sql in [
            "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1",
            "SELECT COUNT(*) FROM enron WHERE predict(*) = 1 AND text LIKE '%http%'",
            "SELECT * FROM mnist l, mnist r WHERE predict(l) = predict(r)",
            "SELECT COUNT(*) FROM l, r WHERE predict(l) = predict(r)",
            "SELECT COUNT(*) FROM mnist WHERE predict(*) = 1",
            "SELECT AVG(predict(*)) FROM adult GROUP BY gender",
            "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id \
             WHERE l.active AND predict(u) = 1",
            "SELECT price * 2 AS dbl, name FROM items WHERE price >= 1.5 OR NOT sold",
            "SELECT COUNT(*) FROM r GROUP BY predict(*)",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn string_escaping_roundtrips() {
        roundtrip("SELECT COUNT(*) FROM t WHERE name = 'it''s' AND name NOT LIKE '%x%'");
    }

    #[test]
    fn engine_names() {
        assert_eq!(engine_name(Engine::Vectorized), "vectorized");
        assert_eq!(engine_name(Engine::Tuple), "tuple");
        assert_eq!(engine_name(Engine::default()), "vectorized");
    }
}
