//! Typed secondary indexes over registered tables.
//!
//! Two kinds, matched to the two predicate shapes the planner
//! ([`cost`](crate::cost)) can turn into index access paths:
//!
//! * [`IndexKind::Hash`] — equality. Postings are keyed by the same
//!   canonical join-key space hash joins use (numerics
//!   by canonical `f64` bits, so `x = 3` and `x = 3.0` hit the same
//!   list; NULL and NaN rows are never indexed, matching `=`'s
//!   NULL-rejecting semantics). Also backs the index-nested-loop join
//!   strategy in [`vexec`](crate::vexec).
//! * [`IndexKind::Sorted`] — ranges over numeric columns (`<`, `<=`,
//!   `>`, `>=`). Entries are `(value, row)` sorted by value; a range
//!   probe is two binary searches. Creation on a string column is
//!   rejected — string ranges stay on the sequential-scan path.
//!
//! Posting lists (and range probe results) are always in ascending row
//! order, which is exactly scan order — so an index access path emits
//! the same rows in the same order as the full scan it replaces, and
//! the differential suites can demand bit-identical output with
//! indexes on and off.
//!
//! Index *definitions* are durable (a commitlog record and a snapshot
//! field, see `rain-storage`); index *data* is rebuilt from table
//! contents — on recovery, and eagerly by the catalog
//! ([`Database`](crate::Database)) whenever the indexed table mutates.

use crate::eval::{join_key, JoinKey};
use crate::table::{ColType, Table};
use std::collections::HashMap;

/// Which probe shape an index accelerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Equality probes; backs index-nested-loop joins.
    Hash,
    /// Range probes over numeric columns.
    Sorted,
}

impl IndexKind {
    /// Stable wire/log code (`0` hash, `1` sorted).
    pub fn code(self) -> u8 {
        match self {
            IndexKind::Hash => 0,
            IndexKind::Sorted => 1,
        }
    }

    /// Inverse of [`code`](IndexKind::code).
    pub fn from_code(code: u8) -> Option<IndexKind> {
        match code {
            0 => Some(IndexKind::Hash),
            1 => Some(IndexKind::Sorted),
            _ => None,
        }
    }

    /// Lowercase name, as accepted by the serving layer.
    pub fn as_str(self) -> &'static str {
        match self {
            IndexKind::Hash => "hash",
            IndexKind::Sorted => "sorted",
        }
    }

    /// Inverse of [`as_str`](IndexKind::as_str).
    pub fn parse(s: &str) -> Option<IndexKind> {
        match s {
            "hash" => Some(IndexKind::Hash),
            "sorted" => Some(IndexKind::Sorted),
            _ => None,
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A secondary index on one column of one registered table, owned by
/// the catalog entry of that table.
#[derive(Debug, Clone)]
pub struct TableIndex {
    /// Indexed column name (lowercased schema name).
    pub column: String,
    /// Column position in the current schema.
    pub col: usize,
    /// Probe shape.
    pub kind: IndexKind,
    data: IndexData,
}

#[derive(Debug, Clone)]
enum IndexData {
    /// Canonical key → ascending row ids.
    Hash(HashMap<JoinKey, Vec<u32>>),
    /// `(value, row)` sorted by value then row.
    Sorted(Vec<(f64, u32)>),
}

impl TableIndex {
    /// Build an index over `table`'s column `col`. Fails for a sorted
    /// index on a string column.
    pub fn build(
        table: &Table,
        column: &str,
        col: usize,
        kind: IndexKind,
    ) -> Result<TableIndex, String> {
        if kind == IndexKind::Sorted && table.schema().col(col).ty == ColType::Str {
            return Err(format!(
                "sorted index on string column '{column}' is not supported; \
                 string predicates use the sequential scan path"
            ));
        }
        let data = match kind {
            IndexKind::Hash => IndexData::Hash(build_hash(table, col)),
            IndexKind::Sorted => IndexData::Sorted(build_sorted(table, col)),
        };
        Ok(TableIndex {
            column: column.to_string(),
            col,
            kind,
            data,
        })
    }

    /// Number of indexed entries (NULL/NaN rows are absent).
    pub fn len(&self) -> usize {
        match &self.data {
            IndexData::Hash(m) => m.values().map(Vec::len).sum(),
            IndexData::Sorted(v) => v.len(),
        }
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ascending rows whose value equals `key` (hash indexes only).
    pub(crate) fn lookup_eq(&self, key: &JoinKey) -> &[u32] {
        match &self.data {
            IndexData::Hash(m) => m.get(key).map_or(&[], Vec::as_slice),
            IndexData::Sorted(_) => &[],
        }
    }

    /// Rows whose value lies in `[lo, hi]` (bounds optional, each
    /// inclusive or strict), returned in ascending row order. Sorted
    /// indexes only; a hash index returns an empty set.
    pub(crate) fn lookup_range(
        &self,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> Vec<u32> {
        let IndexData::Sorted(entries) = &self.data else {
            return Vec::new();
        };
        let start = match lo {
            None => 0,
            Some((v, inclusive)) => {
                entries.partition_point(|&(x, _)| if inclusive { x < v } else { x <= v })
            }
        };
        let end = match hi {
            None => entries.len(),
            Some((v, inclusive)) => {
                entries.partition_point(|&(x, _)| if inclusive { x <= v } else { x < v })
            }
        };
        let mut rows: Vec<u32> = entries[start..end.max(start)]
            .iter()
            .map(|&(_, row)| row)
            .collect();
        // Back to scan order so index scans emit rows exactly like the
        // sequential scan they replace.
        rows.sort_unstable();
        rows
    }
}

fn build_hash(table: &Table, col: usize) -> HashMap<JoinKey, Vec<u32>> {
    let column = table.column(col);
    let mask = table.null_mask(col);
    let mut map: HashMap<JoinKey, Vec<u32>> = HashMap::new();
    for row in 0..table.n_rows() {
        if mask.is_some_and(|m| m[row]) {
            continue;
        }
        if let Some(key) = join_key(&column.get(row)) {
            // Rows arrive in ascending order, so postings stay sorted.
            map.entry(key).or_default().push(row as u32);
        }
    }
    map
}

fn build_sorted(table: &Table, col: usize) -> Vec<(f64, u32)> {
    let column = table.column(col);
    let mask = table.null_mask(col);
    let mut entries: Vec<(f64, u32)> = Vec::new();
    for row in 0..table.n_rows() {
        if mask.is_some_and(|m| m[row]) {
            continue;
        }
        if let Some(JoinKey::Num(bits)) = join_key(&column.get(row)) {
            entries.push((f64::from_bits(bits), row as u32));
        }
    }
    entries.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Schema};
    use crate::Value;

    fn t() -> Table {
        Table::from_columns(
            Schema::new(&[("x", ColType::Int), ("s", ColType::Str)]),
            vec![
                Column::Int(vec![5, 1, 5, 3, 1]),
                Column::Str(vec![
                    "b".into(),
                    "a".into(),
                    "b".into(),
                    "c".into(),
                    "a".into(),
                ]),
            ],
        )
    }

    #[test]
    fn hash_postings_are_ascending() {
        let idx = TableIndex::build(&t(), "x", 0, IndexKind::Hash).unwrap();
        assert_eq!(idx.lookup_eq(&join_key(&Value::Int(5)).unwrap()), &[0, 2]);
        assert_eq!(idx.lookup_eq(&join_key(&Value::Int(1)).unwrap()), &[1, 4]);
        assert_eq!(
            idx.lookup_eq(&join_key(&Value::Float(5.0)).unwrap()),
            &[0, 2],
            "5 and 5.0 share one canonical key"
        );
        assert!(idx.lookup_eq(&join_key(&Value::Int(9)).unwrap()).is_empty());
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn hash_on_strings_works() {
        let idx = TableIndex::build(&t(), "s", 1, IndexKind::Hash).unwrap();
        assert_eq!(
            idx.lookup_eq(&join_key(&Value::Str("a".into())).unwrap()),
            &[1, 4]
        );
    }

    #[test]
    fn sorted_range_probes() {
        let idx = TableIndex::build(&t(), "x", 0, IndexKind::Sorted).unwrap();
        // x < 5
        assert_eq!(idx.lookup_range(None, Some((5.0, false))), vec![1, 3, 4]);
        // x <= 5
        assert_eq!(
            idx.lookup_range(None, Some((5.0, true))),
            vec![0, 1, 2, 3, 4]
        );
        // x > 3
        assert_eq!(idx.lookup_range(Some((3.0, false)), None), vec![0, 2]);
        // x >= 3
        assert_eq!(idx.lookup_range(Some((3.0, true)), None), vec![0, 2, 3]);
        // empty band
        assert!(idx.lookup_range(Some((9.0, true)), None).is_empty());
    }

    #[test]
    fn sorted_on_string_is_rejected() {
        assert!(TableIndex::build(&t(), "s", 1, IndexKind::Sorted).is_err());
    }

    #[test]
    fn nulls_and_nans_are_not_indexed() {
        let mut table = Table::empty(Schema::new(&[("f", ColType::Float)]));
        table.push_row(vec![Value::Float(1.0)], None);
        table.push_row(vec![Value::Null], None);
        table.push_row(vec![Value::Float(f64::NAN)], None);
        table.push_row(vec![Value::Float(1.0)], None);
        let hash = TableIndex::build(&table, "f", 0, IndexKind::Hash).unwrap();
        assert_eq!(hash.len(), 2);
        let sorted = TableIndex::build(&table, "f", 0, IndexKind::Sorted).unwrap();
        assert_eq!(sorted.lookup_range(None, None), vec![0, 3]);
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [IndexKind::Hash, IndexKind::Sorted] {
            assert_eq!(IndexKind::from_code(kind.code()), Some(kind));
            assert_eq!(IndexKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(IndexKind::from_code(7), None);
        assert_eq!(IndexKind::parse("btree"), None);
    }
}
