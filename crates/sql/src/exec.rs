//! SPJA execution with optional provenance capture ("debug mode", §5.1).
//!
//! The executor is tuple-at-a-time over materialized row sets, driven by a
//! physical [`QueryPlan`] (the binder/optimizer's output). Each relation is
//! scanned through its pushed-down filters first, joins are scheduled
//! left-to-right, residual conjuncts are applied as soon as all the
//! relations they mention are in scope, and concrete equi-join conjuncts
//! drive hash joins over the filtered scans.
//!
//! The two execution modes share one code path:
//!
//! - **Normal mode** evaluates model predicates with the classifier's hard
//!   (argmax) predictions and keeps no lineage.
//! - **Debug mode** keeps, for every tuple, a [`BoolProv`] membership
//!   formula over prediction variables. Concretely-false *model-independent*
//!   predicates still prune (their truth can never change by retraining),
//!   but tuples failing only *model* predicates survive symbolically — they
//!   are exactly the tuples a complaint fix may need to flip into (or out
//!   of) the result.
//!
//! Aggregate cells are emitted as [`CellProv`] sums/ratios over the
//! candidate tuples, which downstream crates relax (Holistic) or linearize
//! into an ILP (TwoStep).

use crate::ast::{AggFunc, ArithOp, CmpOp, SelectStmt};
use crate::binder::{bind, BExpr, BoundAgg, BoundAggArg, GroupKey, QueryKind};
use crate::catalog::Database;
use crate::optimize::optimize;
use crate::plan::QueryPlan;
use crate::predvar::PredVarRegistry;
use crate::prov::{AggSum, AggTerm, BoolProv, CellProv, VarId};
use crate::table::{ColType, Schema, Table};
use crate::value::{like_match, Value};
use crate::QueryError;
use rain_model::Classifier;
use std::collections::{BTreeSet, HashMap};

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Capture provenance (the paper's "debug mode" re-execution).
    pub debug: bool,
}

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Concrete result table (identical across modes).
    pub table: Table,
    /// Membership formula per output row (debug mode, non-aggregate
    /// queries; empty otherwise).
    pub row_prov: Vec<BoolProv>,
    /// Provenance per output row and aggregate column (debug mode,
    /// aggregate queries; empty otherwise). Indexed `[row][agg]`.
    pub agg_cells: Vec<Vec<CellProv>>,
    /// For aggregate outputs: number of leading group-key columns before
    /// the aggregate columns.
    pub n_key_cols: usize,
    /// Prediction variables created during execution.
    pub predvars: PredVarRegistry,
}

impl QueryOutput {
    /// Convenience: the single scalar of a one-row one-aggregate query.
    pub fn scalar(&self) -> Option<Value> {
        if self.table.n_rows() == 1 && self.table.schema().len() == self.n_key_cols + 1 {
            Some(self.table.value(0, self.n_key_cols))
        } else {
            None
        }
    }
}

/// Parse, bind, and execute a SQL string.
pub fn run_query(
    db: &Database,
    model: &dyn Classifier,
    sql: &str,
    opts: ExecOptions,
) -> Result<QueryOutput, QueryError> {
    let stmt = crate::parser::parse_select(sql).map_err(QueryError::Parse)?;
    run_stmt(db, model, &stmt, opts)
}

/// Bind, optimize, and execute a parsed statement
/// (`binder → optimizer → executor`).
pub fn run_stmt(
    db: &Database,
    model: &dyn Classifier,
    stmt: &SelectStmt,
    opts: ExecOptions,
) -> Result<QueryOutput, QueryError> {
    let bound = bind(stmt, db).map_err(QueryError::Bind)?;
    let plan = optimize(bound, db);
    execute(db, model, &plan, opts)
}

/// Execute a physical plan. The plan must have been bound against `db`
/// (table ids are resolved through it).
pub fn execute(
    db: &Database,
    model: &dyn Classifier,
    query: &QueryPlan,
    opts: ExecOptions,
) -> Result<QueryOutput, QueryError> {
    debug_assert!(
        query
            .rels
            .iter()
            .all(|r| db.resolve(&r.table) == Some(r.id)),
        "plan was bound against a different database"
    );
    let mut exec = Exec {
        db,
        model,
        query,
        debug: opts.debug,
        reg: PredVarRegistry::new(),
    };
    exec.run()
}

/// A (possibly partial) joined tuple: one row index per bound relation.
#[derive(Debug, Clone)]
struct Tup {
    rows: Vec<u32>,
    prov: BoolProv,
}

/// Hashable group-key value (floats keyed by total-order bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum KeyVal {
    Null,
    Bool(bool),
    Int(i64),
    F64(u64),
    Str(String),
}

fn keyval(v: &Value) -> KeyVal {
    match v {
        Value::Null => KeyVal::Null,
        Value::Bool(b) => KeyVal::Bool(*b),
        Value::Int(i) => KeyVal::Int(*i),
        Value::Float(f) => {
            // Total-order bit trick so Ord matches numeric order.
            let bits = f.to_bits() as i64;
            KeyVal::F64((bits ^ (((bits >> 63) as u64) >> 1) as i64) as u64 ^ (1u64 << 63))
        }
        Value::Str(s) => KeyVal::Str(s.clone()),
    }
}

fn keyval_to_value(k: &KeyVal) -> Value {
    match k {
        KeyVal::Null => Value::Null,
        KeyVal::Bool(b) => Value::Bool(*b),
        KeyVal::Int(i) => Value::Int(*i),
        KeyVal::F64(bits) => {
            let b = bits ^ (1u64 << 63);
            let b = b as i64;
            Value::Float(f64::from_bits(
                (b ^ ((((b >> 63) as u64) >> 1) as i64)) as u64,
            ))
        }
        KeyVal::Str(s) => Value::Str(s.clone()),
    }
}

/// Accumulator for one output group.
#[derive(Debug, Default)]
struct GroupAcc {
    /// Concrete members (tuples that concretely belong to this group).
    members: usize,
    /// Concrete per-aggregate accumulators: (sum, non-null count).
    concrete: Vec<(f64, usize)>,
    /// Provenance per aggregate: numerator terms (and denominator terms
    /// for AVG).
    num: Vec<AggSum>,
    den: Vec<AggSum>,
}

struct Exec<'a> {
    db: &'a Database,
    model: &'a dyn Classifier,
    query: &'a QueryPlan,
    debug: bool,
    reg: PredVarRegistry,
}

impl<'a> Exec<'a> {
    fn table_of(&self, rel: usize) -> &Table {
        self.db.table_by_id(self.query.rels[rel].id)
    }

    fn var_of(&mut self, rel: usize, row: u32) -> VarId {
        let table_name = &self.query.rels[rel].table;
        let table = self.db.table_by_id(self.query.rels[rel].id);
        let model = self.model;
        let feats = table
            .feature_row(row as usize)
            .expect("features checked at bind time");
        self.reg
            .var_for(table_name, row as usize, || model.predict(feats))
    }

    /// Base-row ids of `rel` surviving its pushed-down scan filters.
    /// Scan filters are model-free by construction (the optimizer never
    /// pushes a `predict()` atom), so they evaluate concretely and prune
    /// identically in normal and debug mode — provenance is unaffected.
    fn scan(&mut self, rel: usize) -> Result<Vec<u32>, QueryError> {
        let n = self.table_of(rel).n_rows();
        if self.query.scan_filters[rel].is_empty() {
            return Ok((0..n as u32).collect());
        }
        // `self.query` is a shared reference with its own lifetime, so
        // reading expressions through a hoisted copy of it does not hold
        // a borrow of `self` — no per-row clones needed.
        let query = self.query;
        let mut rows_buf = vec![0u32; rel + 1];
        let mut out = Vec::with_capacity(n);
        'row: for r in 0..n {
            rows_buf[rel] = r as u32;
            for f in &query.scan_filters[rel] {
                match self.eval_pred(f, &rows_buf)? {
                    Sym::Const(false) => continue 'row,
                    Sym::Const(true) => {}
                    // Unreachable for optimizer-built plans; evaluate
                    // discretely as a defensive fallback (identical in
                    // both modes for a concrete model).
                    Sym::Prov(p) => {
                        if !p.eval_discrete(self.reg.preds()) {
                            continue 'row;
                        }
                    }
                }
            }
            out.push(r as u32);
        }
        Ok(out)
    }

    fn run(&mut self) -> Result<QueryOutput, QueryError> {
        let tuples = self.join_pipeline()?;
        match &self.query.kind {
            QueryKind::Select { items } => self.project(tuples, items),
            QueryKind::Aggregate { keys, aggs } => self.aggregate(tuples, keys, aggs),
        }
    }

    /// Build the joined candidate-tuple set with pushdown.
    fn join_pipeline(&mut self) -> Result<Vec<Tup>, QueryError> {
        let n_rels = self.query.rels.len();
        let n_conj = self.query.conjuncts.len();
        let mut applied = vec![false; n_conj];
        // Conjunct relation footprints.
        let footprints: Vec<BTreeSet<usize>> = self
            .query
            .conjuncts
            .iter()
            .map(|c| {
                let mut s = BTreeSet::new();
                c.rels_used(&mut s);
                s
            })
            .collect();

        // Seed with relation 0's scan (pushed-down filters applied).
        let mut tuples: Vec<Tup> = self
            .scan(0)?
            .into_iter()
            .map(|r| Tup {
                rows: vec![r],
                prov: BoolProv::Const(true),
            })
            .collect();
        tuples = self.apply_conjuncts(tuples, &mut applied, &footprints, 1)?;

        for rel in 1..n_rels {
            // Equi-join keys available for hash joining into `rel`.
            let equi: Vec<(BExpr, BExpr, usize)> = (0..n_conj)
                .filter(|&ci| !applied[ci] && footprints[ci].iter().all(|&r| r <= rel))
                .filter_map(|ci| match &self.query.conjuncts[ci] {
                    BExpr::Cmp {
                        op: CmpOp::Eq,
                        left,
                        right,
                    } => {
                        let lset = {
                            let mut s = BTreeSet::new();
                            left.rels_used(&mut s);
                            s
                        };
                        let rset = {
                            let mut s = BTreeSet::new();
                            right.rels_used(&mut s);
                            s
                        };
                        if left.contains_predict() || right.contains_predict() {
                            return None;
                        }
                        // One side must be exactly {rel}, the other ⊆ {0..rel-1}.
                        if lset == BTreeSet::from([rel]) && rset.iter().all(|&r| r < rel) {
                            Some(((**right).clone(), (**left).clone(), ci))
                        } else if rset == BTreeSet::from([rel]) && lset.iter().all(|&r| r < rel) {
                            Some(((**left).clone(), (**right).clone(), ci))
                        } else {
                            None
                        }
                    }
                    _ => None,
                })
                .collect();

            // Scan the new relation once: pushed-down filters prune its
            // base rows before any join work (hash build or cross loop).
            let right_rows = self.scan(rel)?;
            let mut joined = Vec::new();
            if equi.is_empty() {
                // Nested-loop cross join; remaining conjuncts filter below.
                joined.reserve(tuples.len().saturating_mul(right_rows.len().max(1)));
                for t in &tuples {
                    for &r in &right_rows {
                        let mut rows = t.rows.clone();
                        rows.push(r);
                        joined.push(Tup {
                            rows,
                            prov: t.prov.clone(),
                        });
                    }
                }
            } else {
                for (_, _, ci) in &equi {
                    applied[*ci] = true;
                }
                // Hash the new relation on its key expressions.
                let mut index: HashMap<Vec<KeyVal>, Vec<u32>> = HashMap::new();
                let mut probe_rows = vec![0u32; rel + 1];
                for &r in &right_rows {
                    // Position `rel` must be addressable; pad with a
                    // sentinel row vector of the right length.
                    probe_rows[rel] = r;
                    let key: Result<Vec<KeyVal>, QueryError> = equi
                        .iter()
                        .map(|(_, re, _)| Ok(keyval(&self.eval_value(re, &probe_rows)?)))
                        .collect();
                    index.entry(key?).or_default().push(r);
                }
                for t in &tuples {
                    let key: Result<Vec<KeyVal>, QueryError> = equi
                        .iter()
                        .map(|(le, _, _)| Ok(keyval(&self.eval_value(le, &t.rows)?)))
                        .collect();
                    if let Some(rows) = index.get(&key?) {
                        for &r in rows {
                            let mut new_rows = t.rows.clone();
                            new_rows.push(r);
                            joined.push(Tup {
                                rows: new_rows,
                                prov: t.prov.clone(),
                            });
                        }
                    }
                }
            }
            tuples = self.apply_conjuncts(joined, &mut applied, &footprints, rel + 1)?;
        }
        Ok(tuples)
    }

    /// Apply every not-yet-applied conjunct whose footprint fits in the
    /// first `in_scope` relations.
    fn apply_conjuncts(
        &mut self,
        tuples: Vec<Tup>,
        applied: &mut [bool],
        footprints: &[BTreeSet<usize>],
        in_scope: usize,
    ) -> Result<Vec<Tup>, QueryError> {
        let todo: Vec<usize> = (0..applied.len())
            .filter(|&ci| !applied[ci] && footprints[ci].iter().all(|&r| r < in_scope))
            .collect();
        if todo.is_empty() {
            return Ok(tuples);
        }
        for &ci in &todo {
            applied[ci] = true;
        }
        let query = self.query;
        let mut out = Vec::with_capacity(tuples.len());
        'tuple: for mut t in tuples {
            for &ci in &todo {
                match self.eval_pred(&query.conjuncts[ci], &t.rows)? {
                    Sym::Const(false) => continue 'tuple,
                    Sym::Const(true) => {}
                    Sym::Prov(f) => {
                        if self.debug {
                            t.prov = BoolProv::and(vec![t.prov, f]);
                        } else if !f.eval_discrete(self.reg.preds()) {
                            continue 'tuple;
                        }
                    }
                }
            }
            out.push(t);
        }
        Ok(out)
    }

    /// Evaluate a predicate over a tuple into either a constant or a
    /// provenance formula (constants fold; model atoms stay symbolic).
    fn eval_pred(&mut self, e: &BExpr, rows: &[u32]) -> Result<Sym, QueryError> {
        Ok(match e {
            BExpr::Not(inner) => match self.eval_pred(inner, rows)? {
                Sym::Const(b) => Sym::Const(!b),
                Sym::Prov(f) => Sym::Prov(f.negate()),
            },
            BExpr::And(terms) => {
                let mut provs = Vec::new();
                for t in terms {
                    match self.eval_pred(t, rows)? {
                        Sym::Const(false) => return Ok(Sym::Const(false)),
                        Sym::Const(true) => {}
                        Sym::Prov(f) => provs.push(f),
                    }
                }
                if provs.is_empty() {
                    Sym::Const(true)
                } else {
                    Sym::Prov(BoolProv::and(provs))
                }
            }
            BExpr::Or(terms) => {
                let mut provs = Vec::new();
                for t in terms {
                    match self.eval_pred(t, rows)? {
                        Sym::Const(true) => return Ok(Sym::Const(true)),
                        Sym::Const(false) => {}
                        Sym::Prov(f) => provs.push(f),
                    }
                }
                if provs.is_empty() {
                    Sym::Const(false)
                } else {
                    Sym::Prov(BoolProv::or(provs))
                }
            }
            BExpr::Cmp { op, left, right } => {
                let lp = matches!(**left, BExpr::Predict { .. });
                let rp = matches!(**right, BExpr::Predict { .. });
                match (lp, rp) {
                    (true, true) => {
                        let (BExpr::Predict { rel: lr }, BExpr::Predict { rel: rr }) =
                            (&**left, &**right)
                        else {
                            unreachable!()
                        };
                        let lv = self.var_of(*lr, rows[*lr]);
                        let rv = self.var_of(*rr, rows[*rr]);
                        let eq = if lv == rv {
                            BoolProv::Const(true)
                        } else {
                            BoolProv::PredEq {
                                left: lv,
                                right: rv,
                            }
                        };
                        match op {
                            CmpOp::Eq => Sym::from(eq),
                            CmpOp::Ne => Sym::from(eq.negate()),
                            _ => {
                                return Err(QueryError::Exec(
                                    "only =/!= between two predict() calls".into(),
                                ))
                            }
                        }
                    }
                    (true, false) | (false, true) => {
                        let (rel, other, op) = if lp {
                            let BExpr::Predict { rel } = &**left else {
                                unreachable!()
                            };
                            (*rel, right, *op)
                        } else {
                            let BExpr::Predict { rel } = &**right else {
                                unreachable!()
                            };
                            // Flip the operator: `c op predict` ⇔ `predict op' c`.
                            let flipped = match op {
                                CmpOp::Lt => CmpOp::Gt,
                                CmpOp::Le => CmpOp::Ge,
                                CmpOp::Gt => CmpOp::Lt,
                                CmpOp::Ge => CmpOp::Le,
                                other => *other,
                            };
                            (*rel, left, flipped)
                        };
                        let val = self.eval_value(other, rows)?;
                        let class = val.as_i64().ok_or_else(|| {
                            QueryError::Exec(format!("predict() compared to non-integer {val}"))
                        })?;
                        let var = self.var_of(rel, rows[rel]);
                        let n_classes = self.model.n_classes() as i64;
                        let classes: Vec<usize> = (0..n_classes)
                            .filter(|&c| op.eval(c.cmp(&class)))
                            .map(|c| c as usize)
                            .collect();
                        Sym::from(BoolProv::or(
                            classes
                                .into_iter()
                                .map(|class| BoolProv::PredIs { var, class })
                                .collect(),
                        ))
                    }
                    (false, false) => {
                        let l = self.eval_value(left, rows)?;
                        let r = self.eval_value(right, rows)?;
                        Sym::Const(l.compare(&r).is_some_and(|ord| op.eval(ord)))
                    }
                }
            }
            BExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval_value(expr, rows)?;
                let matched = match v {
                    Value::Str(s) => like_match(&s, pattern),
                    Value::Null => false,
                    other => return Err(QueryError::Exec(format!("LIKE on non-string {other}"))),
                };
                Sym::Const(matched != *negated)
            }
            BExpr::Predict { .. } => {
                return Err(QueryError::Exec("bare predict() as a predicate".into()))
            }
            other => Sym::Const(self.eval_value(other, rows)?.is_truthy()),
        })
    }

    /// Concrete scalar evaluation (predictions evaluate to the hard class).
    fn eval_value(&mut self, e: &BExpr, rows: &[u32]) -> Result<Value, QueryError> {
        Ok(match e {
            BExpr::Lit(v) => v.clone(),
            BExpr::Col { rel, col } => self.table_of(*rel).value(rows[*rel] as usize, *col),
            BExpr::Predict { rel } => {
                let var = self.var_of(*rel, rows[*rel]);
                Value::Int(self.reg.preds()[var as usize] as i64)
            }
            BExpr::Arith { op, left, right } => {
                let l = self.eval_value(left, rows)?;
                let r = self.eval_value(right, rows)?;
                match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => {
                        let both_int = matches!(
                            (&l, &r),
                            (
                                Value::Int(_) | Value::Bool(_),
                                Value::Int(_) | Value::Bool(_)
                            )
                        );
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Ok(Value::Null);
                                }
                                a / b
                            }
                        };
                        if both_int && *op != ArithOp::Div {
                            Value::Int(out as i64)
                        } else {
                            Value::Float(out)
                        }
                    }
                    _ => Value::Null,
                }
            }
            // Boolean-valued expressions in scalar position.
            other => {
                let sym = self.eval_pred(other, rows)?;
                match sym {
                    Sym::Const(b) => Value::Bool(b),
                    Sym::Prov(f) => Value::Bool(f.eval_discrete(self.reg.preds())),
                }
            }
        })
    }

    /// Output column type of an expression — delegates to the binder's
    /// [`infer_type`](crate::binder::infer_type) so naive and optimized
    /// plans (where constant folding may turn `true + 2` into `3`) always
    /// agree on the schema. Statically unknown (NULL-only) expressions
    /// type as Float, the type NULL-producing arithmetic would have had.
    fn infer_type(&self, e: &BExpr) -> ColType {
        crate::binder::infer_type(e, &|rel, col| self.table_of(rel).schema().col(col).ty)
            .unwrap_or(ColType::Float)
    }

    fn project(
        &mut self,
        tuples: Vec<Tup>,
        items: &[(BExpr, String)],
    ) -> Result<QueryOutput, QueryError> {
        let mut schema = Schema::default();
        for (e, name) in items {
            push_unique(&mut schema, name, self.infer_type(e));
        }
        let mut table = Table::empty(schema);
        let mut row_prov = Vec::new();
        for t in tuples {
            // Emit only concretely-true rows; keep their formulas.
            if !t.prov.eval_discrete(self.reg.preds()) {
                continue;
            }
            let mut row = Vec::with_capacity(items.len());
            for (e, name) in items {
                let v = self.eval_value(e, &t.rows)?;
                if v == Value::Null {
                    // Columns carry no null representation yet; surface a
                    // typed error instead of panicking the schema builder.
                    return Err(QueryError::Exec(format!(
                        "NULL in select output column {name} is unsupported; \
                         filter NULLs out"
                    )));
                }
                row.push(v);
            }
            table.push_row(row, None);
            if self.debug {
                row_prov.push(t.prov);
            }
        }
        Ok(QueryOutput {
            table,
            row_prov,
            agg_cells: Vec::new(),
            n_key_cols: 0,
            predvars: std::mem::take(&mut self.reg),
        })
    }

    fn aggregate(
        &mut self,
        tuples: Vec<Tup>,
        keys: &[GroupKey],
        aggs: &[BoundAgg],
    ) -> Result<QueryOutput, QueryError> {
        let mut groups: HashMap<Vec<KeyVal>, GroupAcc> = HashMap::new();
        let n_aggs = aggs.len();
        let new_acc = || GroupAcc {
            members: 0,
            concrete: vec![(0.0, 0); n_aggs],
            num: vec![AggSum::default(); n_aggs],
            den: vec![AggSum::default(); n_aggs],
        };
        // A global aggregate always has its single group, even when empty.
        if keys.is_empty() {
            groups.insert(Vec::new(), new_acc());
        }

        for t in tuples {
            // Resolve key parts. Predict keys fan the tuple out per class
            // (symbolically); concretely it belongs to one class group.
            let mut col_parts: Vec<Option<KeyVal>> = Vec::with_capacity(keys.len());
            let mut pred_keys: Vec<(usize, VarId)> = Vec::new(); // (key position, var)
            for (pos, k) in keys.iter().enumerate() {
                match k {
                    GroupKey::Col { rel, col, .. } => {
                        let v = self.table_of(*rel).value(t.rows[*rel] as usize, *col);
                        col_parts.push(Some(keyval(&v)));
                    }
                    GroupKey::Predict { rel } => {
                        let var = self.var_of(*rel, t.rows[*rel]);
                        pred_keys.push((pos, var));
                        col_parts.push(None);
                    }
                }
            }
            let concrete_member = t.prov.eval_discrete(self.reg.preds());

            // Enumerate class assignments for predict keys (cartesian; in
            // practice there is at most one predict key).
            let n_classes = self.model.n_classes();
            let combos: Vec<Vec<usize>> = if pred_keys.is_empty() {
                vec![Vec::new()]
            } else if self.debug {
                cartesian(n_classes, pred_keys.len())
            } else {
                // Normal mode: only the concrete class combination.
                vec![pred_keys
                    .iter()
                    .map(|(_, v)| self.reg.preds()[*v as usize])
                    .collect()]
            };

            for combo in combos {
                let mut key = Vec::with_capacity(keys.len());
                let mut membership = t.prov.clone();
                let mut concrete_combo = concrete_member;
                for (pos, part) in col_parts.iter().enumerate() {
                    match part {
                        Some(kv) => key.push(kv.clone()),
                        None => {
                            let (idx, var) = pred_keys
                                .iter()
                                .enumerate()
                                .find_map(|(i, (p, v))| (*p == pos).then_some((i, *v)))
                                .expect("predict key present");
                            let class = combo[idx];
                            key.push(KeyVal::Int(class as i64));
                            if self.debug {
                                membership = BoolProv::and(vec![
                                    membership,
                                    BoolProv::PredIs { var, class },
                                ]);
                            }
                            concrete_combo &= self.reg.preds()[var as usize] == class;
                        }
                    }
                }

                let acc = groups.entry(key).or_insert_with(new_acc);
                if concrete_combo {
                    acc.members += 1;
                }
                for (ai, agg) in aggs.iter().enumerate() {
                    // Term contributed by this tuple to aggregate `ai`.
                    let term: Option<(AggTerm, f64)> = match &agg.arg {
                        BoundAggArg::CountStar => Some((AggTerm::One, 1.0)),
                        BoundAggArg::Predict { rel } => {
                            let var = self.var_of(*rel, t.rows[*rel]);
                            let concrete_val = self.reg.preds()[var as usize] as f64;
                            Some((AggTerm::PredValue(var), concrete_val))
                        }
                        BoundAggArg::ScaledPredict { rel, factor } => {
                            let var = self.var_of(*rel, t.rows[*rel]);
                            let w =
                                self.eval_value(factor, &t.rows)?.as_f64().ok_or_else(|| {
                                    QueryError::Exec("non-numeric factor in scaled predict".into())
                                })?;
                            let concrete_val = w * self.reg.preds()[var as usize] as f64;
                            Some((AggTerm::ScaledPred { var, weight: w }, concrete_val))
                        }
                        BoundAggArg::Scalar(e) => {
                            let v = self.eval_value(e, &t.rows)?;
                            v.as_f64().map(|f| (AggTerm::Const(f), f))
                        }
                    };
                    let Some((term, concrete_val)) = term else {
                        continue; // NULL: skipped by SUM/AVG, as in SQL.
                    };
                    if concrete_combo {
                        acc.concrete[ai].0 += concrete_val;
                        acc.concrete[ai].1 += 1;
                    }
                    if self.debug {
                        acc.num[ai].terms.push((membership.clone(), term));
                        if agg.func == AggFunc::Avg {
                            acc.den[ai].terms.push((membership.clone(), AggTerm::One));
                        }
                    }
                }
            }
        }

        // Deterministic output order.
        let mut keys_sorted: Vec<Vec<KeyVal>> = groups.keys().cloned().collect();
        keys_sorted.sort();

        // Output schema: group keys then aggregates.
        let mut schema = Schema::default();
        for k in keys {
            match k {
                GroupKey::Col { rel, col, name } => {
                    let ty = self.table_of(*rel).schema().col(*col).ty;
                    push_unique(&mut schema, name, ty);
                }
                GroupKey::Predict { .. } => push_unique(&mut schema, "predict", ColType::Int),
            }
        }
        for agg in aggs {
            let ty = if agg.func == AggFunc::Count {
                ColType::Int
            } else {
                ColType::Float
            };
            push_unique(&mut schema, &agg.name, ty);
        }
        let mut table = Table::empty(schema);
        let mut agg_cells = Vec::new();

        for key in keys_sorted {
            let acc = groups.remove(&key).expect("group exists");
            // Groups with no concrete member are not part of the concrete
            // result (matching normal execution); the exception is the
            // global group of an ungrouped aggregate.
            if acc.members == 0 && !keys.is_empty() {
                continue;
            }
            let mut row: Vec<Value> = key.iter().map(keyval_to_value).collect();
            for (ai, agg) in aggs.iter().enumerate() {
                let (sum, cnt) = acc.concrete[ai];
                row.push(match agg.func {
                    AggFunc::Count => Value::Int(cnt as i64),
                    AggFunc::Sum => Value::Float(sum),
                    AggFunc::Avg => Value::Float(if cnt == 0 { 0.0 } else { sum / cnt as f64 }),
                });
            }
            table.push_row(row, None);
            if self.debug {
                let mut cells = Vec::with_capacity(aggs.len());
                for (ai, agg) in aggs.iter().enumerate() {
                    let num = acc.num[ai].clone();
                    cells.push(match agg.func {
                        AggFunc::Avg => CellProv::Ratio(num, acc.den[ai].clone()),
                        _ => CellProv::Sum(num),
                    });
                }
                agg_cells.push(cells);
            }
        }

        Ok(QueryOutput {
            table,
            row_prov: Vec::new(),
            agg_cells,
            n_key_cols: keys.len(),
            predvars: std::mem::take(&mut self.reg),
        })
    }
}

/// Append an output column, uniquifying duplicate names (`x`, `x_2`, …)
/// so user-written select lists like `SELECT x, x` or `SELECT *, *`
/// cannot panic the schema builder.
fn push_unique(schema: &mut Schema, name: &str, ty: ColType) {
    if schema.index_of(name).is_none() {
        schema.push(name, ty);
        return;
    }
    let mut i = 2;
    loop {
        let cand = format!("{name}_{i}");
        if schema.index_of(&cand).is_none() {
            schema.push(&cand, ty);
            return;
        }
        i += 1;
    }
}

/// Symbolic-or-constant predicate value.
enum Sym {
    Const(bool),
    Prov(BoolProv),
}

impl From<BoolProv> for Sym {
    fn from(f: BoolProv) -> Self {
        match f {
            BoolProv::Const(b) => Sym::Const(b),
            other => Sym::Prov(other),
        }
    }
}

/// All `len`-tuples over `0..n` (cartesian power).
fn cartesian(n: usize, len: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::with_capacity(out.len() * n);
        for prefix in &out {
            for c in 0..n {
                let mut v = prefix.clone();
                v.push(c);
                next.push(v);
            }
        }
        out = next;
    }
    out
}
