//! SPJA execution with optional provenance capture ("debug mode", §5.1).
//!
//! Two engines sit behind [`execute`], selected by [`ExecOptions::engine`]:
//!
//! - [`Engine::Vectorized`] (the default) — the columnar batch engine in
//!   [`vexec`](crate::vexec): selection-vector scans with predicate
//!   kernels, hash joins over typed key columns, struct-of-arrays joined
//!   tuples.
//! - [`Engine::Tuple`] — the original tuple-at-a-time engine below, kept
//!   as the semantic oracle for differential testing.
//!
//! Both engines share one evaluation core (the crate-private `eval`
//! module), so results *and* provenance polynomials are bit-identical: same rows,
//! same prediction-variable ids, same formulas. The randomized
//! differential suite (`tests/vexec_differential.rs`) enforces this.
//!
//! The two execution modes share one code path:
//!
//! - **Normal mode** evaluates model predicates with the classifier's hard
//!   (argmax) predictions and keeps no lineage.
//! - **Debug mode** keeps, for every tuple, a [`BoolProv`] membership
//!   formula over prediction variables. Concretely-false *model-independent*
//!   predicates still prune (their truth can never change by retraining),
//!   but tuples failing only *model* predicates survive symbolically — they
//!   are exactly the tuples a complaint fix may need to flip into (or out
//!   of) the result.
//!
//! Aggregate cells are emitted as [`CellProv`] sums/ratios over the
//! candidate tuples, which downstream crates relax (Holistic) or linearize
//! into an ILP (TwoStep).

use crate::ast::SelectStmt;
use crate::binder::bind;
use crate::catalog::Database;
use crate::eval::{self, EvalCtx, Sym, Tup};
use crate::optimize::optimize;
use crate::plan::QueryPlan;
use crate::predvar::PredVarRegistry;
use crate::prov::{BoolProv, CellProv};
use crate::table::Table;
use crate::value::Value;
use crate::QueryError;
use rain_model::Classifier;
use std::collections::HashMap;

/// Which execution engine runs the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Columnar batch execution ([`vexec`](crate::vexec)): the default.
    #[default]
    Vectorized,
    /// Tuple-at-a-time execution: the differential-testing oracle.
    Tuple,
}

/// Execution options.
///
/// Built fluently: start from [`ExecOptions::default`] (or the
/// [`ExecOptions::debug`] / [`ExecOptions::with_debug`] constructors) and
/// chain [`with_engine`](ExecOptions::with_engine) /
/// [`with_threads`](ExecOptions::with_threads).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Capture provenance (the paper's "debug mode" re-execution).
    pub debug: bool,
    /// Engine selection (vectorized unless overridden).
    pub engine: Engine,
    /// Worker threads for morsel-parallel execution on the vectorized
    /// engine: `0` (the default) resolves to the machine's available
    /// parallelism, `1` runs fully sequentially (the pre-parallel
    /// behavior). The tuple oracle always runs single-threaded.
    pub threads: usize,
}

impl ExecOptions {
    /// Debug (provenance-capturing) execution on the default engine.
    pub fn debug() -> Self {
        ExecOptions {
            debug: true,
            ..ExecOptions::default()
        }
    }

    /// Options with an explicit debug flag on the default engine.
    pub fn with_debug(debug: bool) -> Self {
        ExecOptions {
            debug,
            ..ExecOptions::default()
        }
    }

    /// The same options pinned to a specific engine.
    pub fn with_engine(self, engine: Engine) -> Self {
        ExecOptions { engine, ..self }
    }

    /// The same options with a worker-thread budget (`0` = auto, `1` =
    /// sequential).
    pub fn with_threads(self, threads: usize) -> Self {
        ExecOptions { threads, ..self }
    }

    /// Alias for [`ExecOptions::with_engine`] (the original builder name,
    /// kept for existing call sites).
    pub fn on(self, engine: Engine) -> Self {
        self.with_engine(engine)
    }

    /// The concrete worker count this option resolves to: `0` becomes
    /// [`std::thread::available_parallelism`] (1 if unknown).
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// Hard ceiling on explicit worker-thread requests. Oversubscribing
/// beyond this never helps (morsel workers are CPU-bound), and an
/// unbounded request could otherwise ask a `std::thread::scope` to
/// spawn one OS thread per morsel — on a server, a remote
/// process-abort. Requests above the ceiling clamp to it.
pub const MAX_EXEC_THREADS: usize = 256;

/// Resolve a thread knob: `0` = the machine's available parallelism
/// (falling back to 1 when unknown); any other value is honored up to
/// [`MAX_EXEC_THREADS`].
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads.min(MAX_EXEC_THREADS)
    }
}

/// The scalar of a one-row, one-aggregate output — typed so callers can
/// tell "no rows" from "a NULL cell" (both used to collapse to `None`).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarResult {
    /// Exactly one row with a non-NULL cell.
    Value(Value),
    /// Exactly one row whose cell is SQL NULL.
    Null,
    /// The right shape (one value column), but zero rows.
    NoRows,
    /// Not a one-row-one-value output shape (multiple rows or columns).
    NonScalar,
}

impl ScalarResult {
    /// The scalar, if the query produced exactly one non-NULL value.
    pub fn value(self) -> Option<Value> {
        match self {
            ScalarResult::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Unwrap the scalar value.
    ///
    /// # Panics
    /// Panics (with the actual shape) when the output was not a single
    /// non-NULL value.
    pub fn unwrap(self) -> Value {
        match self {
            ScalarResult::Value(v) => v,
            other => panic!("expected a scalar value, got {other:?}"),
        }
    }
}

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Concrete result table (identical across modes and engines).
    pub table: Table,
    /// Membership formula per output row (debug mode, non-aggregate
    /// queries; empty otherwise).
    pub row_prov: Vec<BoolProv>,
    /// Provenance per output row and aggregate column (debug mode,
    /// aggregate queries; empty otherwise). Indexed `[row][agg]`.
    pub agg_cells: Vec<Vec<CellProv>>,
    /// For aggregate outputs: number of leading group-key columns before
    /// the aggregate columns.
    pub n_key_cols: usize,
    /// Prediction variables created during execution.
    pub predvars: PredVarRegistry,
}

impl QueryOutput {
    /// The single scalar of a one-row one-aggregate query, distinguishing
    /// a NULL cell from an empty result.
    pub fn scalar(&self) -> ScalarResult {
        if self.table.schema().len() != self.n_key_cols + 1 {
            return ScalarResult::NonScalar;
        }
        match self.table.n_rows() {
            0 => ScalarResult::NoRows,
            1 => match self.table.value(0, self.n_key_cols) {
                Value::Null => ScalarResult::Null,
                v => ScalarResult::Value(v),
            },
            _ => ScalarResult::NonScalar,
        }
    }
}

/// Parse, bind, and execute a SQL string.
pub fn run_query(
    db: &Database,
    model: &dyn Classifier,
    sql: &str,
    opts: ExecOptions,
) -> Result<QueryOutput, QueryError> {
    let stmt = {
        let _s = rain_obs::Span::enter("parse");
        crate::parser::parse_select(sql).map_err(QueryError::Parse)?
    };
    run_stmt(db, model, &stmt, opts)
}

/// Bind, optimize, and execute a parsed statement
/// (`binder → optimizer → executor`).
pub fn run_stmt(
    db: &Database,
    model: &dyn Classifier,
    stmt: &SelectStmt,
    opts: ExecOptions,
) -> Result<QueryOutput, QueryError> {
    let bound = {
        let _s = rain_obs::Span::enter("bind");
        bind(stmt, db).map_err(QueryError::Bind)?
    };
    let plan = {
        let _s = rain_obs::Span::enter("optimize");
        optimize(bound, db)
    };
    execute(db, model, &plan, opts)
}

/// Execute a physical plan on the engine selected by `opts`. The plan
/// must have been bound against `db` (table ids are resolved through it).
pub fn execute(
    db: &Database,
    model: &dyn Classifier,
    query: &QueryPlan,
    opts: ExecOptions,
) -> Result<QueryOutput, QueryError> {
    debug_assert!(
        query
            .rels
            .iter()
            .all(|r| db.resolve(&r.table) == Some(r.id)),
        "plan was bound against a different database"
    );
    match opts.engine {
        Engine::Vectorized => crate::vexec::run(db, model, query, &opts),
        Engine::Tuple => {
            // The oracle stays single-threaded regardless of `threads`.
            let mut ctx = EvalCtx::new(db, model, query, opts.debug);
            let tuples = tuple_pipeline(&mut ctx, None)?;
            let _s = rain_obs::Span::enter("finalize");
            eval::finalize(&mut ctx, tuples, &query.kind)
        }
    }
}

/// Build the tuple engine's joined candidate set (scan → hash-join →
/// residual filters), optionally tracing scan selections and join steps
/// for skeleton capture ([`crate::incremental::prepare`] on
/// [`Engine::Tuple`]).
pub(crate) fn tuple_pipeline(
    ctx: &mut EvalCtx,
    trace: Option<&mut crate::incremental::PipelineTrace>,
) -> Result<Vec<Tup>, QueryError> {
    TupleExec { ctx, trace }.join_pipeline()
}

/// The tuple-at-a-time engine: materialized `Vec<Tup>` row sets driven
/// through scan → hash-join → residual-filter stages.
struct TupleExec<'a, 'b> {
    ctx: &'b mut EvalCtx<'a>,
    trace: Option<&'b mut crate::incremental::PipelineTrace>,
}

impl<'a, 'b> TupleExec<'a, 'b> {
    /// Base-row ids of `rel` surviving its pushed-down scan filters.
    /// Scan filters are model-free by construction (the optimizer never
    /// pushes a `predict()` atom), so they evaluate concretely and prune
    /// identically in normal and debug mode — provenance is unaffected.
    fn scan(&mut self, rel: usize) -> Result<Vec<u32>, QueryError> {
        let mut span = rain_obs::Span::enter("scan");
        span.add("rows_in", self.ctx.table_of(rel).n_rows() as u64);
        let out = self.scan_inner(rel)?;
        span.add("rows_out", out.len() as u64);
        if let Some(t) = self.trace.as_deref_mut() {
            t.scan_rows.push(out.len());
        }
        Ok(out)
    }

    fn scan_inner(&mut self, rel: usize) -> Result<Vec<u32>, QueryError> {
        let n = self.ctx.table_of(rel).n_rows();
        if self.ctx.query.scan_filters[rel].is_empty() {
            return Ok((0..n as u32).collect());
        }
        // `ctx.query` is a shared reference with its own lifetime, so
        // reading expressions through a hoisted copy of it does not hold
        // a borrow of `self` — no per-row clones needed.
        let query = self.ctx.query;
        let mut rows_buf = vec![0u32; rel + 1];
        let mut out = Vec::with_capacity(n);
        'row: for r in 0..n {
            rows_buf[rel] = r as u32;
            for f in &query.scan_filters[rel] {
                match self.ctx.eval_pred(f, &rows_buf)? {
                    Sym::Const(false) => continue 'row,
                    Sym::Const(true) => {}
                    // Unreachable for optimizer-built plans; evaluate
                    // discretely as a defensive fallback (identical in
                    // both modes for a concrete model).
                    Sym::Prov(p) => {
                        if !p.eval_discrete(self.ctx.reg.preds()) {
                            continue 'row;
                        }
                    }
                }
            }
            out.push(r as u32);
        }
        Ok(out)
    }

    /// Build the joined candidate-tuple set with pushdown.
    fn join_pipeline(&mut self) -> Result<Vec<Tup>, QueryError> {
        let n_rels = self.ctx.query.rels.len();
        let n_conj = self.ctx.query.conjuncts.len();
        let mut applied = vec![false; n_conj];
        let footprints = eval::conjunct_footprints(self.ctx.query);

        // Seed with relation 0's scan (pushed-down filters applied).
        let mut tuples: Vec<Tup> = self
            .scan(0)?
            .into_iter()
            .map(|r| Tup {
                rows: vec![r],
                prov: BoolProv::Const(true),
            })
            .collect();
        tuples = self.apply_conjuncts(tuples, &mut applied, &footprints, 1)?;

        for rel in 1..n_rels {
            // Equi-join keys available for hash joining into `rel`.
            let equi = eval::equi_keys(self.ctx.query, &applied, &footprints, rel);

            // Scan the new relation once: pushed-down filters prune its
            // base rows before any join work (hash build or cross loop).
            let right_rows = self.scan(rel)?;
            let mut join_span = rain_obs::Span::enter("join");
            join_span.add("rows_in", tuples.len() as u64);
            let mut joined = Vec::new();
            if equi.is_empty() {
                // Nested-loop cross join; remaining conjuncts filter below.
                joined.reserve(tuples.len().saturating_mul(right_rows.len().max(1)));
                for t in &tuples {
                    for &r in &right_rows {
                        let mut rows = t.rows.clone();
                        rows.push(r);
                        joined.push(Tup {
                            rows,
                            prov: t.prov.clone(),
                        });
                    }
                }
            } else {
                for (_, _, ci) in &equi {
                    applied[*ci] = true;
                }
                // Hash the new relation on its key expressions. Keys are
                // canonicalized so hash equality matches `=` semantics
                // (NULL/NaN keys match nothing and are skipped).
                let mut index: HashMap<Vec<eval::JoinKey>, Vec<u32>> = HashMap::new();
                let mut probe_rows = vec![0u32; rel + 1];
                for &r in &right_rows {
                    // Position `rel` must be addressable; pad with a
                    // sentinel row vector of the right length.
                    probe_rows[rel] = r;
                    let mut key = Vec::with_capacity(equi.len());
                    for (_, re, _) in &equi {
                        match eval::join_key(&self.ctx.eval_value(re, &probe_rows)?) {
                            Some(k) => key.push(k),
                            None => break,
                        }
                    }
                    if key.len() == equi.len() {
                        index.entry(key).or_default().push(r);
                    }
                }
                'probe: for t in &tuples {
                    let mut key = Vec::with_capacity(equi.len());
                    for (le, _, _) in &equi {
                        match eval::join_key(&self.ctx.eval_value(le, &t.rows)?) {
                            Some(k) => key.push(k),
                            None => continue 'probe,
                        }
                    }
                    if let Some(rows) = index.get(&key) {
                        for &r in rows {
                            let mut new_rows = t.rows.clone();
                            new_rows.push(r);
                            joined.push(Tup {
                                rows: new_rows,
                                prov: t.prov.clone(),
                            });
                        }
                    }
                }
            }
            join_span.add("rows_out", joined.len() as u64);
            drop(join_span);
            if let Some(t) = self.trace.as_deref_mut() {
                t.join_steps.push((
                    if equi.is_empty() {
                        "nested-loop"
                    } else {
                        "hash"
                    },
                    joined.len(),
                ));
            }
            tuples = self.apply_conjuncts(joined, &mut applied, &footprints, rel + 1)?;
        }
        Ok(tuples)
    }

    /// Apply every not-yet-applied conjunct whose footprint fits in the
    /// first `in_scope` relations.
    fn apply_conjuncts(
        &mut self,
        tuples: Vec<Tup>,
        applied: &mut [bool],
        footprints: &[std::collections::BTreeSet<usize>],
        in_scope: usize,
    ) -> Result<Vec<Tup>, QueryError> {
        let todo: Vec<usize> = (0..applied.len())
            .filter(|&ci| !applied[ci] && footprints[ci].iter().all(|&r| r < in_scope))
            .collect();
        if todo.is_empty() {
            return Ok(tuples);
        }
        for &ci in &todo {
            applied[ci] = true;
        }
        let mut span = rain_obs::Span::enter("filter");
        span.add("rows_in", tuples.len() as u64);
        let query = self.ctx.query;
        let mut out = Vec::with_capacity(tuples.len());
        'tuple: for mut t in tuples {
            for &ci in &todo {
                match self.ctx.eval_pred(&query.conjuncts[ci], &t.rows)? {
                    Sym::Const(false) => continue 'tuple,
                    Sym::Const(true) => {}
                    Sym::Prov(f) => {
                        if self.ctx.debug {
                            t.prov = BoolProv::and(vec![t.prov, f]);
                        } else if !f.eval_discrete(self.ctx.reg.preds()) {
                            continue 'tuple;
                        }
                    }
                }
            }
            out.push(t);
        }
        span.add("rows_out", out.len() as u64);
        Ok(out)
    }
}
