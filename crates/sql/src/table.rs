//! Columnar tables with optional row-aligned feature matrices.
//!
//! A [`Table`] is a small columnar store: a [`Schema`] plus one [`Column`]
//! per attribute. Tables that participate in model inference additionally
//! carry a feature [`Matrix`] whose row `i` is the model input for tuple
//! `i` — this is how `predict(alias)` resolves `alias.*` to a vector (the
//! in-DBMS ML pattern from the paper's Figure 1).

use crate::value::Value;
use rain_linalg::Matrix;
use std::collections::HashMap;

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// Boolean column.
    Bool,
    /// 64-bit integer column.
    Int,
    /// 64-bit float column.
    Float,
    /// String column.
    Str,
}

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Attribute name (lowercase).
    pub name: String,
    /// Attribute type.
    pub ty: ColType,
}

/// An ordered set of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    cols: Vec<ColumnDef>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(cols: &[(&str, ColType)]) -> Self {
        let mut s = Schema::default();
        for (name, ty) in cols {
            s.push(name, *ty);
        }
        s
    }

    /// Append a column definition.
    pub fn push(&mut self, name: &str, ty: ColType) {
        let name = name.to_ascii_lowercase();
        assert!(
            self.by_name.insert(name.clone(), self.cols.len()).is_none(),
            "duplicate column {name}"
        );
        self.cols.push(ColumnDef { name, ty });
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Column definition at `i`.
    pub fn col(&self, i: usize) -> &ColumnDef {
        &self.cols[i]
    }

    /// Iterate over column definitions.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &ColumnDef> {
        self.cols.iter()
    }
}

/// Typed column storage.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean cells.
    Bool(Vec<bool>),
    /// Integer cells.
    Int(Vec<i64>),
    /// Float cells.
    Float(Vec<f64>),
    /// String cells.
    Str(Vec<String>),
}

impl Column {
    /// Empty column of a type.
    pub fn empty(ty: ColType) -> Self {
        match ty {
            ColType::Bool => Column::Bool(Vec::new()),
            ColType::Int => Column::Int(Vec::new()),
            ColType::Float => Column::Float(Vec::new()),
            ColType::Str => Column::Str(Vec::new()),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell at `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Append a value (must match the column type).
    ///
    /// # Panics
    /// Panics on a type mismatch.
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (Column::Bool(c), Value::Bool(b)) => c.push(b),
            (Column::Int(c), Value::Int(x)) => c.push(x),
            (Column::Int(c), Value::Bool(b)) => c.push(b as i64),
            (Column::Float(c), Value::Float(x)) => c.push(x),
            (Column::Float(c), Value::Int(x)) => c.push(x as f64),
            (Column::Str(c), Value::Str(s)) => c.push(s),
            (c, v) => panic!(
                "type mismatch pushing {v:?} into {:?} column",
                discriminant(c)
            ),
        }
    }

    /// The column's type.
    pub fn ty(&self) -> ColType {
        match self {
            Column::Bool(_) => ColType::Bool,
            Column::Int(_) => ColType::Int,
            Column::Float(_) => ColType::Float,
            Column::Str(_) => ColType::Str,
        }
    }

    /// Zero-copy view of an integer column (`None` for other types). The
    /// vectorized kernels use these typed slices instead of per-row
    /// [`Value`] boxing through [`Column::get`].
    pub fn as_i64s(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy view of a float column (`None` for other types).
    pub fn as_f64s(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy view of a string column (`None` for other types).
    pub fn as_strs(&self) -> Option<&[String]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Zero-copy view of a boolean column (`None` for other types).
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Append the type's zero value (the physical filler under a NULL
    /// cell; the table's null bitmap marks it invalid).
    pub fn push_zero(&mut self) {
        match self {
            Column::Bool(v) => v.push(false),
            Column::Int(v) => v.push(0),
            Column::Float(v) => v.push(0.0),
            Column::Str(v) => v.push(String::new()),
        }
    }
}

fn discriminant(c: &Column) -> ColType {
    c.ty()
}

/// A columnar table, optionally with a row-aligned feature matrix.
///
/// NULLs are represented out of band: each column may carry a null
/// bitmap (`nulls[col]`), lazily materialized the first time a NULL is
/// pushed. Fully valid columns carry no bitmap, so the common case stays
/// a plain typed vector the kernels can slice zero-copy.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    /// Per-column null bitmap; `None` = all cells valid.
    nulls: Vec<Option<Vec<bool>>>,
    n_rows: usize,
    features: Option<Matrix>,
}

impl Table {
    /// Empty table over a schema.
    pub fn empty(schema: Schema) -> Self {
        let columns: Vec<Column> = schema.iter().map(|c| Column::empty(c.ty)).collect();
        let nulls = vec![None; columns.len()];
        Table {
            schema,
            columns,
            nulls,
            n_rows: 0,
            features: None,
        }
    }

    /// Build a table from equal-length columns.
    ///
    /// # Panics
    /// Panics if column counts/lengths or types disagree with the schema.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "Table: schema/column count mismatch"
        );
        let n_rows = columns.first().map_or(0, Column::len);
        for (def, col) in schema.iter().zip(&columns) {
            assert_eq!(col.len(), n_rows, "Table: ragged column {}", def.name);
            assert_eq!(col.ty(), def.ty, "Table: column {} type mismatch", def.name);
        }
        let nulls = vec![None; columns.len()];
        Table {
            schema,
            columns,
            nulls,
            n_rows,
            features: None,
        }
    }

    /// Reassemble a table from persisted parts: columns, per-column null
    /// bitmaps, and an optional feature matrix. This is the restore path
    /// for durability snapshots — [`Table::from_columns`] followed by
    /// `push_row` cannot reproduce a null bitmap bit-identically, this
    /// can.
    ///
    /// # Panics
    /// Panics if the parts disagree (column counts/lengths/types, bitmap
    /// lengths, feature row count).
    pub fn from_parts(
        schema: Schema,
        columns: Vec<Column>,
        nulls: Vec<Option<Vec<bool>>>,
        features: Option<Matrix>,
    ) -> Self {
        let mut t = Table::from_columns(schema, columns);
        assert_eq!(
            nulls.len(),
            t.columns.len(),
            "from_parts: null bitmap count mismatch"
        );
        for (ci, mask) in nulls.iter().enumerate() {
            if let Some(m) = mask {
                assert_eq!(m.len(), t.n_rows, "from_parts: bitmap {ci} length");
            }
        }
        t.nulls = nulls;
        if let Some(m) = features {
            t = t.with_features(m);
        }
        t
    }

    /// Attach a feature matrix (one row per tuple).
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn with_features(mut self, features: Matrix) -> Self {
        assert_eq!(features.rows(), self.n_rows, "features: row count mismatch");
        self.features = Some(features);
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Cell accessor (NULL-aware: masked cells read as [`Value::Null`]).
    pub fn value(&self, row: usize, col: usize) -> Value {
        if self.is_null(row, col) {
            return Value::Null;
        }
        self.columns[col].get(row)
    }

    /// True when the cell is NULL.
    pub fn is_null(&self, row: usize, col: usize) -> bool {
        self.nulls[col].as_deref().is_some_and(|m| m[row])
    }

    /// Null bitmap of a column: `Some(mask)` once the column holds any
    /// NULL (with `mask[row] == true` for NULL cells), `None` while the
    /// column is fully valid. Kernels check this before slicing a column
    /// zero-copy through the `as_*s` accessors.
    pub fn null_mask(&self, col: usize) -> Option<&[bool]> {
        self.nulls[col].as_deref()
    }

    /// Feature vector of a row, if the table carries features.
    pub fn feature_row(&self, row: usize) -> Option<&[f64]> {
        self.features.as_ref().map(|m| m.row(row))
    }

    /// The whole feature matrix, if present.
    pub fn features(&self) -> Option<&Matrix> {
        self.features.as_ref()
    }

    /// Append one row of values (and optionally a feature vector).
    ///
    /// # Panics
    /// Panics if arity/types mismatch, or if `feat` presence disagrees with
    /// whether the table carries features.
    pub fn push_row(&mut self, row: Vec<Value>, feat: Option<&[f64]>) {
        assert_eq!(row.len(), self.columns.len(), "push_row: arity mismatch");
        for (ci, (col, v)) in self.columns.iter_mut().zip(row).enumerate() {
            if v == Value::Null {
                col.push_zero();
                self.nulls[ci]
                    .get_or_insert_with(|| vec![false; self.n_rows])
                    .push(true);
            } else {
                col.push(v);
                if let Some(mask) = &mut self.nulls[ci] {
                    mask.push(false);
                }
            }
        }
        match (&mut self.features, feat) {
            (Some(m), Some(f)) => {
                assert_eq!(f.len(), m.cols(), "push_row: feature width mismatch");
                *m = {
                    let mut data = Vec::with_capacity((m.rows() + 1) * m.cols());
                    data.extend_from_slice(m.as_slice());
                    data.extend_from_slice(f);
                    Matrix::from_vec(m.rows() + 1, m.cols(), data)
                };
            }
            (None, None) => {}
            (None, Some(f)) if self.n_rows == 0 => {
                self.features = Some(Matrix::from_vec(1, f.len(), f.to_vec()));
            }
            _ => panic!("push_row: feature presence mismatch"),
        }
        self.n_rows += 1;
    }

    /// Append many rows (and optionally row-aligned feature vectors) in
    /// one batch. Equivalent to calling [`Table::push_row`] per row but
    /// extends the feature matrix once for the whole batch instead of
    /// rebuilding it per row, so appending `k` rows to an `n`-row table
    /// costs O(n + k) feature copies rather than O(k · n). This is the
    /// path commitlog replay and the serving layer's append endpoint go
    /// through.
    ///
    /// # Panics
    /// Panics if arity/types mismatch, if `feats` presence disagrees with
    /// whether the table carries features, or if `feats` is not
    /// row-aligned with `rows`.
    pub fn append_rows(&mut self, rows: Vec<Vec<Value>>, feats: Option<&[Vec<f64>]>) {
        let n_new = rows.len();
        if let Some(fs) = feats {
            assert_eq!(fs.len(), n_new, "append_rows: feature row count mismatch");
        }
        if n_new == 0 {
            return;
        }
        match (&mut self.features, feats) {
            (Some(m), Some(fs)) => {
                let cols = m.cols();
                let mut data = Vec::with_capacity((m.rows() + n_new) * cols);
                data.extend_from_slice(m.as_slice());
                for f in fs {
                    assert_eq!(f.len(), cols, "append_rows: feature width mismatch");
                    data.extend_from_slice(f);
                }
                *m = Matrix::from_vec(m.rows() + n_new, cols, data);
            }
            (None, None) => {}
            (None, Some(fs)) if self.n_rows == 0 => {
                let cols = fs[0].len();
                let mut data = Vec::with_capacity(n_new * cols);
                for f in fs {
                    assert_eq!(f.len(), cols, "append_rows: feature width mismatch");
                    data.extend_from_slice(f);
                }
                self.features = Some(Matrix::from_vec(n_new, cols, data));
            }
            _ => panic!("append_rows: feature presence mismatch"),
        }
        for row in rows {
            assert_eq!(row.len(), self.columns.len(), "append_rows: arity mismatch");
            for (ci, (col, v)) in self.columns.iter_mut().zip(row).enumerate() {
                if v == Value::Null {
                    col.push_zero();
                    self.nulls[ci]
                        .get_or_insert_with(|| vec![false; self.n_rows])
                        .push(true);
                } else {
                    col.push(v);
                    if let Some(mask) = &mut self.nulls[ci] {
                        mask.push(false);
                    }
                }
            }
            self.n_rows += 1;
        }
    }

    /// Render the table as tab-separated text with a header line.
    pub fn to_tsv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let header: Vec<&str> = self.schema.iter().map(|c| c.name.as_str()).collect();
        let _ = writeln!(out, "{}", header.join("\t"));
        for r in 0..self.n_rows {
            let row: Vec<String> = (0..self.columns.len())
                .map(|c| self.value(r, c).to_string())
                .collect();
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let schema = Schema::new(&[
            ("id", ColType::Int),
            ("name", ColType::Str),
            ("active", ColType::Bool),
        ]);
        Table::from_columns(
            schema,
            vec![
                Column::Int(vec![1, 2]),
                Column::Str(vec!["ada".into(), "bob".into()]),
                Column::Bool(vec![true, false]),
            ],
        )
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let t = people();
        assert_eq!(t.schema().index_of("NAME"), Some(1));
        assert_eq!(t.schema().index_of("missing"), None);
    }

    #[test]
    fn value_access() {
        let t = people();
        assert_eq!(t.value(0, 1), Value::Str("ada".into()));
        assert_eq!(t.value(1, 2), Value::Bool(false));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn push_row_grows_all_columns() {
        let mut t = people();
        t.push_row(
            vec![Value::Int(3), Value::Str("eve".into()), Value::Bool(true)],
            None,
        );
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(2, 0), Value::Int(3));
    }

    #[test]
    fn append_rows_matches_repeated_push_row() {
        let base = || people().with_features(Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]));
        let rows = vec![
            vec![Value::Null, Value::Str("eve".into()), Value::Bool(true)],
            vec![Value::Int(4), Value::Str("dan".into()), Value::Null],
            vec![Value::Int(5), Value::Null, Value::Bool(false)],
        ];
        let feats = vec![
            vec![-0.0, 1.5],
            vec![f64::MIN_POSITIVE, 2.5],
            vec![3.5, -4.5],
        ];

        let mut batched = base();
        batched.append_rows(rows.clone(), Some(&feats));
        let mut serial = base();
        for (row, f) in rows.into_iter().zip(&feats) {
            serial.push_row(row, Some(f));
        }

        assert_eq!(batched.n_rows(), serial.n_rows());
        for c in 0..3 {
            assert_eq!(batched.null_mask(c), serial.null_mask(c), "mask col {c}");
            for r in 0..batched.n_rows() {
                assert_eq!(batched.value(r, c), serial.value(r, c), "cell ({r}, {c})");
            }
        }
        let (bm, sm) = (batched.features().unwrap(), serial.features().unwrap());
        assert_eq!(bm.rows(), sm.rows());
        assert_eq!(
            bm.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            sm.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );

        // Empty batch is a no-op; batch onto a featureless empty table
        // seeds the matrix just like push_row does.
        batched.append_rows(vec![], None);
        assert_eq!(batched.n_rows(), 5);
        let schema = Schema::new(&[("id", ColType::Int)]);
        let mut fresh = Table::from_columns(schema, vec![Column::Int(vec![])]);
        fresh.append_rows(
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            Some(&[vec![9.0], vec![8.0]]),
        );
        assert_eq!(fresh.feature_row(1), Some(&[8.0][..]));
    }

    #[test]
    fn features_are_row_aligned() {
        let t = people().with_features(Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]));
        assert_eq!(t.feature_row(1), Some(&[0.3, 0.4][..]));
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn feature_shape_is_checked() {
        let _ = people().with_features(Matrix::from_rows(&[&[0.1]]));
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_rejected() {
        let schema = Schema::new(&[("a", ColType::Int), ("b", ColType::Int)]);
        Table::from_columns(schema, vec![Column::Int(vec![1]), Column::Int(vec![1, 2])]);
    }

    #[test]
    fn int_column_accepts_bools() {
        let mut c = Column::Int(vec![]);
        c.push(Value::Bool(true));
        assert_eq!(c.get(0), Value::Int(1));
    }

    #[test]
    fn typed_zero_copy_accessors() {
        let t = people();
        assert_eq!(t.column(0).as_i64s(), Some(&[1i64, 2][..]));
        assert_eq!(t.column(2).as_bools(), Some(&[true, false][..]));
        assert_eq!(t.column(1).as_strs().map(|s| s.len()), Some(2));
        assert_eq!(t.column(0).as_f64s(), None);
        assert_eq!(t.column(1).as_i64s(), None);
        let f = Column::Float(vec![1.5]);
        assert_eq!(f.as_f64s(), Some(&[1.5][..]));
    }

    #[test]
    fn null_cells_are_tracked_by_bitmap() {
        let mut t = people();
        assert!(t.null_mask(0).is_none());
        t.push_row(
            vec![Value::Null, Value::Str("eve".into()), Value::Bool(true)],
            None,
        );
        // Only the column that received a NULL grows a bitmap.
        assert_eq!(t.null_mask(0), Some(&[false, false, true][..]));
        assert!(t.null_mask(1).is_none());
        assert_eq!(t.value(2, 0), Value::Null);
        assert!(t.is_null(2, 0));
        assert!(!t.is_null(0, 0));
        // Subsequent non-NULL pushes keep the bitmap aligned.
        t.push_row(
            vec![Value::Int(9), Value::Str("f".into()), Value::Bool(false)],
            None,
        );
        assert_eq!(t.value(3, 0), Value::Int(9));
        assert!(!t.is_null(3, 0));
        assert!(t.to_tsv().contains("NULL"));
    }

    #[test]
    fn tsv_rendering() {
        let t = people();
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("id\tname\tactive\n"));
        assert!(tsv.contains("1\tada\ttrue"));
    }
}
