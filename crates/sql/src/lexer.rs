//! SQL tokenizer for the SPJA subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (already lowercased; keywords are checked by
    /// the parser via [`Token::is_kw`]).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A punctuation or operator symbol: `( ) , . * = != <> < <= > >= + -`.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl Token {
    /// True when the token is the given keyword (case-insensitive match was
    /// done at lex time by lowercasing identifiers).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexing / parsing error with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Human-readable message.
    pub message: String,
    /// Approximate byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, SqlError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = input[start..i].to_ascii_lowercase();
            toks.push((Token::Ident(word), start));
        } else if c.is_ascii_digit() {
            let mut is_float = false;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || (bytes[i] == b'.'
                        && !is_float
                        && matches!(bytes.get(i+1), Some(d) if (*d as char).is_ascii_digit())))
            {
                if bytes[i] == b'.' {
                    is_float = true;
                }
                i += 1;
            }
            let text = &input[start..i];
            let tok = if is_float {
                Token::Float(text.parse().map_err(|_| SqlError {
                    message: format!("bad float literal {text}"),
                    offset: start,
                })?)
            } else {
                Token::Int(text.parse().map_err(|_| SqlError {
                    message: format!("bad int literal {text}"),
                    offset: start,
                })?)
            };
            toks.push((tok, start));
        } else if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(SqlError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(bytes[i] as char);
                    i += 1;
                }
            }
            toks.push((Token::Str(s), start));
        } else {
            let two = if i + 1 < bytes.len() {
                &input[i..i + 2]
            } else {
                ""
            };
            let sym: &'static str = match two {
                "!=" => "!=",
                "<>" => "<>",
                "<=" => "<=",
                ">=" => ">=",
                _ => match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => {
                        return Err(SqlError {
                            message: format!("unexpected character {c:?}"),
                            offset: i,
                        })
                    }
                },
            };
            i += sym.len();
            toks.push((Token::Sym(sym), start));
        }
    }
    toks.push((Token::Eof, input.len()));
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_are_lowercased_identifiers() {
        assert_eq!(
            toks("SELECT Count"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("count".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("42 3.5 'it''s'"),
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Str("it's".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn symbols_including_two_char() {
        assert_eq!(
            toks("a <= b != c"),
            vec![
                Token::Ident("a".into()),
                Token::Sym("<="),
                Token::Ident("b".into()),
                Token::Sym("!="),
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment\n b"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dotted_names_are_three_tokens() {
        assert_eq!(
            toks("u.id"),
            vec![
                Token::Ident("u".into()),
                Token::Sym("."),
                Token::Ident("id".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn count_star_call() {
        assert_eq!(
            toks("COUNT(*)"),
            vec![
                Token::Ident("count".into()),
                Token::Sym("("),
                Token::Sym("*"),
                Token::Sym(")"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn negative_handled_as_symbol() {
        // `-` is a symbol; the parser folds unary minus.
        assert_eq!(toks("-3"), vec![Token::Sym("-"), Token::Int(3), Token::Eof]);
    }
}
