//! Scalar values and the `LIKE` pattern matcher.

use std::cmp::Ordering;
use std::fmt;

/// A scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Numeric view (`Int`/`Float`/`Bool` coerce; others are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view (`Int`/`Bool` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Truthiness (`Bool` or nonzero numeric).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            _ => false,
        }
    }

    /// SQL three-valued-ish comparison; `None` for NULLs or mixed
    /// incomparable types (e.g. string vs int).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// SQL `LIKE` matcher: `%` matches any run (including empty), `_` matches
/// exactly one character. Matching is case-sensitive, as in standard SQL.
pub fn like_match(text: &str, pattern: &str) -> bool {
    // Iterative two-pointer algorithm with backtracking to the last `%`.
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after %, text pos)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Float(2.5).as_i64(), None);
    }

    #[test]
    fn comparisons_across_numeric_types() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Str("a".into()).compare(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Str("1".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(5).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Str("yes".into()).is_truthy());
    }

    #[test]
    fn like_contains() {
        assert!(like_match("click http://x now", "%http%"));
        assert!(!like_match("no links here", "%http%"));
        assert!(like_match("http", "%http%"));
    }

    #[test]
    fn like_anchors_and_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello!", "hello"));
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%c"));
    }

    #[test]
    fn like_backtracking_cases() {
        assert!(like_match("aab", "%ab"));
        assert!(like_match("axbxb", "a%b"));
        assert!(!like_match("axbxc", "a%b"));
        assert!(like_match("mississippi", "%iss%ppi"));
    }
}
