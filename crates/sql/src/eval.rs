//! The expression-evaluation core shared by both execution engines.
//!
//! The tuple-at-a-time engine ([`exec`](crate::exec)) and the vectorized
//! engine ([`vexec`](crate::vexec)) must agree *bit for bit*: same result
//! rows, same prediction-variable ids (assigned in order of first
//! inference), same provenance polynomials. The only way to guarantee
//! that is to share one implementation of everything semantic — predicate
//! and scalar evaluation ([`EvalCtx::eval_pred`] / [`EvalCtx::eval_value`]),
//! prediction-variable creation ([`EvalCtx::var_of`]), equi-join key
//! extraction ([`equi_keys`]), and the projection/aggregation finalizers
//! ([`project`] / [`aggregate`]) — and let the engines differ only in
//! *how they enumerate tuples* (AoS `Vec<Tup>` vs columnar row sets).
//!
//! The finalizers consume tuples through the [`Tuples`] sink trait, so the
//! vectorized engine feeds its struct-of-arrays batches without
//! materializing a `Vec<Tup>`.

use crate::ast::{AggFunc, ArithOp, CmpOp};
use crate::binder::{BExpr, BoundAgg, BoundAggArg, GroupKey, QueryKind};
use crate::catalog::Database;
use crate::exec::QueryOutput;
use crate::plan::QueryPlan;
use crate::predvar::PredVarRegistry;
use crate::prov::{BoolProv, VarId};
use crate::table::{ColType, Schema, Table};
use crate::value::{like_match, Value};
use crate::QueryError;
use rain_model::Classifier;
use std::collections::{BTreeSet, HashMap};

/// A (possibly partial) joined tuple: one row index per bound relation.
#[derive(Debug, Clone)]
pub(crate) struct Tup {
    pub(crate) rows: Vec<u32>,
    pub(crate) prov: BoolProv,
}

/// The sink the finalizers feed tuples into: `(base rows per relation,
/// membership formula)`.
pub(crate) type TupleSink<'a> = dyn FnMut(&[u32], BoolProv) -> Result<(), QueryError> + 'a;

/// A stream of joined candidate tuples, consumed by the shared
/// projection/aggregation finalizers. Implementations must yield tuples
/// in their join-pipeline order — variable ids and provenance term order
/// depend on it.
pub(crate) trait Tuples {
    /// Feed every tuple to `sink`.
    fn emit(self, sink: &mut TupleSink) -> Result<(), QueryError>;
}

impl Tuples for Vec<Tup> {
    fn emit(self, sink: &mut TupleSink) -> Result<(), QueryError> {
        for t in self {
            sink(&t.rows, t.prov)?;
        }
        Ok(())
    }
}

/// Hashable group-key value (floats keyed by total-order bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum KeyVal {
    Null,
    Bool(bool),
    Int(i64),
    F64(u64),
    Str(String),
}

pub(crate) fn keyval(v: &Value) -> KeyVal {
    match v {
        Value::Null => KeyVal::Null,
        Value::Bool(b) => KeyVal::Bool(*b),
        Value::Int(i) => KeyVal::Int(*i),
        Value::Float(f) => {
            // Total-order bit trick so Ord matches numeric order.
            let bits = f.to_bits() as i64;
            KeyVal::F64((bits ^ (((bits >> 63) as u64) >> 1) as i64) as u64 ^ (1u64 << 63))
        }
        Value::Str(s) => KeyVal::Str(s.clone()),
    }
}

pub(crate) fn keyval_to_value(k: &KeyVal) -> Value {
    match k {
        KeyVal::Null => Value::Null,
        KeyVal::Bool(b) => Value::Bool(*b),
        KeyVal::Int(i) => Value::Int(*i),
        KeyVal::F64(bits) => {
            let b = bits ^ (1u64 << 63);
            let b = b as i64;
            Value::Float(f64::from_bits(
                (b ^ ((((b >> 63) as u64) >> 1) as i64)) as u64,
            ))
        }
        KeyVal::Str(s) => Value::Str(s.clone()),
    }
}

/// Hash key for equi-joins, canonicalized so that key equality matches
/// the `=` predicate ([`Value::compare`]) exactly: every numeric value
/// (Int/Float/Bool) keys by its `f64` bits — `Value::compare` itself
/// compares numerics through `f64`, so `3 = 3.0` must hash-match —
/// with `-0.0` normalized onto `0.0`. NULL and NaN compare equal to
/// nothing, so [`join_key`] returns `None` for them and join build/probe
/// skip the row entirely.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum JoinKey {
    /// Any numeric value, keyed by canonical f64 bits.
    Num(u64),
    /// A string value.
    Str(String),
}

/// Canonical f64 bit pattern: `-0.0` folds onto `0.0` so the two equal
/// values share a key. Callers must exclude NaN first.
pub(crate) fn f64_key_bits(f: f64) -> u64 {
    (if f == 0.0 { 0.0 } else { f }).to_bits()
}

/// The equi-join key of a value, or `None` when the value can never
/// compare equal to anything (NULL, NaN).
pub(crate) fn join_key(v: &Value) -> Option<JoinKey> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(JoinKey::Num(f64_key_bits(*b as u8 as f64))),
        Value::Int(i) => Some(JoinKey::Num(f64_key_bits(*i as f64))),
        Value::Float(f) => {
            if f.is_nan() {
                None
            } else {
                Some(JoinKey::Num(f64_key_bits(*f)))
            }
        }
        Value::Str(s) => Some(JoinKey::Str(s.clone())),
    }
}

/// Symbolic-or-constant predicate value.
pub(crate) enum Sym {
    Const(bool),
    Prov(BoolProv),
}

impl From<BoolProv> for Sym {
    fn from(f: BoolProv) -> Self {
        match f {
            BoolProv::Const(b) => Sym::Const(b),
            other => Sym::Prov(other),
        }
    }
}

/// Relation footprint of every residual conjunct of a plan.
pub(crate) fn conjunct_footprints(query: &QueryPlan) -> Vec<BTreeSet<usize>> {
    query
        .conjuncts
        .iter()
        .map(|c| {
            let mut s = BTreeSet::new();
            c.rels_used(&mut s);
            s
        })
        .collect()
}

/// Concrete equi-join conjuncts usable for hash-joining relation `rel`
/// into the tuples over relations `0..rel`: not yet applied, model-free,
/// with one side reading exactly `{rel}` and the other only earlier
/// relations. Returned as `(left/probe expr, right/build expr, conjunct
/// index)` in conjunct order — both engines must use this exact selection
/// so their join schedules (and therefore provenance) agree.
pub(crate) fn equi_keys(
    query: &QueryPlan,
    applied: &[bool],
    footprints: &[BTreeSet<usize>],
    rel: usize,
) -> Vec<(BExpr, BExpr, usize)> {
    (0..query.conjuncts.len())
        .filter(|&ci| !applied[ci] && footprints[ci].iter().all(|&r| r <= rel))
        .filter_map(|ci| match &query.conjuncts[ci] {
            BExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } => {
                let lset = {
                    let mut s = BTreeSet::new();
                    left.rels_used(&mut s);
                    s
                };
                let rset = {
                    let mut s = BTreeSet::new();
                    right.rels_used(&mut s);
                    s
                };
                if left.contains_predict() || right.contains_predict() {
                    return None;
                }
                // One side must be exactly {rel}, the other ⊆ {0..rel-1}.
                if lset == BTreeSet::from([rel]) && rset.iter().all(|&r| r < rel) {
                    Some(((**right).clone(), (**left).clone(), ci))
                } else if rset == BTreeSet::from([rel]) && lset.iter().all(|&r| r < rel) {
                    Some(((**left).clone(), (**right).clone(), ci))
                } else {
                    None
                }
            }
            _ => None,
        })
        .collect()
}

/// The equi-key selection for every join step of a plan, replicating the
/// engines' schedule exactly (conjuncts consumed in footprint order, equi
/// keys claimed per relation). `result[rel - 1]` holds relation `rel`'s
/// keys; an empty entry means that step runs as a nested-loop cross
/// join. Used by `EXPLAIN` so the printed strategy is derived from the
/// same selection the engines execute.
pub(crate) fn join_schedule(query: &QueryPlan) -> Vec<Vec<(BExpr, BExpr, usize)>> {
    let footprints = conjunct_footprints(query);
    let mut applied = vec![false; query.conjuncts.len()];
    let mark = |applied: &mut Vec<bool>, in_scope: usize| {
        for (ci, a) in applied.iter_mut().enumerate() {
            if !*a && footprints[ci].iter().all(|&r| r < in_scope) {
                *a = true;
            }
        }
    };
    mark(&mut applied, 1);
    let mut out = Vec::new();
    for rel in 1..query.rels.len() {
        let keys = equi_keys(query, &applied, &footprints, rel);
        for (_, _, ci) in &keys {
            applied[*ci] = true;
        }
        mark(&mut applied, rel + 1);
        out.push(keys);
    }
    out
}

/// Accumulator for one output group (normal mode — debug-mode grouping
/// lives in the incremental capture path, which keeps full provenance).
#[derive(Debug, Default)]
struct GroupAcc {
    /// Concrete members (tuples that concretely belong to this group).
    members: usize,
    /// Concrete per-aggregate accumulators: (sum, non-null count).
    concrete: Vec<(f64, usize)>,
}

/// Shared evaluation state: catalog, model, plan, mode, and the
/// prediction-variable registry being populated by this execution.
pub(crate) struct EvalCtx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) model: &'a dyn Classifier,
    pub(crate) query: &'a QueryPlan,
    pub(crate) debug: bool,
    /// Resolved worker budget for morsel-parallel operators (≥ 1). Only
    /// the vectorized engine reads it; 1 means fully sequential.
    pub(crate) threads: usize,
    pub(crate) reg: PredVarRegistry,
}

impl<'a> EvalCtx<'a> {
    pub(crate) fn new(
        db: &'a Database,
        model: &'a dyn Classifier,
        query: &'a QueryPlan,
        debug: bool,
    ) -> Self {
        EvalCtx {
            db,
            model,
            query,
            debug,
            threads: 1,
            reg: PredVarRegistry::new(),
        }
    }

    /// The same context with a resolved worker budget (clamped to ≥ 1).
    pub(crate) fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Base table of the plan's `rel`-th relation (borrowed from the
    /// database, not from `self`, so callers can hold it across mutation).
    pub(crate) fn table_of(&self, rel: usize) -> &'a Table {
        self.db.table_by_id(self.query.rels[rel].id)
    }

    /// Prediction variable for relation `rel`'s row (created on first
    /// sight, running inference exactly once per underlying record).
    pub(crate) fn var_of(&mut self, rel: usize, row: u32) -> VarId {
        let table_name = &self.query.rels[rel].table;
        let table = self.db.table_by_id(self.query.rels[rel].id);
        let model = self.model;
        let feats = table
            .feature_row(row as usize)
            .expect("features checked at bind time");
        self.reg
            .var_for(table_name, row as usize, || model.predict(feats))
    }

    /// Evaluate a predicate over a tuple into either a constant or a
    /// provenance formula (constants fold; model atoms stay symbolic).
    pub(crate) fn eval_pred(&mut self, e: &BExpr, rows: &[u32]) -> Result<Sym, QueryError> {
        Ok(match e {
            BExpr::Not(inner) => match self.eval_pred(inner, rows)? {
                Sym::Const(b) => Sym::Const(!b),
                Sym::Prov(f) => Sym::Prov(f.negate()),
            },
            BExpr::And(terms) => {
                let mut provs = Vec::new();
                for t in terms {
                    match self.eval_pred(t, rows)? {
                        Sym::Const(false) => return Ok(Sym::Const(false)),
                        Sym::Const(true) => {}
                        Sym::Prov(f) => provs.push(f),
                    }
                }
                if provs.is_empty() {
                    Sym::Const(true)
                } else {
                    Sym::Prov(BoolProv::and(provs))
                }
            }
            BExpr::Or(terms) => {
                let mut provs = Vec::new();
                for t in terms {
                    match self.eval_pred(t, rows)? {
                        Sym::Const(true) => return Ok(Sym::Const(true)),
                        Sym::Const(false) => {}
                        Sym::Prov(f) => provs.push(f),
                    }
                }
                if provs.is_empty() {
                    Sym::Const(false)
                } else {
                    Sym::Prov(BoolProv::or(provs))
                }
            }
            BExpr::Cmp { op, left, right } => {
                let lp = matches!(**left, BExpr::Predict { .. });
                let rp = matches!(**right, BExpr::Predict { .. });
                match (lp, rp) {
                    (true, true) => {
                        let (BExpr::Predict { rel: lr }, BExpr::Predict { rel: rr }) =
                            (&**left, &**right)
                        else {
                            unreachable!()
                        };
                        let lv = self.var_of(*lr, rows[*lr]);
                        let rv = self.var_of(*rr, rows[*rr]);
                        let eq = if lv == rv {
                            BoolProv::Const(true)
                        } else {
                            BoolProv::PredEq {
                                left: lv,
                                right: rv,
                            }
                        };
                        match op {
                            CmpOp::Eq => Sym::from(eq),
                            CmpOp::Ne => Sym::from(eq.negate()),
                            _ => {
                                return Err(QueryError::Exec(
                                    "only =/!= between two predict() calls".into(),
                                ))
                            }
                        }
                    }
                    (true, false) | (false, true) => {
                        let (rel, other, op) = if lp {
                            let BExpr::Predict { rel } = &**left else {
                                unreachable!()
                            };
                            (*rel, right, *op)
                        } else {
                            let BExpr::Predict { rel } = &**right else {
                                unreachable!()
                            };
                            // Flip the operator: `c op predict` ⇔ `predict op' c`.
                            let flipped = match op {
                                CmpOp::Lt => CmpOp::Gt,
                                CmpOp::Le => CmpOp::Ge,
                                CmpOp::Gt => CmpOp::Lt,
                                CmpOp::Ge => CmpOp::Le,
                                other => *other,
                            };
                            (*rel, left, flipped)
                        };
                        let val = self.eval_value(other, rows)?;
                        let class = val.as_i64().ok_or_else(|| {
                            QueryError::Exec(format!("predict() compared to non-integer {val}"))
                        })?;
                        let var = self.var_of(rel, rows[rel]);
                        let n_classes = self.model.n_classes() as i64;
                        // `predict = c` atoms are the hot case — build the
                        // single PredIs without the class-set vectors.
                        // (Ne and inequalities keep the class-set OR so
                        // their relaxations and gradients are unchanged.)
                        if op == CmpOp::Eq {
                            return Ok(Sym::from(if (0..n_classes).contains(&class) {
                                BoolProv::PredIs {
                                    var,
                                    class: class as usize,
                                }
                            } else {
                                BoolProv::Const(false)
                            }));
                        }
                        let classes: Vec<usize> = (0..n_classes)
                            .filter(|&c| op.eval(c.cmp(&class)))
                            .map(|c| c as usize)
                            .collect();
                        Sym::from(BoolProv::or(
                            classes
                                .into_iter()
                                .map(|class| BoolProv::PredIs { var, class })
                                .collect(),
                        ))
                    }
                    (false, false) => {
                        let l = self.eval_value(left, rows)?;
                        let r = self.eval_value(right, rows)?;
                        Sym::Const(l.compare(&r).is_some_and(|ord| op.eval(ord)))
                    }
                }
            }
            BExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval_value(expr, rows)?;
                let matched = match v {
                    Value::Str(s) => like_match(&s, pattern),
                    Value::Null => false,
                    other => return Err(QueryError::Exec(format!("LIKE on non-string {other}"))),
                };
                Sym::Const(matched != *negated)
            }
            BExpr::Predict { .. } => {
                return Err(QueryError::Exec("bare predict() as a predicate".into()))
            }
            other => Sym::Const(self.eval_value(other, rows)?.is_truthy()),
        })
    }

    /// Concrete scalar evaluation (predictions evaluate to the hard class).
    pub(crate) fn eval_value(&mut self, e: &BExpr, rows: &[u32]) -> Result<Value, QueryError> {
        Ok(match e {
            BExpr::Lit(v) => v.clone(),
            BExpr::Col { rel, col } => self.table_of(*rel).value(rows[*rel] as usize, *col),
            BExpr::Predict { rel } => {
                let var = self.var_of(*rel, rows[*rel]);
                Value::Int(self.reg.preds()[var as usize] as i64)
            }
            BExpr::Arith { op, left, right } => {
                let l = self.eval_value(left, rows)?;
                let r = self.eval_value(right, rows)?;
                match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => {
                        let both_int = matches!(
                            (&l, &r),
                            (
                                Value::Int(_) | Value::Bool(_),
                                Value::Int(_) | Value::Bool(_)
                            )
                        );
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Ok(Value::Null);
                                }
                                a / b
                            }
                        };
                        if both_int && *op != ArithOp::Div {
                            Value::Int(out as i64)
                        } else {
                            Value::Float(out)
                        }
                    }
                    _ => Value::Null,
                }
            }
            // Boolean-valued expressions in scalar position.
            other => {
                let sym = self.eval_pred(other, rows)?;
                match sym {
                    Sym::Const(b) => Value::Bool(b),
                    Sym::Prov(f) => Value::Bool(f.eval_discrete(self.reg.preds())),
                }
            }
        })
    }

    /// Output column type of an expression — delegates to the binder's
    /// [`infer_type`](crate::binder::infer_type) so naive and optimized
    /// plans (where constant folding may turn `true + 2` into `3`) always
    /// agree on the schema. Statically unknown (NULL-only) expressions
    /// type as Float, the type NULL-producing arithmetic would have had.
    pub(crate) fn infer_type(&self, e: &BExpr) -> ColType {
        crate::binder::infer_type(e, &|rel, col| self.table_of(rel).schema().col(col).ty)
            .unwrap_or(ColType::Float)
    }
}

/// Project a tuple stream into the output table (plus per-row membership
/// formulas in debug mode). NULL output cells are carried by the table's
/// null bitmap.
///
/// Debug mode routes through the incremental capture + refresh pair so a
/// full execution and a [`PreparedQuery::refresh`]
/// (crate::incremental::PreparedQuery::refresh) share one output-assembly
/// path — refresh output is bit-identical to full re-execution by
/// construction.
pub(crate) fn project(
    ctx: &mut EvalCtx,
    tuples: impl Tuples,
    items: &[(BExpr, String)],
) -> Result<QueryOutput, QueryError> {
    if ctx.debug {
        let skel = crate::incremental::capture_select(ctx, tuples, items)?;
        let (table, row_prov) = crate::incremental::refresh_select(&skel, ctx.reg.preds());
        return Ok(QueryOutput {
            table,
            row_prov,
            agg_cells: Vec::new(),
            n_key_cols: 0,
            predvars: std::mem::take(&mut ctx.reg),
        });
    }
    let mut schema = Schema::default();
    for (e, name) in items {
        push_unique(&mut schema, name, ctx.infer_type(e));
    }
    let mut table = Table::empty(schema);
    tuples.emit(&mut |rows, prov| {
        // Normal mode: emit only concretely-true rows, keep no lineage.
        if !prov.eval_discrete(ctx.reg.preds()) {
            return Ok(());
        }
        let mut row = Vec::with_capacity(items.len());
        for (e, _) in items {
            row.push(ctx.eval_value(e, rows)?);
        }
        table.push_row(row, None);
        Ok(())
    })?;
    Ok(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: 0,
        predvars: std::mem::take(&mut ctx.reg),
    })
}

/// Aggregate a tuple stream into grouped output rows and (in debug mode)
/// per-cell provenance sums.
///
/// Like [`project`], debug mode goes through incremental capture +
/// refresh: the group partitions and provenance sums are
/// model-independent, so building them *is* the skeleton capture, and the
/// concrete rows fall out of a discrete refresh against the current hard
/// predictions. The body below is the normal-mode (provenance-free) path.
pub(crate) fn aggregate(
    ctx: &mut EvalCtx,
    tuples: impl Tuples,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
) -> Result<QueryOutput, QueryError> {
    if ctx.debug {
        let (skel, _) = crate::incremental::capture_groups(ctx, tuples, keys, aggs)?;
        let (table, agg_cells) = crate::incremental::refresh_groups(&skel, ctx.reg.preds());
        return Ok(QueryOutput {
            table,
            row_prov: Vec::new(),
            agg_cells,
            n_key_cols: keys.len(),
            predvars: std::mem::take(&mut ctx.reg),
        });
    }
    let mut groups: HashMap<Vec<KeyVal>, GroupAcc> = HashMap::new();
    let n_aggs = aggs.len();
    let new_acc = || GroupAcc {
        members: 0,
        concrete: vec![(0.0, 0); n_aggs],
    };
    // A global aggregate always has its single group, even when empty.
    if keys.is_empty() {
        groups.insert(Vec::new(), new_acc());
    }

    tuples.emit(&mut |rows, prov| {
        // Resolve key parts. Concretely every tuple belongs to exactly
        // one group (predict keys resolve to the hard class).
        let mut col_parts: Vec<Option<KeyVal>> = Vec::with_capacity(keys.len());
        let mut pred_keys: Vec<(usize, VarId)> = Vec::new(); // (key position, var)
        for (pos, k) in keys.iter().enumerate() {
            match k {
                GroupKey::Col { rel, col, .. } => {
                    let v = ctx.table_of(*rel).value(rows[*rel] as usize, *col);
                    col_parts.push(Some(keyval(&v)));
                }
                GroupKey::Predict { rel } => {
                    let var = ctx.var_of(*rel, rows[*rel]);
                    pred_keys.push((pos, var));
                    col_parts.push(None);
                }
            }
        }
        let concrete_member = prov.eval_discrete(ctx.reg.preds());

        // Resolve the tuple's single concrete group key (predict keys
        // take the hard class the model assigns their record).
        let mut key = Vec::with_capacity(keys.len());
        for (pos, part) in col_parts.iter().enumerate() {
            match part {
                Some(kv) => key.push(kv.clone()),
                None => {
                    let var = pred_keys
                        .iter()
                        .find_map(|(p, v)| (*p == pos).then_some(*v))
                        .expect("predict key present");
                    key.push(KeyVal::Int(ctx.reg.preds()[var as usize] as i64));
                }
            }
        }

        let acc = groups.entry(key).or_insert_with(new_acc);
        if concrete_member {
            acc.members += 1;
        }
        for (ai, agg) in aggs.iter().enumerate() {
            // Concrete value this tuple contributes to aggregate `ai`.
            let val: Option<f64> = match &agg.arg {
                BoundAggArg::CountStar => Some(1.0),
                BoundAggArg::Predict { rel } => {
                    let var = ctx.var_of(*rel, rows[*rel]);
                    Some(ctx.reg.preds()[var as usize] as f64)
                }
                BoundAggArg::ScaledPredict { rel, factor } => {
                    let var = ctx.var_of(*rel, rows[*rel]);
                    let w = ctx.eval_value(factor, rows)?.as_f64().ok_or_else(|| {
                        QueryError::Exec("non-numeric factor in scaled predict".into())
                    })?;
                    Some(w * ctx.reg.preds()[var as usize] as f64)
                }
                BoundAggArg::Scalar(e) => ctx.eval_value(e, rows)?.as_f64(),
            };
            let Some(val) = val else {
                continue; // NULL: skipped by SUM/AVG, as in SQL.
            };
            if concrete_member {
                acc.concrete[ai].0 += val;
                acc.concrete[ai].1 += 1;
            }
        }
        Ok(())
    })?;

    // Deterministic output order.
    let mut keys_sorted: Vec<Vec<KeyVal>> = groups.keys().cloned().collect();
    keys_sorted.sort();

    let mut table = Table::empty(agg_schema(ctx, keys, aggs));

    for key in keys_sorted {
        let acc = groups.remove(&key).expect("group exists");
        // Groups with no concrete member are not part of the concrete
        // result; the exception is the global group of an ungrouped
        // aggregate.
        if acc.members == 0 && !keys.is_empty() {
            continue;
        }
        let mut row: Vec<Value> = key.iter().map(keyval_to_value).collect();
        for (ai, agg) in aggs.iter().enumerate() {
            let (sum, cnt) = acc.concrete[ai];
            row.push(agg_value(agg.func, sum, cnt));
        }
        table.push_row(row, None);
    }

    Ok(QueryOutput {
        table,
        row_prov: Vec::new(),
        agg_cells: Vec::new(),
        n_key_cols: keys.len(),
        predvars: std::mem::take(&mut ctx.reg),
    })
}

/// Output schema of an aggregate query: group keys then aggregates.
pub(crate) fn agg_schema(ctx: &EvalCtx, keys: &[GroupKey], aggs: &[BoundAgg]) -> Schema {
    let mut schema = Schema::default();
    for k in keys {
        match k {
            GroupKey::Col { rel, col, name } => {
                let ty = ctx.table_of(*rel).schema().col(*col).ty;
                push_unique(&mut schema, name, ty);
            }
            GroupKey::Predict { .. } => push_unique(&mut schema, "predict", ColType::Int),
        }
    }
    for agg in aggs {
        let ty = if agg.func == AggFunc::Count {
            ColType::Int
        } else {
            ColType::Float
        };
        push_unique(&mut schema, &agg.name, ty);
    }
    schema
}

/// Concrete output value of one aggregate cell.
pub(crate) fn agg_value(func: AggFunc, sum: f64, cnt: usize) -> Value {
    match func {
        AggFunc::Count => Value::Int(cnt as i64),
        AggFunc::Sum => Value::Float(sum),
        AggFunc::Avg => Value::Float(if cnt == 0 { 0.0 } else { sum / cnt as f64 }),
    }
}

/// Append an output column, uniquifying duplicate names (`x`, `x_2`, …)
/// so user-written select lists like `SELECT x, x` or `SELECT *, *`
/// cannot panic the schema builder.
pub(crate) fn push_unique(schema: &mut Schema, name: &str, ty: ColType) {
    if schema.index_of(name).is_none() {
        schema.push(name, ty);
        return;
    }
    let mut i = 2;
    loop {
        let cand = format!("{name}_{i}");
        if schema.index_of(&cand).is_none() {
            schema.push(&cand, ty);
            return;
        }
        i += 1;
    }
}

/// All `len`-tuples over `0..n` (cartesian power).
pub(crate) fn cartesian(n: usize, len: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::with_capacity(out.len() * n);
        for prefix in &out {
            for c in 0..n {
                let mut v = prefix.clone();
                v.push(c);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// The projection/aggregation dispatch both engines share.
pub(crate) fn finalize(
    ctx: &mut EvalCtx,
    tuples: impl Tuples,
    kind: &QueryKind,
) -> Result<QueryOutput, QueryError> {
    match kind {
        QueryKind::Select { items } => project(ctx, tuples, items),
        QueryKind::Aggregate { keys, aggs } => aggregate(ctx, tuples, keys, aggs),
    }
}
