//! Per-table statistics feeding the cost-based planner.
//!
//! The catalog ([`Database`](crate::Database)) recomputes a
//! [`TableStats`] whenever a table changes shape — on
//! [`register`](crate::Database::register) and on every
//! [`append_to`](crate::Database::append_to) — and stamps it with the
//! table's [`TableVersion`] at that moment. The
//! cost model ([`cost`](crate::cost)) reads row counts, per-column
//! distinct estimates, and numeric min/max to estimate scan
//! selectivities and join cardinalities; because an append bumps
//! `delta` and invalidates prepared plans, stale queries are re-bound
//! and re-costed against fresh statistics automatically (see
//! [`QueryCache`](crate::QueryCache)).
//!
//! Distinct counts are exact, computed over the same canonical key
//! space the join machinery uses (NULLs and NaNs excluded, `3` and
//! `3.0` collapse to one key) so an equality selectivity of
//! `1/distinct` means exactly "one hash-index posting list out of
//! `distinct`".

use crate::eval::{join_key, JoinKey};
use crate::table::Table;
use crate::TableVersion;
use std::collections::HashSet;

/// Statistics for one column of a registered table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-NULL, non-NaN values (exact).
    pub distinct: usize,
    /// Number of NULL (or NaN) cells.
    pub null_count: usize,
    /// Smallest numeric value, for `Int`/`Float`/`Bool` columns with at
    /// least one non-NULL cell; `None` for strings or all-NULL columns.
    pub min: Option<f64>,
    /// Largest numeric value, same caveats as `min`.
    pub max: Option<f64>,
}

/// Statistics for one registered table, stamped with the version they
/// were computed at.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count at computation time.
    pub row_count: usize,
    /// One entry per schema column, in schema order.
    pub columns: Vec<ColumnStats>,
    /// The `(gen, delta)` the table had when these stats were computed.
    /// The catalog recomputes on every mutation, so this always matches
    /// the live [`TableVersion`].
    pub version: TableVersion,
}

impl TableStats {
    /// Stats for a table nobody has registered yet: zero rows, no
    /// columns.
    pub fn empty() -> TableStats {
        TableStats {
            row_count: 0,
            columns: Vec::new(),
            version: TableVersion::default(),
        }
    }

    /// Compute fresh statistics for `table`, stamped with `version`.
    ///
    /// One full pass per column: distinct values are collected into the
    /// same canonical key space as hash joins and hash indexes
    /// (numerics by canonical `f64` bits, so `3 = 3.0` counts once;
    /// NULL and NaN are excluded and tallied as `null_count`).
    pub fn compute(table: &Table, version: TableVersion) -> TableStats {
        let n = table.n_rows();
        let columns = (0..table.schema().len())
            .map(|c| column_stats(table, c, n))
            .collect();
        TableStats {
            row_count: n,
            columns,
            version,
        }
    }

    /// Distinct count for column `col`, or 0 when out of range.
    pub fn distinct(&self, col: usize) -> usize {
        self.columns.get(col).map_or(0, |c| c.distinct)
    }
}

fn column_stats(table: &Table, col: usize, n_rows: usize) -> ColumnStats {
    let column = table.column(col);
    let mask = table.null_mask(col);
    let is_null = |row: usize| mask.is_some_and(|m| m[row]);

    if let Some(strs) = column.as_strs() {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut null_count = 0usize;
        for (row, s) in strs.iter().enumerate().take(n_rows) {
            if is_null(row) {
                null_count += 1;
            } else {
                seen.insert(s.as_str());
            }
        }
        return ColumnStats {
            distinct: seen.len(),
            null_count,
            min: None,
            max: None,
        };
    }

    // Numeric family (Int/Float/Bool): distinct over canonical f64 key
    // bits — exactly the key space hash joins and hash indexes use.
    let mut keys: HashSet<u64> = HashSet::new();
    let mut null_count = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for row in 0..n_rows {
        if is_null(row) {
            null_count += 1;
            continue;
        }
        match join_key(&column.get(row)) {
            Some(JoinKey::Num(bits)) => {
                keys.insert(bits);
                let f = f64::from_bits(bits);
                min = min.min(f);
                max = max.max(f);
            }
            Some(JoinKey::Str(_)) => unreachable!("string in a numeric column"),
            None => null_count += 1, // NaN keys like NULL: no index entry
        }
    }
    ColumnStats {
        distinct: keys.len(),
        null_count,
        min: min.is_finite().then_some(min),
        max: max.is_finite().then_some(max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColType, Column, Schema};
    use crate::Value;

    fn t() -> Table {
        Table::from_columns(
            Schema::new(&[
                ("x", ColType::Int),
                ("f", ColType::Float),
                ("s", ColType::Str),
            ]),
            vec![
                Column::Int(vec![1, 2, 2, 3]),
                Column::Float(vec![1.0, 2.0, 2.0, -0.5]),
                Column::Str(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
            ],
        )
    }

    #[test]
    fn distinct_min_max_per_column() {
        let s = TableStats::compute(&t(), TableVersion { gen: 1, delta: 2 });
        assert_eq!(s.row_count, 4);
        assert_eq!(s.version, TableVersion { gen: 1, delta: 2 });
        assert_eq!(s.columns[0].distinct, 3);
        assert_eq!(s.columns[0].min, Some(1.0));
        assert_eq!(s.columns[0].max, Some(3.0));
        assert_eq!(s.columns[1].distinct, 3);
        assert_eq!(s.columns[1].min, Some(-0.5));
        assert_eq!(s.columns[2].distinct, 3);
        assert_eq!(s.columns[2].min, None);
        assert_eq!(s.columns[2].max, None);
    }

    #[test]
    fn nulls_are_counted_not_distinct() {
        let mut table = Table::empty(Schema::new(&[("x", ColType::Int)]));
        table.push_row(vec![Value::Int(5)], None);
        table.push_row(vec![Value::Null], None);
        table.push_row(vec![Value::Null], None);
        let s = TableStats::compute(&table, TableVersion::default());
        assert_eq!(s.columns[0].distinct, 1);
        assert_eq!(s.columns[0].null_count, 2);
        assert_eq!(s.columns[0].min, Some(5.0));
    }

    #[test]
    fn int_and_float_collapse_to_one_key() {
        let table = Table::from_columns(
            Schema::new(&[("f", ColType::Float)]),
            vec![Column::Float(vec![3.0, 3.0, 0.0, -0.0])],
        );
        let s = TableStats::compute(&table, TableVersion::default());
        // 3.0 and 3.0 collapse; 0.0 and -0.0 collapse: two keys.
        assert_eq!(s.columns[0].distinct, 2);
    }

    #[test]
    fn empty_table_has_empty_ranges() {
        let s = TableStats::compute(
            &Table::empty(Schema::new(&[("x", ColType::Int)])),
            TableVersion::default(),
        );
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].distinct, 0);
        assert_eq!(s.columns[0].min, None);
    }
}
