//! Prediction variables: the bridge between the query and the model.
//!
//! Each distinct `(table, row)` a model inference touches during query
//! execution is assigned one [`VarId`] — the paper's *prediction view*
//! entry (Figure 2, step ①). The registry also caches the model's hard
//! prediction for each variable so discrete evaluation is cheap, and
//! remembers where the features came from so downstream crates can compute
//! `∇θ p_c(x_var)` for every variable.
//!
//! Deduplication is by underlying table (not alias), so a self-join sees
//! one variable per record — predicting the same record twice is the same
//! random variable, as the paper's provenance semantics require.

use crate::prov::VarId;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a prediction variable's features come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredVarInfo {
    /// Catalog name of the base table.
    pub table: String,
    /// Row index within that table.
    pub row: usize,
}

/// Registry of prediction variables created during one query execution.
///
/// The lookup map is keyed table-first so the per-tuple hot path
/// (`var_for` on an existing variable) hashes a borrowed `&str` — no
/// `String` allocation per joined tuple.
///
/// The variable structure (`infos`, lookup map) sits behind [`Arc`]s:
/// cloning a registry — which the incremental refresh path does once per
/// iteration via [`PredVarRegistry::with_preds`] — shares it instead of
/// re-allocating every source string and map node. Mutation through
/// [`PredVarRegistry::var_for`] copy-on-writes only when shared, so
/// ordinary execution never pays for it.
#[derive(Debug, Clone, Default)]
pub struct PredVarRegistry {
    infos: Arc<Vec<PredVarInfo>>,
    map: Arc<HashMap<String, HashMap<usize, VarId>>>,
    preds: Vec<usize>,
}

impl PredVarRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the same variables — structurally *shared*, not
    /// copied — and different hard predictions: the per-iteration refresh
    /// registry, built in O(number of variables) with no per-variable
    /// allocation. This is what keeps prediction-variable ids stable
    /// across incremental refreshes: ids are positional in the shared
    /// `infos`, never re-derived from lookup order.
    ///
    /// # Panics
    /// Panics if `preds` does not supply one prediction per variable.
    pub fn with_preds(&self, preds: Vec<usize>) -> Self {
        assert_eq!(
            preds.len(),
            self.infos.len(),
            "one hard prediction per variable"
        );
        PredVarRegistry {
            infos: Arc::clone(&self.infos),
            map: Arc::clone(&self.map),
            preds,
        }
    }

    /// Get-or-create the variable for `(table, row)`; `hard_pred` supplies
    /// the model's argmax prediction on first sight (a closure so callers
    /// only run inference for genuinely new variables).
    pub fn var_for(&mut self, table: &str, row: usize, hard_pred: impl FnOnce() -> usize) -> VarId {
        if let Some(&v) = self.map.get(table).and_then(|rows| rows.get(&row)) {
            return v;
        }
        let id = self.infos.len() as VarId;
        Arc::make_mut(&mut self.infos).push(PredVarInfo {
            table: table.to_string(),
            row,
        });
        Arc::make_mut(&mut self.map)
            .entry(table.to_string())
            .or_default()
            .insert(row, id);
        self.preds.push(hard_pred());
        id
    }

    /// Look up an existing variable without creating one.
    pub fn lookup(&self, table: &str, row: usize) -> Option<VarId> {
        self.map.get(table).and_then(|rows| rows.get(&row)).copied()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True when no variables were created.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Hard (argmax) prediction per variable.
    pub fn preds(&self) -> &[usize] {
        &self.preds
    }

    /// Source info per variable.
    pub fn infos(&self) -> &[PredVarInfo] {
        &self.infos
    }

    /// Info for one variable.
    pub fn info(&self, var: VarId) -> &PredVarInfo {
        &self.infos[var as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_are_deduplicated_per_table_row() {
        let mut reg = PredVarRegistry::new();
        let mut calls = 0;
        let a = reg.var_for("mnist", 3, || {
            calls += 1;
            7
        });
        let b = reg.var_for("mnist", 3, || {
            calls += 1;
            9
        });
        assert_eq!(a, b);
        assert_eq!(calls, 1, "inference must run once per variable");
        assert_eq!(reg.preds()[a as usize], 7);
        let c = reg.var_for("mnist", 4, || 1);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut reg = PredVarRegistry::new();
        assert_eq!(reg.lookup("t", 0), None);
        let v = reg.var_for("t", 0, || 0);
        assert_eq!(reg.lookup("t", 0), Some(v));
        assert_eq!(
            reg.info(v),
            &PredVarInfo {
                table: "t".into(),
                row: 0
            }
        );
    }

    #[test]
    fn with_preds_shares_structure_and_keeps_ids() {
        let mut reg = PredVarRegistry::new();
        let a = reg.var_for("t", 0, || 0);
        let b = reg.var_for("t", 5, || 1);
        let refreshed = reg.with_preds(vec![1, 0]);
        assert_eq!(refreshed.lookup("t", 0), Some(a));
        assert_eq!(refreshed.lookup("t", 5), Some(b));
        assert_eq!(refreshed.preds(), &[1, 0]);
        assert_eq!(refreshed.infos(), reg.infos());
        // A structurally shared registry can still grow: mutation
        // copy-on-writes and leaves the original untouched.
        let mut grown = refreshed.clone();
        let c = grown.var_for("t", 9, || 2);
        assert_eq!(c, 2);
        assert_eq!(grown.len(), 3);
        assert_eq!(reg.len(), 2, "original untouched");
        assert_eq!(reg.lookup("t", 9), None);
    }

    #[test]
    fn distinct_tables_get_distinct_vars() {
        let mut reg = PredVarRegistry::new();
        let a = reg.var_for("left", 0, || 0);
        let b = reg.var_for("right", 0, || 0);
        assert_ne!(a, b);
    }
}
