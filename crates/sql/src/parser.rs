//! Recursive-descent parser for the SPJA dialect.
//!
//! Grammar (informal):
//!
//! ```text
//! select   := SELECT items FROM table_ref (',' table_ref | JOIN table_ref ON expr)*
//!             [WHERE expr] [GROUP BY expr (',' expr)*]
//! items    := '*' | item (',' item)*
//! item     := agg '(' ('*' | expr) ')' [AS ident] | expr [AS ident]
//! expr     := or_expr
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | cmp_expr
//! cmp_expr := add_expr [(cmpop add_expr | [NOT] LIKE strlit)]
//! add_expr := mul_expr (('+'|'-') mul_expr)*
//! mul_expr := unary (('*'|'/') unary)*
//! unary    := '-' unary | primary
//! primary  := literal | predict '(' ('*' | ident) ')' | ident ['.' ident]
//!           | '(' expr ')' | TRUE | FALSE | NULL
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, SqlError, Token};
use crate::value::Value;

/// Parse one SELECT statement.
pub fn parse_select(input: &str) -> Result<SelectStmt, SqlError> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    toks: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SqlError> {
        Err(SqlError {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!(
                "expected {}, found {}",
                kw.to_uppercase(),
                self.peek()
            ))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Token::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SqlError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(format!("expected '{sym}', found {}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("select")?;
        let items = self.select_items()?;
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        let mut join_conds = Vec::new();
        loop {
            if self.eat_sym(",") {
                from.push(self.table_ref()?);
            } else if self.eat_kw("join")
                || (self.eat_kw("inner") && self.expect_kw("join").is_ok())
            {
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_conds.push(self.expr()?);
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_sym(",") {
                group_by.push(self.expr()?);
            }
        }
        Ok(SelectStmt {
            items,
            from,
            join_conds,
            where_clause,
            group_by,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = vec![self.select_item_or_star()?];
        while self.eat_sym(",") {
            items.push(self.select_item_or_star()?);
        }
        Ok(items)
    }

    fn select_item_or_star(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_sym("*") {
            Ok(SelectItem::Star)
        } else {
            self.select_item()
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        // Aggregate?
        let func = match self.peek() {
            t if t.is_kw("count") => Some(AggFunc::Count),
            t if t.is_kw("sum") => Some(AggFunc::Sum),
            t if t.is_kw("avg") => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = func {
            // Only treat as an aggregate when followed by '('.
            if matches!(
                self.toks.get(self.pos + 1).map(|(t, _)| t),
                Some(Token::Sym("("))
            ) {
                self.bump(); // func name
                self.expect_sym("(")?;
                let expr = if self.eat_sym("*") {
                    if func != AggFunc::Count {
                        return self.err("only COUNT may take '*'");
                    }
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_sym(")")?;
                let alias = self.optional_alias()?;
                return Ok(SelectItem::Agg { func, expr, alias });
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let name = self.ident()?;
        // Optional alias: `AS ident` or a bare identifier that is not a
        // clause keyword.
        let alias = if self.eat_kw("as") {
            self.ident()?
        } else {
            match self.peek() {
                Token::Ident(s)
                    if !matches!(
                        s.as_str(),
                        "where" | "group" | "join" | "inner" | "on" | "as"
                    ) =>
                {
                    let a = s.clone();
                    self.bump();
                    a
                }
                _ => name.clone(),
            }
        };
        Ok(TableRef { name, alias })
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let first = self.and_expr()?;
        if !self.peek().is_kw("or") {
            return Ok(first);
        }
        let mut terms = vec![first];
        while self.eat_kw("or") {
            terms.push(self.and_expr()?);
        }
        Ok(Expr::Or(terms))
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let first = self.not_expr()?;
        if !self.peek().is_kw("and") {
            return Ok(first);
        }
        let mut terms = vec![first];
        while self.eat_kw("and") {
            terms.push(self.not_expr()?);
        }
        Ok(Expr::And(terms))
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        let left = self.add_expr()?;
        // [NOT] LIKE
        let negated = if self.peek().is_kw("not") {
            // Look ahead for LIKE; plain NOT belongs to not_expr and cannot
            // appear after an operand, so this is unambiguous.
            self.bump();
            self.expect_kw("like")?;
            true
        } else if self.eat_kw("like") {
            false
        } else {
            let op = match self.peek() {
                Token::Sym("=") => Some(CmpOp::Eq),
                Token::Sym("!=") | Token::Sym("<>") => Some(CmpOp::Ne),
                Token::Sym("<") => Some(CmpOp::Lt),
                Token::Sym("<=") => Some(CmpOp::Le),
                Token::Sym(">") => Some(CmpOp::Gt),
                Token::Sym(">=") => Some(CmpOp::Ge),
                _ => None,
            };
            return match op {
                Some(op) => {
                    self.bump();
                    let right = self.add_expr()?;
                    Ok(Expr::Cmp {
                        op,
                        left: Box::new(left),
                        right: Box::new(right),
                    })
                }
                None => Ok(left),
            };
        };
        match self.bump() {
            Token::Str(pattern) => Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            }),
            other => self.err(format!("LIKE expects a string literal, found {other}")),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Sym("+") => ArithOp::Add,
                Token::Sym("-") => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Sym("*") => ArithOp::Mul,
                Token::Sym("/") => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_sym("-") {
            let inner = self.unary()?;
            // Constant-fold negative literals for cleaner ASTs.
            return Ok(match inner {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
                other => Expr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(Expr::Literal(Value::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(v)))
            }
            Token::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(v)))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Token::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    "predict" => {
                        self.expect_sym("(")?;
                        let rel = if self.eat_sym("*") {
                            None
                        } else {
                            let r = self.ident()?;
                            // Allow predict(alias.*).
                            if self.eat_sym(".") {
                                self.expect_sym("*")?;
                            }
                            Some(r)
                        };
                        self.expect_sym(")")?;
                        return Ok(Expr::Predict { rel });
                    }
                    _ => {}
                }
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => self.err(format!("unexpected token {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_count_filter_query() {
        // Q1 from the paper's Table 2.
        let q = parse_select("SELECT COUNT(*) FROM dblp WHERE predict(*) = 1").unwrap();
        assert!(q.is_aggregate());
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].alias, "dblp");
        match q.where_clause.unwrap() {
            Expr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } => {
                assert_eq!(*left, Expr::Predict { rel: None });
                assert_eq!(*right, Expr::Literal(Value::Int(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_like_and_conjunction() {
        // Q2 shape.
        let q =
            parse_select("SELECT COUNT(*) FROM enron WHERE predict(*) = 1 AND text LIKE '%http%'")
                .unwrap();
        match q.where_clause.unwrap() {
            Expr::And(terms) => {
                assert_eq!(terms.len(), 2);
                assert!(
                    matches!(&terms[1], Expr::Like { negated: false, pattern, .. } if pattern == "%http%")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_join_with_predict_equality() {
        // Q3 shape.
        let q =
            parse_select("SELECT * FROM mnist l, mnist r WHERE predict(l) = predict(r)").unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].alias, "l");
        assert_eq!(q.from[1].alias, "r");
        assert!(matches!(q.items[0], SelectItem::Star));
    }

    #[test]
    fn parses_explicit_join_on() {
        let q = parse_select(
            "SELECT COUNT(*) FROM users u JOIN logins l ON u.id = l.id WHERE l.active = true",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.join_conds.len(), 1);
    }

    #[test]
    fn parses_group_by_and_avg_predict() {
        // Q6 shape.
        let q = parse_select("SELECT AVG(predict(*)) FROM adult GROUP BY gender").unwrap();
        assert_eq!(q.group_by.len(), 1);
        match &q.items[0] {
            SelectItem::Agg {
                func: AggFunc::Avg,
                expr: Some(Expr::Predict { rel: None }),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_by_predict() {
        // Q5 shape from Table 1.
        let q = parse_select("SELECT COUNT(*) FROM r GROUP BY predict(*)").unwrap();
        assert_eq!(q.group_by, vec![Expr::Predict { rel: None }]);
    }

    #[test]
    fn parses_aliases_and_arithmetic() {
        let q = parse_select("SELECT price * 2 AS doubled, name FROM items WHERE price >= 1.5")
            .unwrap();
        assert_eq!(q.items.len(), 2);
        match &q.items[0] {
            SelectItem::Expr {
                alias: Some(a),
                expr: Expr::Arith {
                    op: ArithOp::Mul, ..
                },
            } => {
                assert_eq!(a, "doubled")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_not_like_and_or() {
        let q =
            parse_select("SELECT COUNT(*) FROM t WHERE a NOT LIKE '%x%' OR NOT b = 1 OR c != 2")
                .unwrap();
        match q.where_clause.unwrap() {
            Expr::Or(terms) => assert_eq!(terms.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_select("SELECT COUNT(*) FROM t WHERE a = -3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Cmp { right, .. } => assert_eq!(*right, Expr::Literal(Value::Int(-3))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT * FROM").is_err());
        assert!(parse_select("SELECT * FROM t WHERE").is_err());
        assert!(parse_select("SELECT * FROM t extra garbage beyond").is_err());
        assert!(parse_select("SELECT SUM(*) FROM t").is_err());
        assert!(parse_select("SELECT * FROM t WHERE a LIKE 5").is_err());
    }

    #[test]
    fn predict_star_dot_syntax() {
        let q = parse_select("SELECT COUNT(*) FROM u WHERE predict(u.*) = 0").unwrap();
        match q.where_clause.unwrap() {
            Expr::Cmp { left, .. } => assert_eq!(
                *left,
                Expr::Predict {
                    rel: Some("u".into())
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }
}
