//! The cost-based phase of the optimizer: join ordering, access-path
//! selection, and cardinality estimation.
//!
//! Runs after the rule-based rewrites in [`optimize`](mod@crate::optimize)
//! and consumes the per-table [`TableStats`]
//! the catalog maintains. Three steps, each gated by its own
//! [`OptimizerConfig`](crate::OptimizerConfig) flag:
//!
//! 1. [`reorder`] — pick the cheapest **left-deep** join order instead
//!    of FROM order. The search runs the greedy chain from every
//!    possible starting relation and keeps the cheapest result, but
//!    only adopts it when it strictly beats the original order (ties
//!    keep FROM order, so plans never churn without a reason). The
//!    per-step cost charges building a hash table over the incoming
//!    relation (weighted, since building is pricier than probing),
//!    probing it with the accumulated tuples, and materializing the
//!    estimated output — which is what makes an accidental cross
//!    product (no connecting equi-key) catastrophically expensive and
//!    pushes bridge relations early.
//! 2. [`choose_paths`] — turn scan filters into
//!    [`AccessPath::IndexScan`]s where a matching secondary index
//!    exists (hash for `=`, sorted for ranges), and join steps into
//!    [`JoinAlgo::IndexNestedLoop`] when the inner side of a
//!    single-key equi-join is a bare indexed column scanned without
//!    filters.
//! 3. [`annotate`] — stamp the plan with [`PlanEstimates`]: expected
//!    rows out of every scan and every join step, mirroring the
//!    engines' actual join schedule so `EXPLAIN (analyze)` can print
//!    `est=…` next to `actual=…`.
//!
//! Selectivity model (deliberately classical): `col = lit` selects
//! `1/distinct`; ranges interpolate the literal's position between the
//! column's min and max; everything else defaults to ⅓. Equi-joins
//! select `1/max(distinct_left, distinct_right)`; steps with no
//! equi-key multiply cardinalities outright. `predict()` conjuncts are
//! costed at selectivity 1 — in debug mode they never prune (they only
//! contribute provenance formulas), and the model's behavior is
//! unknowable at plan time anyway.

use crate::ast::CmpOp;
use crate::binder::{BExpr, BoundAggArg, GroupKey, QueryKind};
use crate::catalog::Database;
use crate::index::IndexKind;
use crate::plan::{AccessPath, JoinAlgo, PlanEstimates, QueryPlan};
use crate::stats::TableStats;
use crate::value::Value;
use std::collections::BTreeSet;

/// Fallback selectivity for predicates the model cannot decompose.
const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Selectivity guess for `LIKE` patterns.
const LIKE_SEL: f64 = 0.25;
/// Cost weight of building a hash table versus probing it once.
const BUILD_WEIGHT: f64 = 2.0;
/// Distinct-count guess for equi-key expressions that are not bare
/// columns (e.g. `a.x + 1 = b.y`).
const EXPR_DISTINCT: f64 = 10.0;

/// Decompose a scan filter into `(column, op, literal)` when it has the
/// `col <op> lit` shape (either orientation). This is the single shape
/// both the planner (index eligibility, selectivity) and the executor
/// (index probes) understand, so they can never disagree.
pub(crate) fn probe_shape(e: &BExpr) -> Option<(usize, CmpOp, &Value)> {
    let BExpr::Cmp { op, left, right } = e else {
        return None;
    };
    match (&**left, &**right) {
        (BExpr::Col { col, .. }, BExpr::Lit(v)) => Some((*col, *op, v)),
        (BExpr::Lit(v), BExpr::Col { col, .. }) => Some((*col, flip(*op), v)),
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Estimated fraction of rows a single-relation predicate keeps.
fn filter_selectivity(stats: &TableStats, f: &BExpr) -> f64 {
    if matches!(f, BExpr::Like { .. }) {
        return LIKE_SEL;
    }
    let Some((col, op, lit)) = probe_shape(f) else {
        return DEFAULT_SEL;
    };
    let Some(cs) = stats.columns.get(col) else {
        return DEFAULT_SEL;
    };
    match op {
        CmpOp::Eq => {
            if cs.distinct == 0 {
                0.0
            } else {
                1.0 / cs.distinct as f64
            }
        }
        CmpOp::Ne => {
            if cs.distinct == 0 {
                0.0
            } else {
                1.0 - 1.0 / cs.distinct as f64
            }
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let (Some(min), Some(max), Some(v)) = (cs.min, cs.max, lit.as_f64()) else {
                return DEFAULT_SEL;
            };
            if !v.is_finite() {
                return DEFAULT_SEL;
            }
            let below = if max > min {
                ((v - min) / (max - min)).clamp(0.0, 1.0)
            } else {
                // Single-valued column: the literal is either fully
                // below, at, or above it.
                if v < min {
                    0.0
                } else {
                    1.0
                }
            };
            match op {
                CmpOp::Lt | CmpOp::Le => below,
                _ => 1.0 - below,
            }
        }
    }
}

/// Estimated rows surviving relation `rel`'s scan filters.
fn scan_estimate(plan: &QueryPlan, db: &Database, rel: usize) -> f64 {
    let stats = db.stats_of(plan.rels[rel].id);
    let mut rows = stats.row_count as f64;
    for f in &plan.scan_filters[rel] {
        rows *= filter_selectivity(stats, f);
    }
    rows
}

/// Per-conjunct facts the order search needs, computed once.
struct ConjInfo {
    rels: BTreeSet<usize>,
    predict: bool,
    /// For a two-sided equality: `(left rels, left distinct, right
    /// rels, right distinct)` where distinct is the stats count of a
    /// bare column or [`EXPR_DISTINCT`] for anything else.
    eq: Option<(BTreeSet<usize>, f64, BTreeSet<usize>, f64)>,
}

fn conj_info(plan: &QueryPlan, db: &Database) -> Vec<ConjInfo> {
    plan.conjuncts
        .iter()
        .map(|c| {
            let mut rels = BTreeSet::new();
            c.rels_used(&mut rels);
            let eq = match c {
                BExpr::Cmp {
                    op: CmpOp::Eq,
                    left,
                    right,
                } if crate::optimize::is_equi_join(c) => {
                    let side = |e: &BExpr| {
                        let mut rs = BTreeSet::new();
                        e.rels_used(&mut rs);
                        let d = match e {
                            BExpr::Col { rel, col } => {
                                (db.stats_of(plan.rels[*rel].id).distinct(*col) as f64).max(1.0)
                            }
                            _ => EXPR_DISTINCT,
                        };
                        (rs, d)
                    };
                    let (ls, ld) = side(left);
                    let (rs, rd) = side(right);
                    Some((ls, ld, rs, rd))
                }
                _ => None,
            };
            ConjInfo {
                rels,
                predict: c.contains_predict(),
                eq,
            }
        })
        .collect()
}

/// Selectivity of applying conjunct `ci` once its footprint is in
/// scope. `stats` is the stats of the single relation for
/// single-relation conjuncts (used for the finer-grained estimate).
fn conjunct_selectivity(info: &ConjInfo, plan: &QueryPlan, db: &Database, c: &BExpr) -> f64 {
    if info.predict {
        return 1.0;
    }
    if let Some((_, ld, _, rd)) = &info.eq {
        return 1.0 / ld.max(*rd).max(1.0);
    }
    if info.rels.len() == 1 {
        let rel = *info.rels.iter().next().unwrap();
        return filter_selectivity(db.stats_of(plan.rels[rel].id), c);
    }
    DEFAULT_SEL
}

/// Total cost of executing the relations in `order` (indices into
/// `plan.rels`): per step, a weighted hash build over the incoming
/// relation, a probe per accumulated tuple, and the estimated output.
fn order_cost(
    plan: &QueryPlan,
    db: &Database,
    scan_est: &[f64],
    conj: &[ConjInfo],
    order: &[usize],
) -> f64 {
    let mut in_scope: BTreeSet<usize> = BTreeSet::new();
    let mut acc = 0.0f64;
    let mut cost = 0.0f64;
    for (step, &r) in order.iter().enumerate() {
        let mut out = if step == 0 {
            scan_est[r]
        } else {
            acc * scan_est[r]
        };
        for (ci, info) in conj.iter().enumerate() {
            if info.rels.contains(&r) && info.rels.iter().all(|t| *t == r || in_scope.contains(t)) {
                out *= conjunct_selectivity(info, plan, db, &plan.conjuncts[ci]);
            }
        }
        if step > 0 {
            cost += BUILD_WEIGHT * scan_est[r] + acc + out;
        }
        acc = out;
        in_scope.insert(r);
    }
    cost
}

/// Replace FROM order with the cheapest left-deep order the greedy
/// search finds, when it strictly beats the original (ties and
/// single-relation plans keep FROM order). Every relation index inside
/// the plan — conjuncts, projection, grouping, per-relation vectors —
/// is rewritten to the new order.
pub fn reorder(plan: &mut QueryPlan, db: &Database) {
    let n = plan.rels.len();
    if n <= 1 {
        return;
    }
    let scan_est: Vec<f64> = (0..n).map(|r| scan_estimate(plan, db, r)).collect();
    let conj = conj_info(plan, db);
    let cost_of = |order: &[usize]| order_cost(plan, db, &scan_est, &conj, order);

    let mut best: Option<(f64, Vec<usize>)> = None;
    for start in 0..n {
        let mut order = vec![start];
        let mut remaining: Vec<usize> = (0..n).filter(|&r| r != start).collect();
        while !remaining.is_empty() {
            // Greedy: extend with the relation that makes the cheapest
            // next prefix; ties keep the smallest original index.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &r)| {
                    let mut candidate = order.clone();
                    candidate.push(r);
                    (pos, cost_of(&candidate))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            order.push(remaining.remove(pos));
        }
        let total = cost_of(&order);
        if best.as_ref().is_none_or(|(c, _)| total < *c) {
            best = Some((total, order));
        }
    }

    let identity: Vec<usize> = (0..n).collect();
    let original = cost_of(&identity);
    if let Some((cost, order)) = best {
        // Strict improvement only: never churn the plan on a tie.
        if order != identity && cost < original * (1.0 - 1e-9) {
            permute(plan, &order);
        }
    }
}

/// Rewrite the plan so `order[i]` (an old relation index) becomes
/// relation `i`.
fn permute(plan: &mut QueryPlan, order: &[usize]) {
    let mut new_index = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        new_index[old] = new;
    }
    let pick = |old: usize| new_index[old];

    plan.rels = order.iter().map(|&o| plan.rels[o].clone()).collect();
    plan.scan_filters = order
        .iter()
        .map(|&o| std::mem::take(&mut plan.scan_filters[o]))
        .collect();
    plan.used_cols = order
        .iter()
        .map(|&o| std::mem::take(&mut plan.used_cols[o]))
        .collect();
    plan.access = order.iter().map(|&o| plan.access[o]).collect();
    for filters in &mut plan.scan_filters {
        for f in filters {
            remap_expr(f, &new_index);
        }
    }
    for c in &mut plan.conjuncts {
        remap_expr(c, &new_index);
    }
    match &mut plan.kind {
        QueryKind::Select { items } => {
            for (e, _) in items {
                remap_expr(e, &new_index);
            }
        }
        QueryKind::Aggregate { keys, aggs } => {
            for k in keys {
                match k {
                    GroupKey::Col { rel, .. } | GroupKey::Predict { rel } => *rel = pick(*rel),
                }
            }
            for a in aggs {
                match &mut a.arg {
                    BoundAggArg::CountStar => {}
                    BoundAggArg::Scalar(e) => remap_expr(e, &new_index),
                    BoundAggArg::Predict { rel } => *rel = pick(*rel),
                    BoundAggArg::ScaledPredict { rel, factor } => {
                        *rel = pick(*rel);
                        remap_expr(factor, &new_index);
                    }
                }
            }
        }
    }
}

fn remap_expr(e: &mut BExpr, new_index: &[usize]) {
    match e {
        BExpr::Lit(_) => {}
        BExpr::Col { rel, .. } | BExpr::Predict { rel } => *rel = new_index[*rel],
        BExpr::Not(inner) => remap_expr(inner, new_index),
        BExpr::And(terms) | BExpr::Or(terms) => {
            for t in terms {
                remap_expr(t, new_index);
            }
        }
        BExpr::Cmp { left, right, .. } | BExpr::Arith { left, right, .. } => {
            remap_expr(left, new_index);
            remap_expr(right, new_index);
        }
        BExpr::Like { expr, .. } => remap_expr(expr, new_index),
    }
}

/// Pick index access paths and index-nested-loop join steps wherever
/// the catalog has a matching secondary index. Both decisions are
/// re-validated by the executor against the live catalog, so a plan
/// whose index has since vanished silently degrades to a full scan or
/// hash join with identical output.
pub fn choose_paths(plan: &mut QueryPlan, db: &Database) {
    for rel in 0..plan.rels.len() {
        let id = plan.rels[rel].id;
        let stats = db.stats_of(id);
        let mut best: Option<(f64, AccessPath)> = None;
        for (fi, f) in plan.scan_filters[rel].iter().enumerate() {
            let Some((col, op, lit)) = probe_shape(f) else {
                continue;
            };
            let kind = match op {
                // A hash probe is consistent with `=` for every literal
                // (NULL/NaN/type-mismatched probes find nothing, exactly
                // like the predicate evaluates to false).
                CmpOp::Eq => IndexKind::Hash,
                // Range probes need a numeric literal; anything else
                // stays on the sequential path.
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge if lit.as_f64().is_some() => {
                    IndexKind::Sorted
                }
                _ => continue,
            };
            if db.index_on(id, col, kind).is_none() {
                continue;
            }
            let sel = filter_selectivity(stats, f);
            if best.as_ref().is_none_or(|(s, _)| sel < *s) {
                best = Some((
                    sel,
                    AccessPath::IndexScan {
                        filter: fi,
                        col,
                        kind,
                    },
                ));
            }
        }
        if let Some((_, path)) = best {
            plan.access[rel] = path;
        }
    }

    // Index-nested-loop: single-key equi step whose build side is a bare
    // hash-indexed column and whose inner scan is unfiltered (the index
    // covers the whole table).
    for (si, keys) in crate::eval::join_schedule(plan).iter().enumerate() {
        let rel = si + 1;
        if keys.len() != 1 || !plan.scan_filters[rel].is_empty() {
            continue;
        }
        let (_, build, _) = &keys[0];
        let BExpr::Col { rel: brel, col } = build else {
            continue;
        };
        if *brel != rel {
            continue;
        }
        if db
            .index_on(plan.rels[rel].id, *col, IndexKind::Hash)
            .is_some()
        {
            plan.join_algos[si] = JoinAlgo::IndexNestedLoop { col: *col };
        }
    }
}

/// Stamp the plan with [`PlanEstimates`], mirroring the engines' join
/// schedule: `scan_rows[r]` is the estimate after relation `r`'s scan
/// filters; `join_rows[s]` is the estimate straight out of join step
/// `s` — equi-keys claimed by the hash join applied, residual conjuncts
/// not yet — which is exactly the row count a traced execution reports
/// for that step.
pub fn annotate(plan: &mut QueryPlan, db: &Database) {
    let n = plan.rels.len();
    let scan_est: Vec<f64> = (0..n).map(|r| scan_estimate(plan, db, r)).collect();
    let conj = conj_info(plan, db);
    let schedule = crate::eval::join_schedule(plan);
    let claimed: BTreeSet<usize> = schedule.iter().flatten().map(|(_, _, ci)| *ci).collect();
    let as_rows = |x: f64| x.round().max(0.0) as u64;

    let mut applied: BTreeSet<usize> = BTreeSet::new();
    // Residual conjuncts whose footprint fits `0..=rel`, applied after
    // the join step (mirrors `apply_conjuncts`).
    let apply_residuals = |acc: f64, rel: usize, applied: &mut BTreeSet<usize>| -> f64 {
        let mut out = acc;
        for (ci, info) in conj.iter().enumerate() {
            if !applied.contains(&ci)
                && !claimed.contains(&ci)
                && info.rels.iter().all(|&t| t <= rel)
            {
                applied.insert(ci);
                out *= conjunct_selectivity(info, plan, db, &plan.conjuncts[ci]);
            }
        }
        out
    };

    let mut acc = scan_est.first().copied().unwrap_or(0.0);
    acc = apply_residuals(acc, 0, &mut applied);
    let mut join_rows = Vec::with_capacity(n.saturating_sub(1));
    for rel in 1..n {
        let mut out = acc * scan_est[rel];
        for (_, _, ci) in &schedule[rel - 1] {
            applied.insert(*ci);
            out *= conjunct_selectivity(&conj[*ci], plan, db, &plan.conjuncts[*ci]);
        }
        join_rows.push(as_rows(out));
        acc = apply_residuals(out, rel, &mut applied);
    }
    plan.est = Some(PlanEstimates {
        scan_rows: scan_est.iter().map(|&x| as_rows(x)).collect(),
        join_rows,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColType, Column, Schema, Table};
    use crate::{bind, optimize_with, parse_select, OptimizerConfig};

    fn ints(name: &str, vals: Vec<i64>) -> Table {
        Table::from_columns(
            Schema::new(&[(name, ColType::Int)]),
            vec![Column::Int(vals)],
        )
    }

    fn db3() -> Database {
        // big_a and big_b are only connected through the small bridge:
        // FROM order (big_a, big_b, bridge) cross-joins the two big
        // tables first.
        let mut db = Database::new();
        db.register("big_a", ints("x", (0..200).collect()));
        db.register("big_b", ints("y", (0..200).collect()));
        db.register("bridge", ints("z", (0..10).collect()));
        db
    }

    fn plan_for(sql: &str, db: &Database, cfg: &OptimizerConfig) -> QueryPlan {
        let stmt = parse_select(sql).unwrap();
        let bound = bind(&stmt, db).unwrap();
        optimize_with(bound, db, cfg)
    }

    #[test]
    fn reorder_avoids_the_cross_product() {
        let db = db3();
        let sql = "SELECT count(*) FROM big_a a, big_b b, bridge c \
                   WHERE a.x = c.z AND b.y = c.z";
        let plan = plan_for(sql, &db, &OptimizerConfig::default());
        let aliases: Vec<&str> = plan.rels.iter().map(|r| r.alias.as_str()).collect();
        // Any order that puts the bridge before one of the big tables
        // avoids the cross product; FROM order (a, b, c) does not.
        assert_ne!(aliases, ["a", "b", "c"], "cross-product order survived");
        let c_pos = aliases.iter().position(|&a| a == "c").unwrap();
        assert!(c_pos <= 1, "bridge relation should join early: {aliases:?}");
    }

    #[test]
    fn reorder_keeps_from_order_on_ties() {
        let mut db = Database::new();
        db.register("s", ints("x", (0..5).collect()));
        db.register("t", ints("y", (0..5).collect()));
        let plan = plan_for(
            "SELECT count(*) FROM s a, t b WHERE a.x = b.y",
            &db,
            &OptimizerConfig::default(),
        );
        let aliases: Vec<&str> = plan.rels.iter().map(|r| r.alias.as_str()).collect();
        assert_eq!(aliases, ["a", "b"], "symmetric join must keep FROM order");
    }

    #[test]
    fn estimates_cover_scans_and_joins() {
        let db = db3();
        let plan = plan_for(
            "SELECT count(*) FROM big_a a, bridge c WHERE a.x = c.z AND a.x < 100",
            &db,
            &OptimizerConfig::default(),
        );
        let est = plan.est.as_ref().expect("cost phase stamps estimates");
        assert_eq!(est.scan_rows.len(), 2);
        assert_eq!(est.join_rows.len(), 1);
        // a.x < 100 keeps about half of 0..200.
        let a_pos = plan.rels.iter().position(|r| r.alias == "a").unwrap();
        let a_est = est.scan_rows[a_pos];
        assert!((80..=120).contains(&a_est), "range estimate off: {a_est}");
    }

    #[test]
    fn eq_selectivity_is_one_over_distinct() {
        let mut db = Database::new();
        db.register("t", ints("x", (0..50).collect()));
        let plan = plan_for(
            "SELECT x FROM t WHERE x = 7",
            &db,
            &OptimizerConfig::default(),
        );
        let est = plan.est.as_ref().unwrap();
        assert_eq!(est.scan_rows, vec![1]);
    }

    #[test]
    fn index_paths_require_an_index() {
        let mut db = Database::new();
        db.register("t", ints("x", (0..50).collect()));
        let cfg = OptimizerConfig::default();
        let before = plan_for("SELECT x FROM t WHERE x = 7", &db, &cfg);
        assert_eq!(before.access[0], AccessPath::SeqScan);
        db.create_index("t", "x", IndexKind::Hash).unwrap();
        let after = plan_for("SELECT x FROM t WHERE x = 7", &db, &cfg);
        assert_eq!(
            after.access[0],
            AccessPath::IndexScan {
                filter: 0,
                col: 0,
                kind: IndexKind::Hash
            }
        );
        // Ranges want the sorted index, not the hash index.
        let range = plan_for("SELECT x FROM t WHERE x < 10", &db, &cfg);
        assert_eq!(range.access[0], AccessPath::SeqScan);
        db.create_index("t", "x", IndexKind::Sorted).unwrap();
        let range = plan_for("SELECT x FROM t WHERE x < 10", &db, &cfg);
        assert_eq!(
            range.access[0],
            AccessPath::IndexScan {
                filter: 0,
                col: 0,
                kind: IndexKind::Sorted
            }
        );
    }

    #[test]
    fn inner_index_enables_index_nested_loop() {
        let mut db = db3();
        // Pin FROM order so the inner side stays `big_a`.
        let cfg = OptimizerConfig {
            join_reorder: false,
            ..OptimizerConfig::default()
        };
        let sql = "SELECT count(*) FROM bridge c, big_a a WHERE c.z = a.x";
        let plan = plan_for(sql, &db, &cfg);
        assert_eq!(plan.join_algos, vec![JoinAlgo::Hash]);
        db.create_index("big_a", "x", IndexKind::Hash).unwrap();
        let plan = plan_for(sql, &db, &cfg);
        assert_eq!(plan.join_algos, vec![JoinAlgo::IndexNestedLoop { col: 0 }]);
    }
}
