//! Incremental per-iteration re-execution: **prepare** once, **refresh**
//! per model update.
//!
//! The train–rank–fix loop (paper §5.1) re-executes every complained-about
//! query in debug mode on each iteration, yet between iterations only the
//! model parameters change — the scan/join/group skeleton of each query is
//! bit-identical. In debug mode that skeleton is *fully* model-independent:
//!
//! - scan filters and residual model-free conjuncts prune concretely and
//!   never mention `predict()` (the optimizer never pushes a model atom);
//! - model atoms never prune — they only AND symbolic
//!   [`BoolProv`] atoms into tuple membership;
//! - prediction-variable ids are assigned in tuple-enumeration order,
//!   which depends only on the plan and the data, never on the params.
//!
//! So one debug execution splits into a *prepare* phase that materializes
//! a [`PreparedQuery`] — the joined candidate tuples with their membership
//! formulas, the group partitions with their provenance sums, and the
//! per-variable feature bindings that feed `predict()` — and a cheap
//! *refresh* phase that, given new model parameters, runs one **batched
//! inference** over the cached feature matrix
//! ([`Classifier::predict_batch`]) and then discretely re-evaluates the
//! cached formulas to re-assemble the concrete rows, `ScalarResult`s, and
//! provenance polynomials of a full execution.
//!
//! Full debug-mode execution itself is routed through capture + refresh
//! (see `project` / `aggregate` in the evaluation core), so
//! there is exactly **one** output-assembly code path:
//! `refresh(θ) ≡ execute(θ)` holds by construction, and the randomized
//! differential suite (`tests/incremental_differential.rs`) pins it across
//! both engines, including prediction-variable ids and provenance.
//!
//! **Invalidation.** The skeleton is a cache over the *queried* tables.
//! Fixes in the loop mutate the training set, never the queried database,
//! so the driver can refresh for the whole run; [`PreparedQuery::refresh`]
//! still revalidates table versions and row counts and fails loudly if a
//! queried table was re-registered since prepare. A long-lived server
//! whose fix path *does* mutate registered tables uses
//! [`PreparedQuery::refresh_with`] under [`StalePolicy::Rebuild`] instead:
//! a stale skeleton is transparently re-prepared from its cached plan (the
//! explicit-error behavior stays available as [`StalePolicy::Error`]).
//!
//! **Memoization.** Between consecutive iterations most feature rows
//! score the same class, and within one iteration the same base row
//! often feeds several queries. A [`ScoreMemo`] shared across
//! [`PreparedQuery::refresh_memo`] calls caches scores by (model
//! generation, feature-row content hash) so inference runs only for
//! rows whose features or model actually changed — with output
//! bit-identical to the unmemoized refresh.

use crate::ast::AggFunc;
use crate::binder::{BExpr, BoundAgg, BoundAggArg, GroupKey, QueryKind};
use crate::catalog::{Database, TableId, TableVersion};
use crate::eval::{self, keyval, keyval_to_value, EvalCtx, KeyVal, Tuples};
use crate::exec::{Engine, QueryOutput};
use crate::plan::QueryPlan;
use crate::predvar::PredVarRegistry;
use crate::prov::{AggSum, AggTerm, BoolProv, CellProv, VarId};
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::QueryError;
use rain_linalg::Matrix;
use rain_model::Classifier;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// What the join pipeline saw while building the candidate set; captured
/// during prepare by both engines and surfaced in [`SkeletonStats`].
#[derive(Debug, Default)]
pub(crate) struct PipelineTrace {
    /// Scan survivors per relation, in scan order.
    pub(crate) scan_rows: Vec<usize>,
    /// `(strategy label, output tuples)` per join step.
    pub(crate) join_steps: Vec<(&'static str, usize)>,
}

/// One projected cell of one candidate tuple: either a model-independent
/// constant or a prediction variable whose class is the cell value.
#[derive(Debug, Clone)]
pub(crate) enum CellSkel {
    /// Model-free expression, evaluated once at capture time.
    Lit(Value),
    /// Bare `predict(alias)` select item.
    Pred(VarId),
}

/// One candidate tuple of a projection query.
#[derive(Debug, Clone)]
pub(crate) struct TupleSkel {
    /// Membership formula (constant true for model-free tuples).
    prov: BoolProv,
    /// Projected cells in select-list order.
    cells: Vec<CellSkel>,
}

/// Skeleton of a projection query: every candidate tuple, whether or not
/// it is concretely emitted under the current parameters.
#[derive(Debug, Clone)]
pub(crate) struct SelectSkeleton {
    schema: Schema,
    tuples: Vec<TupleSkel>,
}

/// One group partition of an aggregate query, with its full provenance.
#[derive(Debug, Clone)]
pub(crate) struct GroupSkel {
    /// Key values, already converted for output.
    key: Vec<Value>,
    /// Membership formula per candidate (tuple × class-combination); a
    /// group concretely exists iff any of these evaluates true.
    members: Vec<BoolProv>,
    /// Numerator provenance per aggregate (the `CellProv` sums). Behind
    /// `Arc` so every refresh emits the skeleton's sums by reference
    /// instead of cloning each cell's full term list.
    num: Vec<Arc<AggSum>>,
    /// Denominator provenance per AVG aggregate.
    den: Vec<Arc<AggSum>>,
}

/// Skeleton of an aggregate query: the group partitions in output order.
#[derive(Debug, Clone)]
pub(crate) struct AggSkeleton {
    schema: Schema,
    /// Aggregate functions in select-list order.
    funcs: Vec<AggFunc>,
    /// Number of leading group-key columns.
    n_keys: usize,
    /// True for ungrouped aggregates: the single global group is emitted
    /// even when no tuple concretely belongs to it.
    global: bool,
    /// Groups in sorted key order (the engines' output order).
    groups: Vec<GroupSkel>,
}

/// The model-independent finalization skeleton of one query.
#[derive(Debug, Clone)]
pub(crate) enum KindSkeleton {
    Select(SelectSkeleton),
    Aggregate(AggSkeleton),
}

/// Prepare-time facts about a skeleton, for introspection and benches.
#[derive(Debug, Clone)]
pub struct SkeletonStats {
    /// Engine that built the candidate set.
    pub engine: Engine,
    /// Scan survivors per relation.
    pub scan_rows: Vec<usize>,
    /// `(join strategy, output tuples)` per join step.
    pub join_steps: Vec<(&'static str, usize)>,
    /// Candidate tuples feeding the finalizer.
    pub candidate_tuples: usize,
    /// Prediction variables bound to the skeleton.
    pub n_vars: usize,
    /// True when no operator of the plan reads the model; refreshes of
    /// such a skeleton are pure re-emissions.
    pub model_free: bool,
}

/// A query prepared for incremental re-execution: the model-independent
/// skeleton plus the feature bindings needed to refresh predictions.
///
/// Build one with [`prepare`]; call [`PreparedQuery::refresh`] after every
/// parameter update. The refresh output is bit-identical to a fresh
/// debug-mode [`execute`](crate::exec::execute) under the same parameters.
/// How a prepared skeleton went stale relative to the live catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleKind {
    /// A queried table was re-registered (or shrank): cached row
    /// identities no longer describe the data. Full re-prepare required.
    Replaced,
    /// Queried tables only grew by appends within the same generation:
    /// cached tuples are still valid, new rows are simply missing. A full
    /// re-prepare is correct (and what callers do today); a delta-aware
    /// skeleton extension could instead grow the prepared state in place.
    Appended,
}

#[derive(Debug, Clone)]
pub struct PreparedQuery {
    kind: KindSkeleton,
    /// The physical plan the skeleton was captured from, kept so a stale
    /// skeleton can be transparently re-prepared
    /// ([`PreparedQuery::refresh_with`] under [`StalePolicy::Rebuild`]).
    plan: QueryPlan,
    /// The prepare-time registry, kept as a structurally shared template:
    /// each refresh derives its registry via
    /// [`PredVarRegistry::with_preds`] — same variables, same ids, fresh
    /// predictions, no per-variable allocation.
    reg: PredVarRegistry,
    /// One feature row per prediction variable, packed at prepare time so
    /// refresh inference is a single batched call.
    features: Matrix,
    /// Content hash of each feature row (`f64` bit patterns through a
    /// deterministic hasher), aligned with `features`. Computed once at
    /// prepare time; [`ScoreMemo`] keys cached scores by these, so rows
    /// with identical features — within this query or across queries —
    /// share one inference per model generation.
    feature_hashes: Vec<u64>,
    /// Class count the skeleton's formulas were built for.
    n_classes: usize,
    /// `(table id, catalog version, row count)` per plan relation, used to
    /// detect stale skeletons.
    rels: Vec<(TableId, TableVersion, usize)>,
    stats: SkeletonStats,
}

/// Execute the model-independent part of `plan` once (in debug mode, on
/// `engine`) and capture the reusable skeleton.
///
/// The model is needed for its architecture (class count, feature
/// dimension) and to seed the first predictions; its *parameters* do not
/// affect the captured structure. Capture runs with the machine's
/// available parallelism; use [`prepare_with`] to cap it.
pub fn prepare(
    db: &Database,
    model: &dyn Classifier,
    plan: &QueryPlan,
    engine: Engine,
) -> Result<PreparedQuery, QueryError> {
    prepare_with(db, model, plan, engine, 0)
}

/// [`prepare`] with an explicit worker budget for the capture pipeline
/// (`0` = auto, `1` = sequential). Thread count never changes the
/// captured skeleton — morsel outputs merge in deterministic order — it
/// only bounds how many cores the capture may occupy.
pub fn prepare_with(
    db: &Database,
    model: &dyn Classifier,
    plan: &QueryPlan,
    engine: Engine,
    threads: usize,
) -> Result<PreparedQuery, QueryError> {
    let mut prep_span = rain_obs::Span::enter("prepare");
    let mut ctx =
        EvalCtx::new(db, model, plan, true).with_threads(crate::exec::resolve_threads(threads));
    let mut trace = PipelineTrace::default();
    let (kind, candidate_tuples) = {
        let _cap = rain_obs::Span::enter("capture");
        match engine {
            Engine::Vectorized => {
                let rows = crate::vexec::join_pipeline(&mut ctx, Some(&mut trace))?;
                capture(&mut ctx, rows, &plan.kind)?
            }
            Engine::Tuple => {
                let tuples = crate::exec::tuple_pipeline(&mut ctx, Some(&mut trace))?;
                capture(&mut ctx, tuples, &plan.kind)?
            }
        }
    };

    let reg = std::mem::take(&mut ctx.reg);
    prep_span.add("candidate_tuples", candidate_tuples as u64);
    prep_span.add("n_vars", reg.len() as u64);
    let _feat_span = rain_obs::Span::enter("pack-features");
    let dim = model.dim();
    let mut features = Matrix::zeros(reg.len(), dim);
    for (i, info) in reg.infos().iter().enumerate() {
        let table = db
            .table(&info.table)
            .expect("prediction variable over an unregistered table");
        let feat = table
            .feature_row(info.row)
            .expect("features checked at bind time");
        if feat.len() != dim {
            return Err(QueryError::Exec(format!(
                "feature width {} of table {} does not match model dim {dim}",
                feat.len(),
                info.table
            )));
        }
        features.row_mut(i).copy_from_slice(feat);
    }
    let feature_hashes = (0..features.rows())
        .map(|i| feature_row_hash(features.row(i)))
        .collect();

    let rels = plan
        .rels
        .iter()
        .map(|r| (r.id, db.table_version(r.id), db.table_by_id(r.id).n_rows()))
        .collect();
    let stats = SkeletonStats {
        engine,
        scan_rows: trace.scan_rows,
        join_steps: trace.join_steps,
        candidate_tuples,
        n_vars: reg.len(),
        model_free: plan.model_deps().is_model_free(),
    };
    Ok(PreparedQuery {
        kind,
        plan: plan.clone(),
        reg,
        features,
        feature_hashes,
        n_classes: model.n_classes(),
        rels,
        stats,
    })
}

/// Deterministic content hash of one feature row: the exact `f64` bit
/// patterns through a seed-free hasher, so equal rows hash equal across
/// queries, prepares, and processes — and any feature change (including
/// `-0.0` vs `0.0` or a different NaN payload) changes the hash.
fn feature_row_hash(row: &[f64]) -> u64 {
    let mut h = DefaultHasher::new();
    for &v in row {
        v.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Memoized classifier scores, keyed by (model generation, feature-row
/// hash).
///
/// The debug loop re-scores a mostly-unchanged feature matrix every
/// iteration, and within one iteration the same base row feeds prediction
/// variables in several queries. A `ScoreMemo` shared across
/// [`PreparedQuery::refresh_memo`] calls serves those repeats from cache:
/// inference runs only for feature rows not seen under the current model
/// generation. [`ScoreMemo::advance`] declares a generation (the driver
/// uses its retrain counter); a generation change clears every cached
/// score, so a stale model can never serve a hit.
///
/// Memoized refreshes are bit-identical to plain ones: a cached score is
/// the score `predict_batch` computed for that exact feature row under
/// the current generation, and by the [`Classifier`] contract inference
/// is a pure per-row function of (model, features).
#[derive(Debug, Clone, Default)]
pub struct ScoreMemo {
    generation: u64,
    scores: HashMap<u64, usize>,
    hits: u64,
    misses: u64,
}

impl ScoreMemo {
    /// An empty memo at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare the current model generation. Any change — forward after a
    /// retrain, backward after a rollback — drops every cached score;
    /// hit/miss totals survive (they describe the memo's lifetime, not
    /// one generation).
    pub fn advance(&mut self, generation: u64) {
        if generation != self.generation {
            self.generation = generation;
            self.scores.clear();
        }
    }

    /// Feature rows served from cache since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Feature rows that required inference since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct feature rows cached under the current generation.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no score is cached under the current generation.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// How a refresh reacts to a stale skeleton — a queried table
/// re-registered (data version or row count changed) or a model whose
/// architecture no longer matches the captured feature bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StalePolicy {
    /// Transparently re-run [`prepare`] on the cached plan and refresh the
    /// fresh skeleton. This is what a long-lived service wants: fixes that
    /// mutate registered tables invalidate skeletons mid-session, and the
    /// next refresh should pay one re-prepare, not fail.
    #[default]
    Rebuild,
    /// Fail with the explicit staleness error (the behavior of
    /// [`PreparedQuery::refresh`]).
    Error,
}

impl PreparedQuery {
    /// Re-assemble the debug-mode [`QueryOutput`] under (possibly new)
    /// model parameters: one batched inference over the cached feature
    /// matrix, then a discrete re-evaluation of the cached formulas.
    /// Inference fans out over feature-matrix chunks with the machine's
    /// available parallelism; use [`PreparedQuery::refresh_threaded`] to
    /// cap it.
    ///
    /// Fails if the model architecture changed (class count, feature
    /// dimension) or a queried table was re-registered since [`prepare`]
    /// (the skeleton caches row identities, so it must be rebuilt).
    pub fn refresh(
        &self,
        db: &Database,
        model: &dyn Classifier,
    ) -> Result<QueryOutput, QueryError> {
        self.refresh_threaded(db, model, 0)
    }

    /// [`PreparedQuery::refresh`] with an explicit worker budget for the
    /// batched inference (`0` = auto, `1` = sequential). Output is
    /// bit-identical at every thread count: workers write hard
    /// predictions for disjoint variable ranges and each prediction is a
    /// pure per-row function of the model.
    pub fn refresh_threaded(
        &self,
        db: &Database,
        model: &dyn Classifier,
        threads: usize,
    ) -> Result<QueryOutput, QueryError> {
        self.refresh_inner(db, model, threads, None)
    }

    /// [`PreparedQuery::refresh`] through a [`ScoreMemo`]: feature rows
    /// already scored under the memo's current generation skip inference
    /// and read their cached class; only the (deduplicated) misses run
    /// through the model, batched. Output is bit-identical to a plain
    /// refresh under the same parameters — the memo only changes *which
    /// rows* reach the model, never what any row scores.
    ///
    /// The caller owns the generation discipline: call
    /// [`ScoreMemo::advance`] with a new generation after every parameter
    /// update, or the memo will serve scores of the model it last saw.
    pub fn refresh_memo(
        &self,
        db: &Database,
        model: &dyn Classifier,
        memo: &mut ScoreMemo,
    ) -> Result<QueryOutput, QueryError> {
        self.refresh_memo_threaded(db, model, 0, memo)
    }

    /// [`PreparedQuery::refresh_memo`] with an explicit worker budget for
    /// the miss inference (`0` = auto, `1` = sequential).
    pub fn refresh_memo_threaded(
        &self,
        db: &Database,
        model: &dyn Classifier,
        threads: usize,
        memo: &mut ScoreMemo,
    ) -> Result<QueryOutput, QueryError> {
        self.refresh_inner(db, model, threads, Some(memo))
    }

    fn refresh_inner(
        &self,
        db: &Database,
        model: &dyn Classifier,
        threads: usize,
        memo: Option<&mut ScoreMemo>,
    ) -> Result<QueryOutput, QueryError> {
        if let Some(why) = self.staleness(db, model) {
            return Err(QueryError::Exec(why));
        }

        let mut refresh_span = rain_obs::Span::enter("refresh");
        refresh_span.add("n_vars", self.reg.len() as u64);
        let preds = match memo {
            None => predict_batch_sharded(model, &self.features, threads),
            Some(memo) => {
                let preds = self.predict_memoized(model, threads, memo);
                refresh_span.add("memo_hits", memo.hits);
                refresh_span.add("memo_misses", memo.misses);
                preds
            }
        };
        let reg = self.reg.with_preds(preds);
        let _reeval = rain_obs::Span::enter("re-eval");
        Ok(match &self.kind {
            KindSkeleton::Select(s) => {
                let (table, row_prov) = refresh_select(s, reg.preds());
                QueryOutput {
                    table,
                    row_prov,
                    agg_cells: Vec::new(),
                    n_key_cols: 0,
                    predvars: reg,
                }
            }
            KindSkeleton::Aggregate(a) => {
                let (table, agg_cells) = refresh_groups(a, reg.preds());
                QueryOutput {
                    table,
                    row_prov: Vec::new(),
                    agg_cells,
                    n_key_cols: a.n_keys,
                    predvars: reg,
                }
            }
        })
    }

    /// [`PreparedQuery::refresh`] with an explicit staleness policy.
    ///
    /// Under [`StalePolicy::Rebuild`] a stale skeleton (re-registered
    /// queried table, or a model architecture mismatch) is transparently
    /// re-prepared from the cached plan on the capture engine before
    /// refreshing; the returned flag reports whether a rebuild happened.
    /// Under [`StalePolicy::Error`] this is exactly `refresh`.
    ///
    /// Rebuilding assumes the replacement tables are schema-compatible
    /// with the cached (bound) plan — a column the plan reads must still
    /// exist with its type. Incompatible replacements surface as
    /// execution errors from the re-prepare.
    pub fn refresh_with(
        &mut self,
        db: &Database,
        model: &dyn Classifier,
        policy: StalePolicy,
    ) -> Result<(QueryOutput, bool), QueryError> {
        self.refresh_with_threaded(db, model, policy, 0)
    }

    /// [`PreparedQuery::refresh_with`] with an explicit worker budget
    /// (`0` = auto, `1` = sequential), applied to both the refresh
    /// inference and any transparent re-prepare.
    pub fn refresh_with_threaded(
        &mut self,
        db: &Database,
        model: &dyn Classifier,
        policy: StalePolicy,
        threads: usize,
    ) -> Result<(QueryOutput, bool), QueryError> {
        let rebuilt = match policy {
            StalePolicy::Rebuild if self.staleness(db, model).is_some() => {
                let plan = self.plan.clone();
                *self = prepare_with(db, model, &plan, self.stats.engine, threads)?;
                true
            }
            _ => false,
        };
        Ok((self.refresh_threaded(db, model, threads)?, rebuilt))
    }

    /// [`PreparedQuery::refresh_with_threaded`] through a [`ScoreMemo`]
    /// (the driver's per-iteration path). A transparent rebuild replaces
    /// the skeleton — and with it the feature rows and their hashes — but
    /// never invalidates the memo: cached scores are keyed by feature
    /// content, not by variable ids, so they stay correct across
    /// rebuilds within one model generation.
    pub fn refresh_with_memo_threaded(
        &mut self,
        db: &Database,
        model: &dyn Classifier,
        policy: StalePolicy,
        threads: usize,
        memo: &mut ScoreMemo,
    ) -> Result<(QueryOutput, bool), QueryError> {
        let rebuilt = match policy {
            StalePolicy::Rebuild if self.staleness(db, model).is_some() => {
                let plan = self.plan.clone();
                *self = prepare_with(db, model, &plan, self.stats.engine, threads)?;
                true
            }
            _ => false,
        };
        Ok((self.refresh_inner(db, model, threads, Some(memo))?, rebuilt))
    }

    /// Hard predictions for every feature row, served from `memo` where
    /// the row's feature hash is already cached under the current
    /// generation. Misses are deduplicated by hash, gathered into a
    /// compact matrix, scored in one sharded batch
    /// ([`predict_batch_sharded`], so the inference span and its shard
    /// children appear exactly when inference runs), scattered back, and
    /// cached. A hit is any row that skipped inference — including the
    /// second and later occurrences of a hash first seen this refresh.
    fn predict_memoized(
        &self,
        model: &dyn Classifier,
        threads: usize,
        memo: &mut ScoreMemo,
    ) -> Vec<usize> {
        let n = self.features.rows();
        let mut preds = vec![0usize; n];
        // hash → rows of this refresh awaiting that hash's one inference;
        // `miss_rows` holds each distinct hash's first row, in row order.
        let mut pending: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut miss_rows: Vec<usize> = Vec::new();
        for (i, &h) in self.feature_hashes.iter().enumerate() {
            if let Some(&class) = memo.scores.get(&h) {
                preds[i] = class;
            } else {
                pending
                    .entry(h)
                    .or_insert_with(|| {
                        miss_rows.push(i);
                        Vec::new()
                    })
                    .push(i);
            }
        }
        memo.misses += miss_rows.len() as u64;
        memo.hits += (n - miss_rows.len()) as u64;
        if !miss_rows.is_empty() {
            let compact = self.features.select_rows(&miss_rows);
            let scored = predict_batch_sharded(model, &compact, threads);
            for (j, &row) in miss_rows.iter().enumerate() {
                let h = self.feature_hashes[row];
                memo.scores.insert(h, scored[j]);
                for &i in &pending[&h] {
                    preds[i] = scored[j];
                }
            }
        }
        preds
    }

    /// True when a queried table was re-registered since [`prepare`] (the
    /// skeleton caches row identities, so its cached tuples no longer
    /// describe the catalog's data). Model-architecture staleness is
    /// checked separately at refresh time.
    pub fn is_stale(&self, db: &Database) -> bool {
        self.stale_kind(db).is_some()
    }

    /// How the catalog moved since [`prepare`], if it did.
    ///
    /// Distinguishes a full replacement ([`StaleKind::Replaced`] — cached
    /// row identities are meaningless, rebuild from scratch) from pure
    /// appends within the same generation ([`StaleKind::Appended`] — every
    /// cached tuple is still valid, only new rows arrived). Today both
    /// trigger a full re-prepare; `Appended` is the hook for delta-aware
    /// skeleton extension (grow the candidate set and feature matrix for
    /// the appended rows only).
    pub fn stale_kind(&self, db: &Database) -> Option<StaleKind> {
        let mut appended = false;
        for &(id, version, n_rows) in &self.rels {
            let now = db.table_version(id);
            if now.gen != version.gen || db.table_by_id(id).n_rows() < n_rows {
                return Some(StaleKind::Replaced);
            }
            if now.delta != version.delta || db.table_by_id(id).n_rows() != n_rows {
                appended = true;
            }
        }
        appended.then_some(StaleKind::Appended)
    }

    /// Why this skeleton cannot refresh against `(db, model)`, if anything.
    fn staleness(&self, db: &Database, model: &dyn Classifier) -> Option<String> {
        if model.n_classes() != self.n_classes {
            return Some(format!(
                "stale query skeleton: prepared for {} classes, model has {}",
                self.n_classes,
                model.n_classes()
            ));
        }
        if !self.reg.is_empty() && model.dim() != self.features.cols() {
            return Some(format!(
                "stale query skeleton: prepared for feature dim {}, model wants {}",
                self.features.cols(),
                model.dim()
            ));
        }
        for &(id, version, n_rows) in &self.rels {
            if db.table_version(id) != version || db.table_by_id(id).n_rows() != n_rows {
                return Some(format!(
                    "stale query skeleton: table {} changed since prepare; \
                     re-prepare the query",
                    db.name_of(id)
                ));
            }
        }
        None
    }

    /// The physical plan the skeleton was captured from.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Prepare-time statistics (scan/join trace, candidate count, model
    /// dependence).
    pub fn stats(&self) -> &SkeletonStats {
        &self.stats
    }
}

/// Capture the finalization skeleton for a candidate tuple stream.
pub(crate) fn capture(
    ctx: &mut EvalCtx,
    tuples: impl Tuples,
    kind: &QueryKind,
) -> Result<(KindSkeleton, usize), QueryError> {
    Ok(match kind {
        QueryKind::Select { items } => {
            let s = capture_select(ctx, tuples, items)?;
            let n = s.tuples.len();
            (KindSkeleton::Select(s), n)
        }
        QueryKind::Aggregate { keys, aggs } => {
            let (a, n) = capture_groups(ctx, tuples, keys, aggs)?;
            (KindSkeleton::Aggregate(a), n)
        }
    })
}

/// Capture a projection skeleton: every candidate tuple's membership
/// formula plus its cells — model-free cells evaluated once, bare
/// `predict()` cells bound to their (stable) prediction variables.
///
/// Variable creation runs in candidate-tuple order for *all* candidates
/// (a tuple concretely excluded today may be emitted after retraining),
/// which is also what keeps ids refresh-stable.
pub(crate) fn capture_select(
    ctx: &mut EvalCtx,
    tuples: impl Tuples,
    items: &[(BExpr, String)],
) -> Result<SelectSkeleton, QueryError> {
    let mut schema = Schema::default();
    for (e, name) in items {
        eval::push_unique(&mut schema, name, ctx.infer_type(e));
    }
    let mut skel = Vec::new();
    tuples.emit(&mut |rows, prov| {
        let mut cells = Vec::with_capacity(items.len());
        for (e, _) in items {
            cells.push(match e {
                BExpr::Predict { rel } => CellSkel::Pred(ctx.var_of(*rel, rows[*rel])),
                // Model-free by binder construction (`predict()` must
                // appear bare in select lists), so this value can never
                // change across refreshes.
                other => CellSkel::Lit(ctx.eval_value(other, rows)?),
            });
        }
        skel.push(TupleSkel { prov, cells });
        Ok(())
    })?;
    Ok(SelectSkeleton {
        schema,
        tuples: skel,
    })
}

/// Emit the concrete projection rows of a skeleton under `preds`.
pub(crate) fn refresh_select(skel: &SelectSkeleton, preds: &[usize]) -> (Table, Vec<BoolProv>) {
    let mut table = Table::empty(skel.schema.clone());
    let mut row_prov = Vec::with_capacity(skel.tuples.len());
    for t in &skel.tuples {
        if !t.prov.eval_discrete(preds) {
            continue;
        }
        let row = t
            .cells
            .iter()
            .map(|c| match c {
                CellSkel::Lit(v) => v.clone(),
                CellSkel::Pred(var) => Value::Int(preds[*var as usize] as i64),
            })
            .collect();
        table.push_row(row, None);
        row_prov.push(t.prov.clone());
    }
    (table, row_prov)
}

/// Per-group accumulator while capturing.
#[derive(Debug, Default)]
struct GroupBuild {
    members: Vec<BoolProv>,
    num: Vec<AggSum>,
    den: Vec<AggSum>,
}

/// Capture an aggregation skeleton: the group partitions (predict keys
/// fanned out over every class, as debug mode requires) with the full
/// numerator/denominator provenance sums. Term order within each group is
/// candidate-tuple order, so refresh accumulates floats in exactly the
/// sequence a full execution would.
pub(crate) fn capture_groups(
    ctx: &mut EvalCtx,
    tuples: impl Tuples,
    keys: &[GroupKey],
    aggs: &[BoundAgg],
) -> Result<(AggSkeleton, usize), QueryError> {
    let mut groups: HashMap<Vec<KeyVal>, GroupBuild> = HashMap::new();
    let n_aggs = aggs.len();
    let new_acc = || GroupBuild {
        members: Vec::new(),
        num: vec![AggSum::default(); n_aggs],
        den: vec![AggSum::default(); n_aggs],
    };
    // A global aggregate always has its single group, even when empty.
    if keys.is_empty() {
        groups.insert(Vec::new(), new_acc());
    }
    let n_classes = ctx.model.n_classes();
    let mut candidates = 0usize;

    tuples.emit(&mut |rows, prov| {
        candidates += 1;
        // Resolve key parts; predict keys fan the tuple out per class.
        let mut col_parts: Vec<Option<KeyVal>> = Vec::with_capacity(keys.len());
        let mut pred_keys: Vec<(usize, VarId)> = Vec::new(); // (key position, var)
        for (pos, k) in keys.iter().enumerate() {
            match k {
                GroupKey::Col { rel, col, .. } => {
                    let v = ctx.table_of(*rel).value(rows[*rel] as usize, *col);
                    col_parts.push(Some(keyval(&v)));
                }
                GroupKey::Predict { rel } => {
                    let var = ctx.var_of(*rel, rows[*rel]);
                    pred_keys.push((pos, var));
                    col_parts.push(None);
                }
            }
        }

        for combo in eval::cartesian(n_classes, pred_keys.len()) {
            let mut key = Vec::with_capacity(keys.len());
            let mut membership = prov.clone();
            for (pos, part) in col_parts.iter().enumerate() {
                match part {
                    Some(kv) => key.push(kv.clone()),
                    None => {
                        let (idx, var) = pred_keys
                            .iter()
                            .enumerate()
                            .find_map(|(i, (p, v))| (*p == pos).then_some((i, *v)))
                            .expect("predict key present");
                        let class = combo[idx];
                        key.push(KeyVal::Int(class as i64));
                        membership =
                            BoolProv::and(vec![membership, BoolProv::PredIs { var, class }]);
                    }
                }
            }

            let acc = groups.entry(key).or_insert_with(new_acc);
            acc.members.push(membership.clone());
            for (ai, agg) in aggs.iter().enumerate() {
                // Term contributed by this tuple to aggregate `ai`; the
                // term itself is model-independent (weights and scalar
                // arguments never contain `predict()`).
                let term: Option<AggTerm> = match &agg.arg {
                    BoundAggArg::CountStar => Some(AggTerm::One),
                    BoundAggArg::Predict { rel } => {
                        Some(AggTerm::PredValue(ctx.var_of(*rel, rows[*rel])))
                    }
                    BoundAggArg::ScaledPredict { rel, factor } => {
                        let var = ctx.var_of(*rel, rows[*rel]);
                        let w = ctx.eval_value(factor, rows)?.as_f64().ok_or_else(|| {
                            QueryError::Exec("non-numeric factor in scaled predict".into())
                        })?;
                        Some(AggTerm::ScaledPred { var, weight: w })
                    }
                    BoundAggArg::Scalar(e) => ctx.eval_value(e, rows)?.as_f64().map(AggTerm::Const),
                };
                let Some(term) = term else {
                    continue; // NULL: skipped by SUM/AVG, as in SQL.
                };
                acc.num[ai].terms.push((membership.clone(), term));
                if agg.func == AggFunc::Avg {
                    acc.den[ai].terms.push((membership.clone(), AggTerm::One));
                }
            }
        }
        Ok(())
    })?;

    // Deterministic output order.
    let mut keys_sorted: Vec<Vec<KeyVal>> = groups.keys().cloned().collect();
    keys_sorted.sort();
    let sorted = keys_sorted
        .into_iter()
        .map(|k| {
            let b = groups.remove(&k).expect("group exists");
            GroupSkel {
                key: k.iter().map(keyval_to_value).collect(),
                members: b.members,
                num: b.num.into_iter().map(Arc::new).collect(),
                den: b.den.into_iter().map(Arc::new).collect(),
            }
        })
        .collect();

    Ok((
        AggSkeleton {
            schema: eval::agg_schema(ctx, keys, aggs),
            funcs: aggs.iter().map(|a| a.func).collect(),
            n_keys: keys.len(),
            global: keys.is_empty(),
            groups: sorted,
        },
        candidates,
    ))
}

/// Feature matrices below this many rows run through the model's own
/// (possibly vectorized) `predict_batch` on one thread — per-example
/// inference is microseconds, so small refreshes don't pay thread spawns.
const PREDICT_SHARD_MIN_ROWS: usize = 1024;

/// Hard predictions for every feature row, fanned out over contiguous
/// row chunks across `threads` scoped workers (`0` = auto).
///
/// Each worker owns a disjoint slice of the output and runs the model's
/// batched range kernel ([`Classifier::predict_range_into`]) over its
/// chunk; by the trait contract, batched and per-row inference agree
/// bit for bit, so the sharded result is identical to the
/// single-threaded batched call at every thread count.
pub(crate) fn predict_batch_sharded(
    model: &dyn Classifier,
    features: &Matrix,
    threads: usize,
) -> Vec<usize> {
    let n = features.rows();
    let mut span = rain_obs::Span::enter("inference");
    span.add("rows_in", n as u64);
    let workers = crate::exec::resolve_threads(threads).clamp(1, n.max(1));
    if workers <= 1 || n < PREDICT_SHARD_MIN_ROWS {
        return model.predict_batch(features);
    }
    let mut preds = vec![0usize; n];
    let chunk = n.div_ceil(workers);
    let span_id = span.id();
    std::thread::scope(|scope| {
        for (w, out) in preds.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                // Shard index is the worker's (deterministic) chunk
                // position, not its scheduling order.
                let mut shard = rain_obs::Span::enter_under(span_id, "shard");
                shard.add("index", w as u64);
                shard.add("items", out.len() as u64);
                model.predict_range_into(features, start, out)
            });
        }
    });
    preds
}

/// The concrete value a term contributes under hard predictions.
fn term_value(term: &AggTerm, preds: &[usize]) -> f64 {
    match term {
        AggTerm::One => 1.0,
        AggTerm::Const(f) => *f,
        AggTerm::PredValue(var) => preds[*var as usize] as f64,
        AggTerm::ScaledPred { var, weight } => weight * preds[*var as usize] as f64,
    }
}

/// Emit the concrete aggregate rows (and per-cell provenance) of a
/// skeleton under `preds`.
pub(crate) fn refresh_groups(skel: &AggSkeleton, preds: &[usize]) -> (Table, Vec<Vec<CellProv>>) {
    let mut table = Table::empty(skel.schema.clone());
    let mut agg_cells = Vec::new();
    for g in &skel.groups {
        // Groups with no concrete member are not part of the concrete
        // result, except the global group of an ungrouped aggregate.
        let alive = g.members.iter().any(|m| m.eval_discrete(preds));
        if !alive && !skel.global {
            continue;
        }
        let mut row = g.key.clone();
        let mut cells = Vec::with_capacity(skel.funcs.len());
        for (ai, func) in skel.funcs.iter().enumerate() {
            let (mut sum, mut cnt) = (0.0f64, 0usize);
            for (membership, term) in &g.num[ai].terms {
                if membership.eval_discrete(preds) {
                    sum += term_value(term, preds);
                    cnt += 1;
                }
            }
            row.push(eval::agg_value(*func, sum, cnt));
            cells.push(match func {
                AggFunc::Avg => CellProv::Ratio(g.num[ai].clone(), g.den[ai].clone()),
                _ => CellProv::Sum(g.num[ai].clone()),
            });
        }
        table.push_row(row, None);
        agg_cells.push(cells);
    }
    (table, agg_cells)
}
