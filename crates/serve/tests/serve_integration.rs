//! Multi-threaded integration tests for the serving layer: N client
//! threads against one server doing register/query/debug concurrently,
//! asserting per-session serialization, cross-session parallelism,
//! cache-hit counters, transparent invalidation, and the protocol error
//! paths.

use rain_obs::{parse_exposition, Metric};
use rain_serve::json::Json;
use rain_serve::{start, Client, ServerConfig};
use std::time::{Duration, Instant};

/// A linearly separable toy table: `n` rows, 1-D features, class 1 iff
/// the feature is positive. `positives` of the rows are positive.
fn table_json(name: &str, n: usize, positives: usize) -> Json {
    let ids: Vec<Json> = (0..n).map(|i| Json::num(i as f64)).collect();
    let feats: Vec<Json> = (0..n)
        .map(|i| {
            let x = if i < positives {
                1.0 + (i % 3) as f64 * 0.2
            } else {
                -1.0 - (i % 3) as f64 * 0.2
            };
            Json::Arr(vec![Json::num(x)])
        })
        .collect();
    Json::obj(vec![
        ("name", Json::str(name)),
        (
            "columns",
            Json::Arr(vec![Json::obj(vec![
                ("name", Json::str("id")),
                ("type", Json::str("int")),
                ("values", Json::Arr(ids)),
            ])]),
        ),
        ("features", Json::Arr(feats)),
    ])
}

/// A 1-D training set with `flipped` of the positive labels corrupted to
/// class 0 — the debugging target.
fn train_json(n: usize, flipped: usize) -> Json {
    let mut feats = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let positive = i % 2 == 0;
        let x = if positive { 1.0 } else { -1.0 } * (1.0 + (i % 5) as f64 * 0.1);
        feats.push(Json::Arr(vec![Json::num(x)]));
        let mut y = positive as usize;
        if positive && i / 2 < flipped {
            y = 0; // corrupted match label
        }
        labels.push(Json::num(y as f64));
    }
    Json::obj(vec![
        ("features", Json::Arr(feats)),
        ("labels", Json::Arr(labels)),
        ("classes", Json::num(2.0)),
    ])
}

fn logistic_session(name: &str) -> Json {
    Json::obj(vec![
        ("name", Json::str(name)),
        (
            "model",
            Json::obj(vec![
                ("kind", Json::str("logistic")),
                ("dim", Json::num(1.0)),
                ("l2", Json::num(0.01)),
            ]),
        ),
    ])
}

/// Poll a job until it settles; panics on timeout or failure.
fn await_job(client: &mut Client, id: i64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let v = client.get_ok(&format!("/jobs/{id}")).unwrap();
        match v.get("status").unwrap().as_str().unwrap() {
            "done" => return v,
            "failed" => panic!("job {id} failed: {v}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never settled");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// The acceptance-criteria scenario: 16 client threads, one session
/// each, concurrently registering tables, querying (twice — the repeat
/// must hit the skeleton cache), filing complaints, and running debug
/// jobs. Everything completes without deadlock or cross-session
/// interference, and the cache-hit counters are visible on the wire.
#[test]
fn sixteen_concurrent_clients_query_and_debug_without_interference() {
    let server = start(ServerConfig {
        job_workers: 4,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();

    let threads: Vec<_> = (0..16)
        .map(|ci| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let session = format!("client-{ci}");
                client
                    .post_ok("/sessions", &logistic_session(&session))
                    .unwrap();
                // Distinct data per session so cross-talk would be visible.
                let n = 20 + ci;
                let positives = 6 + ci % 5;
                client
                    .post_ok(
                        &format!("/sessions/{session}/tables"),
                        &table_json("pairs", n, positives),
                    )
                    .unwrap();
                client
                    .post_ok(&format!("/sessions/{session}/train"), &train_json(40, 8))
                    .unwrap();

                let sql = "SELECT COUNT(*) FROM pairs WHERE predict(*) = 1";
                let q = Json::obj(vec![("sql", Json::str(sql))]);
                let first = client
                    .post_ok(&format!("/sessions/{session}/query"), &q)
                    .unwrap();
                assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));
                // Different spelling, same statement: must hit the cache.
                let q2 = Json::obj(vec![(
                    "sql",
                    Json::str("select  count(*)  from PAIRS where predict(*) = 1"),
                )]);
                let second = client
                    .post_ok(&format!("/sessions/{session}/query"), &q2)
                    .unwrap();
                assert_eq!(second.get("cache").unwrap().as_str(), Some("hit"));
                assert_eq!(
                    second
                        .get("cache_stats")
                        .unwrap()
                        .get("hits")
                        .unwrap()
                        .as_i64(),
                    Some(1)
                );
                // Results are this session's data, not a neighbor's.
                assert_eq!(
                    first.get("result").unwrap().get("rows").unwrap(),
                    second.get("result").unwrap().get("rows").unwrap()
                );

                client
                    .post_ok(
                        &format!("/sessions/{session}/complain"),
                        &Json::obj(vec![
                            ("sql", Json::str(sql)),
                            (
                                "complaint",
                                Json::obj(vec![
                                    ("kind", Json::str("value")),
                                    ("op", Json::str("eq")),
                                    ("target", Json::num(positives as f64)),
                                ]),
                            ),
                        ]),
                    )
                    .unwrap();
                let run = client
                    .post_ok(
                        &format!("/sessions/{session}/debug-run"),
                        &Json::obj(vec![
                            ("method", Json::str("loss")),
                            ("budget", Json::num(4.0)),
                            ("k_per_iter", Json::num(2.0)),
                        ]),
                    )
                    .unwrap();
                let job = run.get("job").unwrap().as_i64().unwrap();
                let done = await_job(&mut client, job);
                let report = done.get("report").unwrap();
                let removed = report.get("removed").unwrap().as_arr().unwrap();
                assert!(removed.len() <= 4, "budget respected");
                assert_eq!(done.get("session").unwrap().as_str().unwrap(), session);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }

    // Server-wide counters: all sessions live, every repeat query hit.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.get_ok("/stats").unwrap();
    assert_eq!(stats.get("sessions").unwrap().as_i64(), Some(16));
    let cache = stats.get("cache").unwrap();
    assert!(
        cache.get("hits").unwrap().as_i64().unwrap() >= 16,
        "expected ≥16 cache hits, got {cache}"
    );
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("done").unwrap().as_i64(), Some(16));
    assert_eq!(jobs.get("failed").unwrap().as_i64(), Some(0));
    server.shutdown();
}

/// Per-session serialization: concurrent mutations against one session
/// each land a distinct generation (the counter is bumped under the
/// session mutex), and the final generation equals the mutation count.
#[test]
fn mutations_on_one_session_serialize() {
    let server = start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut setup = Client::connect(addr).unwrap();
    setup
        .post_ok("/sessions", &logistic_session("shared"))
        .unwrap();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 25;
    let threads: Vec<_> = (0..THREADS)
        .map(|ti| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut gens = Vec::with_capacity(PER_THREAD);
                for i in 0..PER_THREAD {
                    let v = client
                        .post_ok(
                            "/sessions/shared/tables",
                            &table_json("pairs", 8 + (ti + i) % 3, 4),
                        )
                        .unwrap();
                    gens.push(v.get("generation").unwrap().as_i64().unwrap());
                }
                gens
            })
        })
        .collect();
    let mut all_gens: Vec<i64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("mutator panicked"))
        .collect();
    all_gens.sort_unstable();
    let expected: Vec<i64> = (1..=(THREADS * PER_THREAD) as i64).collect();
    assert_eq!(
        all_gens, expected,
        "every mutation must land its own generation"
    );
    server.shutdown();
}

/// Re-registering a queried table invalidates the cached skeleton and the
/// next query transparently re-prepares against the new data.
#[test]
fn reregistration_invalidates_and_transparently_reprepares() {
    let server = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .post_ok("/sessions", &logistic_session("inv"))
        .unwrap();
    client
        .post_ok("/sessions/inv/tables", &table_json("pairs", 10, 4))
        .unwrap();
    // A model-free count: its value is a pure function of the registered
    // data, so it pins exactly what invalidation must refresh.
    let q = Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]);
    let first = client.post_ok("/sessions/inv/query", &q).unwrap();
    assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));
    let count = |v: &Json| {
        v.get("result")
            .unwrap()
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .as_arr()
            .unwrap()[0]
            .as_i64()
            .unwrap()
    };
    assert_eq!(count(&first), 10);

    // Replace the table with a larger one.
    client
        .post_ok("/sessions/inv/tables", &table_json("pairs", 14, 7))
        .unwrap();
    let second = client.post_ok("/sessions/inv/query", &q).unwrap();
    assert_eq!(second.get("cache").unwrap().as_str(), Some("invalidated"));
    assert_eq!(count(&second), 14, "result reflects the new data");
    let third = client.post_ok("/sessions/inv/query", &q).unwrap();
    assert_eq!(third.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        third
            .get("cache_stats")
            .unwrap()
            .get("invalidations")
            .unwrap()
            .as_i64(),
        Some(1)
    );
    server.shutdown();
}

/// Cross-session parallelism: debug jobs against distinct sessions
/// occupy multiple workers at once (`peak_running ≥ 2`), while two jobs
/// against the *same* session serialize on its mutex and both finish.
#[test]
fn debug_jobs_run_in_parallel_across_sessions() {
    let server = start(ServerConfig {
        job_workers: 4,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // Four sessions with enough work per job (~hundreds of ms each) that
    // the four workers demonstrably overlap.
    for si in 0..4 {
        let name = format!("par-{si}");
        client
            .post_ok("/sessions", &logistic_session(&name))
            .unwrap();
        client
            .post_ok(
                &format!("/sessions/{name}/tables"),
                &table_json("pairs", 60, 24),
            )
            .unwrap();
        client
            .post_ok(&format!("/sessions/{name}/train"), &train_json(2000, 300))
            .unwrap();
        client
            .post_ok(
                &format!("/sessions/{name}/complain"),
                &Json::obj(vec![
                    (
                        "sql",
                        Json::str("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1"),
                    ),
                    (
                        "complaint",
                        Json::obj(vec![
                            ("kind", Json::str("value")),
                            ("op", Json::str("eq")),
                            ("target", Json::num(24.0)),
                        ]),
                    ),
                ]),
            )
            .unwrap();
    }
    // Submit all four concurrently (sequential HTTP round-trips would
    // let a fast worker drain job N before job N+1 even arrives), then
    // one duplicate on session 0 (it must queue behind the first job's
    // session lock, not deadlock).
    let submitters: Vec<_> = (0..4)
        .map(|si| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let run = c
                    .post_ok(
                        &format!("/sessions/par-{si}/debug-run"),
                        &Json::obj(vec![
                            ("method", Json::str("holistic")),
                            ("budget", Json::num(40.0)),
                            ("k_per_iter", Json::num(5.0)),
                        ]),
                    )
                    .unwrap();
                run.get("job").unwrap().as_i64().unwrap()
            })
        })
        .collect();
    let mut job_ids: Vec<i64> = submitters
        .into_iter()
        .map(|t| t.join().expect("submitter panicked"))
        .collect();
    let rerun = client
        .post_ok(
            "/sessions/par-0/debug-run",
            &Json::obj(vec![
                ("method", Json::str("loss")),
                ("budget", Json::num(5.0)),
            ]),
        )
        .unwrap();
    job_ids.push(rerun.get("job").unwrap().as_i64().unwrap());

    for id in &job_ids {
        await_job(&mut client, *id);
    }
    let stats = client.get_ok("/stats").unwrap();
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("done").unwrap().as_i64(), Some(5));
    assert!(
        jobs.get("peak_running").unwrap().as_i64().unwrap() >= 2,
        "jobs on distinct sessions must overlap; stats: {jobs}"
    );
    server.shutdown();
}

/// A second debug run over the same complaints starts from cache hits:
/// its skeletons were checked back in by the first run.
#[test]
fn successive_debug_runs_reuse_cached_skeletons() {
    let server = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .post_ok("/sessions", &logistic_session("warm"))
        .unwrap();
    client
        .post_ok("/sessions/warm/tables", &table_json("pairs", 30, 10))
        .unwrap();
    client
        .post_ok("/sessions/warm/train", &train_json(60, 10))
        .unwrap();
    client
        .post_ok(
            "/sessions/warm/complain",
            &Json::obj(vec![
                (
                    "sql",
                    Json::str("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1"),
                ),
                (
                    "complaint",
                    Json::obj(vec![
                        ("kind", Json::str("value")),
                        ("op", Json::str("eq")),
                        ("target", Json::num(10.0)),
                    ]),
                ),
            ]),
        )
        .unwrap();
    let run_once = |client: &mut Client| {
        let run = client
            .post_ok(
                "/sessions/warm/debug-run",
                &Json::obj(vec![
                    ("method", Json::str("loss")),
                    ("budget", Json::num(4.0)),
                    ("k_per_iter", Json::num(2.0)),
                ]),
            )
            .unwrap();
        let id = run.get("job").unwrap().as_i64().unwrap();
        await_job(client, id);
    };
    run_once(&mut client);
    run_once(&mut client);
    let sessions = client.get_ok("/sessions").unwrap();
    let warm = &sessions.get("sessions").unwrap().as_arr().unwrap()[0];
    let cache = warm.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_i64(), Some(1), "{cache}");
    assert!(
        cache.get("hits").unwrap().as_i64().unwrap() >= 1,
        "second run must check out the first run's skeleton: {cache}"
    );
    server.shutdown();
}

/// Protocol error paths: malformed requests, unknown sessions, stale job
/// ids, duplicate sessions, bad SQL — each with the right status code,
/// none of them wedging the connection.
#[test]
fn protocol_error_paths() {
    let server = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown route and unknown session.
    assert_eq!(client.get("/nope").unwrap().0, 404);
    assert_eq!(
        client
            .post(
                "/sessions/ghost/query",
                &Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM t"))]),
            )
            .unwrap()
            .0,
        404
    );
    // Stale/unknown job id, non-numeric job id.
    assert_eq!(client.get("/jobs/999").unwrap().0, 404);
    assert_eq!(client.get("/jobs/xyz").unwrap().0, 400);

    // Malformed JSON body, sent over a raw socket (the typed client can
    // only produce valid JSON).
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        let body = "{not json";
        write!(
            raw,
            "POST /sessions HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut resp = String::new();
        raw.read_to_string(&mut resp).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "malformed JSON must 400, got: {}",
            resp.lines().next().unwrap_or("")
        );
        assert!(resp.contains("invalid JSON"), "{resp}");
    }
    // A well-formed JSON body of the wrong shape is also a 400.
    let (status, body) = client
        .request("POST", "/sessions", Some(&Json::str("not an object")))
        .unwrap();
    assert_eq!(status, 400, "{body}");

    // Session lifecycle conflicts and validation.
    client
        .post_ok("/sessions", &logistic_session("errs"))
        .unwrap();
    assert_eq!(
        client
            .post("/sessions", &logistic_session("errs"))
            .unwrap()
            .0,
        409
    );
    assert_eq!(
        client
            .post(
                "/sessions",
                &Json::obj(vec![("name", Json::str("bad/name"))])
            )
            .unwrap()
            .0,
        400
    );

    // Query against an empty catalog / bad SQL.
    assert_eq!(
        client
            .post(
                "/sessions/errs/query",
                &Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM missing"))]),
            )
            .unwrap()
            .0,
        400
    );
    assert_eq!(
        client
            .post(
                "/sessions/errs/query",
                &Json::obj(vec![("sql", Json::str("SELEC nonsense"))]),
            )
            .unwrap()
            .0,
        400
    );
    // Complaint with no complaints; debug-run without method.
    assert_eq!(
        client
            .post(
                "/sessions/errs/complain",
                &Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]),
            )
            .unwrap()
            .0,
        400
    );
    assert_eq!(
        client
            .post(
                "/sessions/errs/debug-run",
                &Json::obj(vec![("budget", Json::num(4.0))])
            )
            .unwrap()
            .0,
        400
    );
    // Train dim mismatch.
    client
        .post_ok("/sessions/errs/tables", &table_json("pairs", 6, 3))
        .unwrap();
    let bad_train = Json::obj(vec![
        (
            "features",
            Json::Arr(vec![Json::Arr(vec![Json::num(1.0), Json::num(2.0)])]),
        ),
        ("labels", Json::Arr(vec![Json::num(0.0)])),
        ("classes", Json::num(2.0)),
    ]);
    assert_eq!(
        client.post("/sessions/errs/train", &bad_train).unwrap().0,
        400
    );

    // The connection still works after every error.
    let ok = client
        .post_ok(
            "/sessions/errs/query",
            &Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]),
        )
        .unwrap();
    assert_eq!(ok.get("cache").unwrap().as_str(), Some("miss"));
    // Dropping the session 404s subsequent use.
    client.delete("/sessions/errs").unwrap();
    assert!(!client
        .get("/sessions")
        .unwrap()
        .1
        .to_string()
        .contains("errs"));
    server.shutdown();
}

fn family<'a>(metrics: &'a [Metric], name: &str) -> &'a Metric {
    metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("missing metric family {name}"))
}

fn scrape(client: &mut Client) -> Vec<Metric> {
    let (status, text) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200, "{text}");
    parse_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"))
}

/// `GET /metrics` under 16 concurrent clients that query and scrape at
/// once: every scrape is a valid Prometheus exposition, counters are
/// monotonic across scrapes, gauges reflect server state, and every
/// histogram family is internally consistent (cumulative buckets, the
/// `+Inf` bucket equal to `_count`, sum zero iff count is zero).
#[test]
fn metrics_endpoint_is_consistent_under_concurrent_scrapes() {
    let server = start(ServerConfig {
        job_workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..16)
        .map(|ci| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let session = format!("metrics-{ci}");
                client
                    .post_ok("/sessions", &logistic_session(&session))
                    .unwrap();
                client
                    .post_ok(
                        &format!("/sessions/{session}/tables"),
                        &table_json("pairs", 12, 5),
                    )
                    .unwrap();
                let q = Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]);
                client
                    .post_ok(&format!("/sessions/{session}/query"), &q)
                    .unwrap();
                client
                    .post_ok(&format!("/sessions/{session}/query"), &q)
                    .unwrap();
                // Scrape concurrently with the other 15 clients' traffic.
                let metrics = scrape(&mut client);
                assert!(!metrics.is_empty());
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }

    let mut client = Client::connect(addr).unwrap();
    let first = scrape(&mut client);
    let second = scrape(&mut client);

    // Counters never go backwards between scrapes.
    for name in [
        "rain_http_requests_total",
        "rain_cache_hits_total",
        "rain_cache_misses_total",
        "rain_jobs_done_total",
        "rain_jobs_failed_total",
    ] {
        let a = family(&first, name).value_of(name).unwrap();
        let b = family(&second, name).value_of(name).unwrap();
        assert!(b >= a, "{name} went backwards: {a} -> {b}");
    }
    // Gauges reflect server state; the aggregate hit ratio is a ratio.
    assert_eq!(
        family(&second, "rain_sessions").value_of("rain_sessions"),
        Some(16.0)
    );
    let ratio = family(&second, "rain_cache_hit_ratio")
        .value_of("rain_cache_hit_ratio")
        .unwrap();
    assert!((0.0..=1.0).contains(&ratio), "hit ratio {ratio}");
    // Each client issued 5 requests before the final scrapes, and every
    // repeated query hit its session's skeleton cache.
    let requests = family(&second, "rain_http_requests_total")
        .value_of("rain_http_requests_total")
        .unwrap();
    assert!(requests >= 16.0 * 5.0, "only {requests} requests counted");
    let hits = family(&second, "rain_cache_hits_total")
        .value_of("rain_cache_hits_total")
        .unwrap();
    assert!(hits >= 16.0, "only {hits} cache hits counted");

    for m in &second {
        if m.kind != "histogram" {
            continue;
        }
        let count = m.value_of(&format!("{}_count", m.name)).unwrap();
        let sum = m.value_of(&format!("{}_sum", m.name)).unwrap();
        let buckets: Vec<_> = m.samples.iter().filter(|s| s.le.is_some()).collect();
        assert!(!buckets.is_empty(), "{} has no buckets", m.name);
        let mut prev = 0.0;
        for b in &buckets {
            assert!(
                b.value >= prev,
                "{} buckets not cumulative: {} after {prev}",
                m.name,
                b.value
            );
            prev = b.value;
        }
        let last = buckets.last().unwrap();
        assert_eq!(last.le, Some(f64::INFINITY), "{}", m.name);
        assert_eq!(
            last.value, count,
            "{}: +Inf bucket must equal _count",
            m.name
        );
        assert!(
            sum >= 0.0 && (count > 0.0 || sum == 0.0),
            "{}: sum {sum} inconsistent with count {count}",
            m.name
        );
    }
    // Summary families (the latency sketches) are internally consistent
    // per label set: quantiles are present, finite once counted, and
    // non-decreasing in q.
    for m in &second {
        if m.kind != "summary" {
            continue;
        }
        let count: f64 = m
            .samples
            .iter()
            .filter(|s| s.name == format!("{}_count", m.name))
            .map(|s| s.value)
            .sum();
        if count == 0.0 {
            continue;
        }
        // Quantiles are only comparable within one label set (e.g. one
        // endpoint); group by the labels minus `quantile`.
        let mut by_series: std::collections::HashMap<String, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for s in m.samples.iter().filter(|s| s.name == m.name) {
            let Some(q) = s.quantile() else { continue };
            let key: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "quantile")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            by_series
                .entry(key.join(","))
                .or_default()
                .push((q, s.value));
        }
        assert!(!by_series.is_empty(), "{} has no quantile series", m.name);
        for (series, mut quantiles) in by_series {
            quantiles.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut prev = f64::NEG_INFINITY;
            for (q, v) in quantiles {
                assert!(
                    v >= prev || v.is_nan(),
                    "{}{{{series}}}: quantile {q} regressed: {v} after {prev}",
                    m.name
                );
                if !v.is_nan() {
                    prev = v;
                }
            }
        }
    }
    // The request-latency summary is per-endpoint; across endpoints it
    // saw every request that preceded the scrape, and the endpoints the
    // clients hit all have their own quantile series.
    let lat = family(&second, "rain_http_request_seconds");
    assert_eq!(lat.kind, "summary");
    let total: f64 = lat
        .samples
        .iter()
        .filter(|s| s.name == "rain_http_request_seconds_count")
        .map(|s| s.value)
        .sum();
    assert!(total >= 16.0 * 5.0, "latency summary undercounts: {total}");
    for ep in ["sessions", "tables", "query", "metrics"] {
        assert!(
            lat.value_with("rain_http_request_seconds_count", &[("endpoint", ep)])
                .is_some(),
            "no per-endpoint latency series for {ep}"
        );
        for q in ["0.5", "0.95", "0.99"] {
            assert!(
                lat.value_with(
                    "rain_http_request_seconds",
                    &[("endpoint", ep), ("quantile", q)]
                )
                .is_some(),
                "missing p{q} for endpoint {ep}"
            );
        }
    }
    // `/stats` serves the same per-endpoint quantiles as JSON.
    let stats = client.get_ok("/stats").unwrap();
    let q_lat = stats
        .get("latency_s")
        .and_then(|l| l.get("query"))
        .expect("stats carries query-endpoint latency");
    for p in ["p50", "p95", "p99"] {
        let v = q_lat.get(p).and_then(Json::as_f64).unwrap();
        assert!(v >= 0.0, "{p} = {v}");
    }
    server.shutdown();
}

/// `GET /metrics` racing session create/remove churn: the mirrored cache
/// counters fold removed sessions into a retired baseline, so no scrape
/// ever observes a counter regress.
#[test]
fn metrics_cache_counters_stay_monotonic_across_session_churn() {
    let server = start(ServerConfig {
        job_workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Churners: create a session, run queries (moving its cache
    // counters), remove it, repeat.
    let churners: Vec<_> = (0..4)
        .map(|ci| {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut round = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let session = format!("churn-{ci}-{round}");
                    round += 1;
                    client
                        .post_ok("/sessions", &logistic_session(&session))
                        .unwrap();
                    client
                        .post_ok(
                            &format!("/sessions/{session}/tables"),
                            &table_json("pairs", 12, 5),
                        )
                        .unwrap();
                    let q = Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]);
                    for _ in 0..3 {
                        client
                            .post_ok(&format!("/sessions/{session}/query"), &q)
                            .unwrap();
                    }
                    client.delete(&format!("/sessions/{session}")).unwrap();
                }
            })
        })
        .collect();

    // Scraper: cache counters must never go backwards while sessions
    // come and go underneath the scrape.
    let mut client = Client::connect(addr).unwrap();
    let mut last = std::collections::HashMap::new();
    for _ in 0..40 {
        let metrics = scrape(&mut client);
        for name in [
            "rain_cache_hits_total",
            "rain_cache_misses_total",
            "rain_cache_invalidations_total",
        ] {
            let v = family(&metrics, name).value_of(name).unwrap();
            let prev = last.insert(name, v).unwrap_or(0.0);
            assert!(v >= prev, "{name} regressed under churn: {prev} -> {v}");
        }
    }
    assert!(
        last["rain_cache_misses_total"] > 0.0,
        "churn never moved the cache counters"
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in churners {
        t.join().expect("churner panicked");
    }
    server.shutdown();
}

/// Walk a JSON trace node's children for one with the given span name.
fn child<'a>(node: &'a Json, name: &str) -> &'a Json {
    node.get("children")
        .and_then(Json::as_arr)
        .and_then(|cs| {
            cs.iter()
                .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
        })
        .unwrap_or_else(|| panic!("no child span {name:?} in {node}"))
}

/// `?profile=1` on a debug run returns the run's span tree in the job
/// report: the skeleton checkout, then one `iteration` subtree per loop
/// pass with train/execute/check/rank children and the incremental
/// `refresh` under execute. Without the flag the field is null.
#[test]
fn debug_run_profile_flag_returns_span_tree() {
    let server = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .post_ok("/sessions", &logistic_session("prof"))
        .unwrap();
    client
        .post_ok("/sessions/prof/tables", &table_json("pairs", 30, 10))
        .unwrap();
    client
        .post_ok("/sessions/prof/train", &train_json(60, 10))
        .unwrap();
    client
        .post_ok(
            "/sessions/prof/complain",
            &Json::obj(vec![
                (
                    "sql",
                    Json::str("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1"),
                ),
                (
                    "complaint",
                    Json::obj(vec![
                        ("kind", Json::str("value")),
                        ("op", Json::str("eq")),
                        ("target", Json::num(10.0)),
                    ]),
                ),
            ]),
        )
        .unwrap();
    let run_body = Json::obj(vec![
        ("method", Json::str("loss")),
        ("budget", Json::num(4.0)),
        ("k_per_iter", Json::num(2.0)),
    ]);

    let run = client
        .post_ok("/sessions/prof/debug-run?profile=1", &run_body)
        .unwrap();
    let done = await_job(&mut client, run.get("job").unwrap().as_i64().unwrap());
    let report = done.get("report").unwrap();
    let profile = report.get("profile").unwrap();
    assert_eq!(
        profile.get("name").and_then(Json::as_str),
        Some("debug-run")
    );
    assert!(profile.get("dur_ns").and_then(Json::as_f64).is_some());
    // The serving layer grafts its skeleton-checkout work into the tree.
    let checkout = child(profile, "checkout");
    assert!(checkout.get("dur_ns").and_then(Json::as_f64).unwrap() >= 0.0);
    let iterations: Vec<&Json> = profile
        .get("children")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|c| c.get("name").and_then(Json::as_str) == Some("iteration"))
        .collect();
    let reported = report.get("iterations").unwrap().as_arr().unwrap().len();
    assert_eq!(
        iterations.len(),
        reported,
        "one iteration span per reported iteration"
    );
    for it in &iterations {
        let execute = child(it, "execute");
        child(execute, "refresh");
        child(it, "train");
        child(it, "check");
        child(it, "rank");
        let removed = it
            .get("counters")
            .and_then(|c| c.get("removed"))
            .and_then(Json::as_f64);
        assert!(removed.is_some(), "iteration missing removed counter");
    }

    // Without the flag (and no body option) there is no profile.
    let plain = client
        .post_ok("/sessions/prof/debug-run", &run_body)
        .unwrap();
    let done = await_job(&mut client, plain.get("job").unwrap().as_i64().unwrap());
    assert_eq!(
        done.get("report").unwrap().get("profile"),
        Some(&Json::Null)
    );
    server.shutdown();
}

/// `"analyze": true` on a query returns the executed plan (with the
/// resolved engine and thread count) plus the execution's span tree —
/// and the result rows are identical to a plain run of the same query.
#[test]
fn analyze_query_returns_plan_and_execution_profile() {
    let server = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .post_ok("/sessions", &logistic_session("analyze"))
        .unwrap();
    client
        .post_ok("/sessions/analyze/tables", &table_json("pairs", 25, 9))
        .unwrap();
    let sql = "SELECT COUNT(*) FROM pairs";
    let plain = client
        .post_ok(
            "/sessions/analyze/query",
            &Json::obj(vec![("sql", Json::str(sql))]),
        )
        .unwrap();
    assert!(plain.get("explain").is_none(), "plain runs carry no plan");

    let analyzed = client
        .post_ok(
            "/sessions/analyze/query",
            &Json::obj(vec![("sql", Json::str(sql)), ("analyze", Json::Bool(true))]),
        )
        .unwrap();
    assert_eq!(
        analyzed.get("result").unwrap().get("rows"),
        plain.get("result").unwrap().get("rows"),
        "analyze must not perturb results"
    );
    let explain = analyzed.get("explain").unwrap().as_str().unwrap();
    assert!(explain.contains("Engine:"), "{explain}");
    assert!(explain.contains("threads="), "{explain}");
    let profile = analyzed.get("profile").unwrap();
    assert_eq!(profile.get("name").and_then(Json::as_str), Some("query"));
    assert!(
        !profile
            .get("children")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty(),
        "execution trace is empty: {profile}"
    );
    server.shutdown();
}

/// The always-on sampler: with no profile flags and no analyze requests,
/// the profile ring fills by itself. Queries land as `query` entries
/// (the session's 1-in-N knob; first query always samples), debug-run
/// iterations land as `iteration` entries, fetch-by-id returns the full
/// span tree, results stay bit-identical, and a `slow_ms` threshold of
/// zero force-captures every request into the slow ring.
#[test]
fn always_on_sampling_fills_the_profile_ring() {
    let server = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // sample_every=2 on a fresh session: queries 0, 2, 4, … are traced.
    // slow_ms=0 marks everything slow, exercising the force-capture ring.
    let mut body = logistic_session("ring");
    if let Json::Obj(pairs) = &mut body {
        pairs.push(("sample_every".into(), Json::num(2.0)));
        pairs.push(("slow_ms".into(), Json::num(0.0)));
    }
    let created = client.post_ok("/sessions", &body).unwrap();
    assert_eq!(
        created.get("sample_every").and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(created.get("slow_ms").and_then(Json::as_f64), Some(0.0));
    client
        .post_ok("/sessions/ring/tables", &table_json("pairs", 30, 10))
        .unwrap();

    let q = Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]);
    let mut results = Vec::new();
    for _ in 0..4 {
        let out = client.post_ok("/sessions/ring/query", &q).unwrap();
        results.push(out.get("result").unwrap().clone());
    }
    // Sampling is a pure observer: traced and untraced queries agree.
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "sampled queries changed results"
    );

    // A plain debug run (no ?profile=1) contributes iteration profiles.
    client
        .post_ok("/sessions/ring/train", &train_json(60, 10))
        .unwrap();
    client
        .post_ok(
            "/sessions/ring/complain",
            &Json::obj(vec![
                (
                    "sql",
                    Json::str("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1"),
                ),
                (
                    "complaint",
                    Json::obj(vec![
                        ("kind", Json::str("value")),
                        ("op", Json::str("eq")),
                        ("target", Json::num(10.0)),
                    ]),
                ),
            ]),
        )
        .unwrap();
    let run = client
        .post_ok(
            "/sessions/ring/debug-run",
            &Json::obj(vec![
                ("method", Json::str("loss")),
                ("budget", Json::num(4.0)),
                ("k_per_iter", Json::num(2.0)),
                ("sample_every", Json::num(1.0)),
            ]),
        )
        .unwrap();
    let done = await_job(&mut client, run.get("job").unwrap().as_i64().unwrap());
    let report = done.get("report").unwrap();
    // The report itself carries the sampled iteration trees (profile
    // stays null — nobody asked for the full-run tree)…
    assert_eq!(report.get("profile"), Some(&Json::Null));
    let iter_profiles = report.get("iteration_profiles").unwrap().as_arr().unwrap();
    assert!(
        !iter_profiles.is_empty(),
        "1-in-1 run sampled no iterations"
    );
    for ip in iter_profiles {
        let tree = ip.get("profile").unwrap();
        assert_eq!(tree.get("name").and_then(Json::as_str), Some("iteration"));
        assert!(ip.get("iteration").and_then(Json::as_f64).is_some());
    }

    // …and the ring now serves both kinds of capture.
    let listing = client.get_ok("/debug/profiles").unwrap();
    let recent = listing.get("recent").unwrap().as_arr().unwrap();
    let slow = listing.get("slow").unwrap().as_arr().unwrap();
    assert!(!recent.is_empty(), "recent ring empty: {listing}");
    assert!(!slow.is_empty(), "slow_ms=0 captured nothing: {listing}");
    let kind_of = |e: &Json| e.get("kind").and_then(Json::as_str).map(str::to_string);
    assert!(
        recent
            .iter()
            .any(|e| kind_of(e).as_deref() == Some("query")),
        "no sampled query in ring: {listing}"
    );
    assert!(
        recent
            .iter()
            .any(|e| kind_of(e).as_deref() == Some("iteration")),
        "no sampled iteration in ring: {listing}"
    );

    // Every listed entry is fetchable by id; recent entries carry a
    // valid span tree whose root matches the kind and whose summary
    // span count matches the tree.
    for e in recent {
        let id = e.get("id").unwrap().as_i64().unwrap();
        let full = client.get_ok(&format!("/debug/profiles/{id}")).unwrap();
        let tree = full.get("profile").unwrap();
        let root = tree.get("name").and_then(Json::as_str).unwrap();
        assert!(root == "query" || root == "iteration", "odd root {root}");
        assert!(tree.get("dur_ns").and_then(Json::as_f64).unwrap() >= 0.0);
        fn count_spans(t: &Json) -> usize {
            1 + t
                .get("children")
                .and_then(Json::as_arr)
                .map_or(0, |cs| cs.iter().map(count_spans).sum())
        }
        assert_eq!(
            count_spans(tree) as f64,
            e.get("spans").unwrap().as_f64().unwrap(),
            "span count disagrees with summary"
        );
        assert_eq!(full.get("detail"), e.get("detail"));
    }
    // Sampled queries record their SQL as the detail.
    assert!(
        recent.iter().any(|e| e
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("SELECT COUNT(*)"))),
        "query detail lost: {listing}"
    );
    // Unknown ids 404.
    let (status, _) = client.get("/debug/profiles/999999").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// Durable mode end-to-end: a server with a `data_dir` logs every catalog
/// mutation, the append endpoint grows a table in place (bumping its
/// `(gen, delta)` version and invalidating the cached skeleton), and a
/// **restarted** server against the same directory recovers the session —
/// `POST /sessions` re-attaches instead of 409ing, and the cached query
/// serves the full pre-crash data without any re-registration. Also
/// covers `POST /debug/profiles/flush` and `request_id` threading.
#[test]
fn restart_recovers_sessions_and_serves_cached_queries() {
    let data_dir = std::env::temp_dir().join(format!("rain-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let dir_str = data_dir.to_string_lossy().into_owned();

    let server = start(ServerConfig {
        data_dir: Some(dir_str.clone()),
        ..Default::default()
    })
    .unwrap();
    {
        let mut client = Client::connect(server.addr()).unwrap();
        // sample_every=1: every query samples, so request_id threading is
        // observable in the profile ring after the restart too (the knob
        // rides in the logged creation spec).
        let mut body = logistic_session("boot");
        if let Json::Obj(pairs) = &mut body {
            pairs.push(("sample_every".into(), Json::num(1.0)));
        }
        let created = client.post_ok("/sessions", &body).unwrap();
        assert_eq!(created.get("recovered"), Some(&Json::Bool(false)));
        client
            .post_ok("/sessions/boot/tables", &table_json("pairs", 10, 4))
            .unwrap();
        client
            .post_ok("/sessions/boot/train", &train_json(40, 8))
            .unwrap();

        let q = Json::obj(vec![("sql", Json::str("SELECT COUNT(*) FROM pairs"))]);
        let count = |v: &Json| {
            v.get("result")
                .unwrap()
                .get("rows")
                .unwrap()
                .as_arr()
                .unwrap()[0]
                .as_arr()
                .unwrap()[0]
                .as_i64()
                .unwrap()
        };
        let first = client.post_ok("/sessions/boot/query", &q).unwrap();
        assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(count(&first), 10);

        // Ingest by append: no re-registration, delta version bump.
        let appended = client
            .post_ok(
                "/sessions/boot/tables/pairs/append",
                &Json::obj(vec![
                    (
                        "rows",
                        Json::Arr(vec![
                            Json::Arr(vec![Json::num(100.0)]),
                            Json::Arr(vec![Json::num(101.0)]),
                        ]),
                    ),
                    (
                        "features",
                        Json::Arr(vec![
                            Json::Arr(vec![Json::num(2.0)]),
                            Json::Arr(vec![Json::num(-2.0)]),
                        ]),
                    ),
                ]),
            )
            .unwrap();
        assert_eq!(appended.get("appended").unwrap().as_i64(), Some(2));
        assert_eq!(appended.get("rows").unwrap().as_i64(), Some(12));
        let version = appended.get("version").unwrap();
        assert_eq!(version.get("gen").unwrap().as_i64(), Some(0));
        assert_eq!(version.get("delta").unwrap().as_i64(), Some(1));

        // The cached skeleton notices the delta and re-prepares.
        let second = client.post_ok("/sessions/boot/query", &q).unwrap();
        assert_eq!(second.get("cache").unwrap().as_str(), Some("invalidated"));
        assert_eq!(count(&second), 12);
        assert_eq!(
            client
                .post_ok("/sessions/boot/query", &q)
                .unwrap()
                .get("cache")
                .unwrap()
                .as_str(),
            Some("hit")
        );
        // Appends to unknown tables are a 400, not a crash.
        assert_eq!(
            client
                .post(
                    "/sessions/boot/tables/ghost/append",
                    &Json::obj(vec![("rows", Json::Arr(vec![]))]),
                )
                .unwrap()
                .0,
            400
        );

        // Storage counters are live on /stats.
        let stats = client.get_ok("/stats").unwrap();
        let storage = stats.get("storage").unwrap();
        assert!(storage.get("log_records").unwrap().as_i64().unwrap() >= 4);
        assert!(storage.get("log_bytes").unwrap().as_i64().unwrap() > 0);

        // Flush the profile ring to disk; the file must exist.
        let flushed = client
            .post_ok("/debug/profiles/flush", &Json::obj(vec![]))
            .unwrap();
        let path = flushed.get("path").unwrap().as_str().unwrap().to_string();
        assert!(
            std::path::Path::new(&path).exists(),
            "no flush file at {path}"
        );
        assert!(flushed.get("recent").unwrap().as_i64().unwrap() >= 1);
    }
    server.shutdown();

    // ---- Restart against the same directory. ----
    let server = start(ServerConfig {
        data_dir: Some(dir_str),
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let stats = client.get_ok("/stats").unwrap();
    let storage = stats.get("storage").unwrap();
    assert_eq!(
        storage.get("recovered_sessions").unwrap().as_i64(),
        Some(1),
        "{stats}"
    );
    let listed = client.get_ok("/sessions").unwrap();
    let boot = &listed.get("sessions").unwrap().as_arr().unwrap()[0];
    assert_eq!(boot.get("recovered"), Some(&Json::Bool(true)));

    // Re-attach: the same creation request answers 200 with the
    // recovered state instead of 409ing.
    let reattach = client
        .post_ok("/sessions", &logistic_session("boot"))
        .unwrap();
    assert_eq!(reattach.get("recovered"), Some(&Json::Bool(true)));

    // The cached query runs against recovered data — table, appended
    // rows, and versions all came back from snapshot+log, with no
    // re-registration.
    let q = Json::obj(vec![
        ("sql", Json::str("SELECT COUNT(*) FROM pairs")),
        ("request_id", Json::str("req-42")),
    ]);
    let out = client.post_ok("/sessions/boot/query", &q).unwrap();
    assert_eq!(
        out.get("result")
            .unwrap()
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .as_arr()
            .unwrap()[0]
            .as_i64(),
        Some(12),
        "recovered catalog must include the appended rows"
    );
    assert_eq!(
        client
            .post_ok("/sessions/boot/query", &q)
            .unwrap()
            .get("cache")
            .unwrap()
            .as_str(),
        Some("hit")
    );

    // The client-supplied request_id landed on the sampled profile entry.
    let listing = client.get_ok("/debug/profiles").unwrap();
    let recent = listing.get("recent").unwrap().as_arr().unwrap();
    assert!(
        recent
            .iter()
            .any(|e| e.get("request_id").and_then(Json::as_str) == Some("req-42")),
        "no profile entry carries the request id: {listing}"
    );

    // And through a debug job: complaints are session state (not logged),
    // so file one fresh, then tag the run.
    client
        .post_ok(
            "/sessions/boot/complain",
            &Json::obj(vec![
                (
                    "sql",
                    Json::str("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1"),
                ),
                (
                    "complaint",
                    Json::obj(vec![
                        ("kind", Json::str("value")),
                        ("op", Json::str("eq")),
                        ("target", Json::num(4.0)),
                    ]),
                ),
            ]),
        )
        .unwrap();
    let run = client
        .post_ok(
            "/sessions/boot/debug-run",
            &Json::obj(vec![
                ("method", Json::str("loss")),
                ("budget", Json::num(2.0)),
                ("k_per_iter", Json::num(1.0)),
                ("request_id", Json::str("req-77")),
            ]),
        )
        .unwrap();
    let done = await_job(&mut client, run.get("job").unwrap().as_i64().unwrap());
    assert_eq!(
        done.get("request_id").and_then(Json::as_str),
        Some("req-77")
    );

    // Deleting the session removes its on-disk state: a third boot
    // recovers nothing.
    client.delete("/sessions/boot").unwrap();
    server.shutdown();
    let data_dir2 = data_dir.clone();
    let server = start(ServerConfig {
        data_dir: Some(data_dir2.to_string_lossy().into_owned()),
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let stats = client.get_ok("/stats").unwrap();
    assert_eq!(
        stats
            .get("storage")
            .unwrap()
            .get("recovered_sessions")
            .unwrap()
            .as_i64(),
        Some(0)
    );
    assert_eq!(stats.get("sessions").unwrap().as_i64(), Some(0));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// The optimizer surface on the wire: `POST …/tables/{t}/index` creates a
/// secondary index (validating before logging), `GET …/tables/{t}/stats`
/// exposes the planner statistics the cost model reads, an `analyze`
/// query shows the index-backed access path in its plan, and a restarted
/// server rebuilds the index from the logged definition.
#[test]
fn index_and_stats_endpoints_round_trip_and_recover() {
    let data_dir = std::env::temp_dir().join(format!("rain-serve-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let dir_str = data_dir.to_string_lossy().into_owned();

    let server = start(ServerConfig {
        data_dir: Some(dir_str.clone()),
        ..Default::default()
    })
    .unwrap();
    {
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .post_ok("/sessions", &logistic_session("ix"))
            .unwrap();
        client
            .post_ok("/sessions/ix/tables", &table_json("pairs", 10, 4))
            .unwrap();

        // Bad requests validate before anything is logged.
        let body = |col: &str, kind: &str| {
            Json::obj(vec![("column", Json::str(col)), ("kind", Json::str(kind))])
        };
        assert_eq!(
            client
                .post("/sessions/ix/tables/pairs/index", &body("id", "btree"))
                .unwrap()
                .0,
            400,
            "unknown kind must 400"
        );
        assert_eq!(
            client
                .post("/sessions/ix/tables/pairs/index", &body("ghost", "hash"))
                .unwrap()
                .0,
            400,
            "unknown column must 400"
        );

        let created = client
            .post_ok("/sessions/ix/tables/pairs/index", &body("id", "hash"))
            .unwrap();
        assert_eq!(created.get("kind").unwrap().as_str(), Some("hash"));
        assert_eq!(created.get("entries").unwrap().as_i64(), Some(10));
        client
            .post_ok("/sessions/ix/tables/pairs/index", &body("id", "sorted"))
            .unwrap();

        // The stats endpoint shows the planner's inputs and both indexes.
        let stats = client.get_ok("/sessions/ix/tables/pairs/stats").unwrap();
        assert_eq!(stats.get("rows").unwrap().as_i64(), Some(10));
        let cols = stats.get("columns").unwrap().as_arr().unwrap();
        assert_eq!(cols[0].get("name").unwrap().as_str(), Some("id"));
        assert_eq!(cols[0].get("distinct").unwrap().as_i64(), Some(10));
        assert_eq!(cols[0].get("min").unwrap().as_i64(), Some(0));
        assert_eq!(cols[0].get("max").unwrap().as_i64(), Some(9));
        let indexes = stats.get("indexes").unwrap().as_arr().unwrap();
        assert_eq!(indexes.len(), 2, "{stats}");

        // An analyze query over the indexed column shows the index-backed
        // access path in the executed plan.
        let q = Json::obj(vec![
            ("sql", Json::str("SELECT COUNT(*) FROM pairs WHERE id = 3")),
            ("analyze", Json::Bool(true)),
        ]);
        let out = client.post_ok("/sessions/ix/query", &q).unwrap();
        let explain = out.get("explain").unwrap().as_str().unwrap();
        assert!(
            explain.contains("index-scan(id)"),
            "analyze plan must show the index access path: {explain}"
        );
        assert!(
            explain.contains("est=") && explain.contains("actual=1"),
            "analyze plan must pair estimates with observed rows: {explain}"
        );

        // Appends keep the index fresh and the stats current.
        client
            .post_ok(
                "/sessions/ix/tables/pairs/append",
                &Json::obj(vec![
                    ("rows", Json::Arr(vec![Json::Arr(vec![Json::num(100.0)])])),
                    ("features", Json::Arr(vec![Json::Arr(vec![Json::num(2.0)])])),
                ]),
            )
            .unwrap();
        let stats = client.get_ok("/sessions/ix/tables/pairs/stats").unwrap();
        assert_eq!(stats.get("rows").unwrap().as_i64(), Some(11));
        let indexes = stats.get("indexes").unwrap().as_arr().unwrap();
        assert!(
            indexes
                .iter()
                .all(|ix| ix.get("entries").unwrap().as_i64() == Some(11)),
            "appends must rebuild indexes: {stats}"
        );

        // Stats against an unknown table are a 400.
        assert_eq!(
            client.get("/sessions/ix/tables/ghost/stats").unwrap().0,
            400
        );
    }
    server.shutdown();

    // Restart: the logged index definitions come back, rebuilt over the
    // recovered table (original rows plus the appended one).
    let server = start(ServerConfig {
        data_dir: Some(dir_str),
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let stats = client.get_ok("/sessions/ix/tables/pairs/stats").unwrap();
    assert_eq!(stats.get("rows").unwrap().as_i64(), Some(11));
    let indexes = stats.get("indexes").unwrap().as_arr().unwrap();
    assert_eq!(indexes.len(), 2, "recovered session must keep its indexes");
    assert!(
        indexes
            .iter()
            .all(|ix| ix.get("entries").unwrap().as_i64() == Some(11)),
        "recovered indexes must cover the recovered rows: {stats}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
