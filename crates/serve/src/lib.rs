//! # rain-serve: the long-lived complaint-debugging server
//!
//! The library crates make one debugging interaction cheap; this crate
//! makes *many* of them cheap by keeping the engine resident and warm.
//! It turns [`DebugSession`](rain_core::driver::DebugSession) into a
//! multi-client service — std only, like the rest of the workspace: the
//! HTTP/1.1 framing, the JSON codec, the thread pool, and the wire
//! protocol are all hand-rolled in-repo.
//!
//! ```text
//!        TcpListener (accept thread)
//!             │  one thread per connection, HTTP/1.1 keep-alive
//!             ▼
//!        server::handle ──────────────► jobs::JobRunner (worker threads)
//!             │                                  │ POST …/debug-run → job id,
//!             ▼                                  │ GET /jobs/{id} → report
//!        pool::SessionPool                       │
//!         "s1" ─ Mutex<SessionState> ◄───────────┘  (same mutex: jobs and
//!         "s2" ─ Mutex<SessionState>                 requests serialize
//!          …        │                                per session)
//!                   ├─ DebugSession (Database, Dataset, model, complaints)
//!                   └─ QueryCache   (normalized SQL → prepared skeleton)
//! ```
//!
//! - **Session pool** ([`pool`]) — named sessions, each owning its
//!   database, training set, model, and complaints. Per-session mutex +
//!   generation counter: requests serialize within a session and run in
//!   parallel across sessions.
//! - **Skeleton cache** ([`rain_sql::QueryCache`], one per session) —
//!   repeat queries and successive debug runs skip parse/bind/optimize
//!   and skeleton capture; re-registered tables invalidate by catalog
//!   version and transparently re-prepare.
//! - **Job runner** ([`jobs`]) — debug runs execute on a worker pool off
//!   the accept path, with job-id polling for status and reports.
//! - **Wire protocol** ([`server`] routes, [`protocol`] shapes,
//!   [`json`] codec, [`http`] framing) and a blocking [`client`].
//! - **Observability** — always on. `GET /metrics` exports a
//!   [`rain_obs`] metrics registry (per-endpoint request-latency
//!   quantile summaries, queue/lock waits, cache and job counters) in
//!   Prometheus text exposition format; the serve layer traces 1-in-N
//!   queries and debug-run iterations per session into a bounded
//!   [`profiles::ProfileRing`] served at `GET /debug/profiles`, with
//!   slow requests force-captured; `?profile=1` debug runs and
//!   `"analyze": true` queries still return span trees inline (see
//!   [`server`] and [`protocol`]).
//!
//! ## Example
//!
//! ```
//! use rain_serve::{json::Json, Client, ServerConfig};
//!
//! let server = rain_serve::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! client
//!     .post_ok(
//!         "/sessions",
//!         &Json::obj(vec![
//!             ("name", Json::str("demo")),
//!             (
//!                 "model",
//!                 Json::obj(vec![
//!                     ("kind", Json::str("logistic")),
//!                     ("dim", Json::num(1.0)),
//!                 ]),
//!             ),
//!         ]),
//!     )
//!     .unwrap();
//! let stats = client.get_ok("/stats").unwrap();
//! assert_eq!(stats.get("sessions").unwrap().as_i64(), Some(1));
//! server.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod jobs;
pub mod json;
pub mod pool;
pub mod profiles;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use jobs::{JobInfo, JobRunner, JobState, JobStats};
pub use json::{parse as parse_json, Json, JsonError};
pub use pool::{SessionPool, SessionSlot, SessionState};
pub use profiles::{ProfileEntry, ProfileRing};
pub use protocol::ApiError;
pub use server::{start, ServerConfig, ServerHandle, ServerState};
