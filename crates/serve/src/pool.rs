//! The session pool: named, long-lived debugging sessions.
//!
//! Each session owns a full [`DebugSession`] (queried `Database`, training
//! `Dataset`, model, attached complaints) plus its private
//! [`QueryCache`] of prepared skeletons. A session's state sits behind one
//! `Mutex`: concurrent requests against the *same* session serialize (the
//! catalog, cache, and training set are one consistent unit), while
//! requests against *different* sessions run fully in parallel — there is
//! no shared lock on the request path beyond the brief pool-map read.
//!
//! A `generation` counter on each slot records every observable mutation
//! (table registration, training upload, complaint, completed debug run).
//! It is monotonic under the mutex, which makes per-session serialization
//! externally checkable: N concurrent mutations always land N distinct
//! generations. Cache statistics are mirrored into atomics after each
//! cache-touching request so `GET /stats` never has to queue behind a
//! long-running debug job for a session lock.

use crate::protocol::ApiError;
use rain_core::driver::{DebugReport, DebugSession, PreparedQueries, RunConfig};
use rain_core::rank::Method;
use rain_model::{Classifier, Dataset};
use rain_obs::Sketch;
use rain_sql::{CacheStats, Database, ExecOptions, QueryCache};
use rain_storage::SessionStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// Default query/iteration sampling period: 1-in-16 (see
/// [`SessionSlot::should_sample`]). Always-on by default; `0` disables.
pub const DEFAULT_SAMPLE_EVERY: u64 = 16;
/// Default slow-capture threshold in milliseconds: queries slower than
/// this are force-captured into the slow-profile ring even when the
/// sampler skipped them.
pub const DEFAULT_SLOW_MS: u64 = 500;

/// Everything a session's mutex guards.
pub struct SessionState {
    /// The library session: database + training set + model + queries.
    pub sess: DebugSession,
    /// Prepared-skeleton cache for this session's SQL.
    pub cache: QueryCache,
    /// The most recent completed debug report, if any.
    pub last_report: Option<DebugReport>,
    /// Verbatim session-creation JSON (what recovery rebuilds the model
    /// from). Empty for ephemeral sessions.
    pub spec: String,
    /// The commitlog + snapshots behind this session, when it is durable
    /// (the server was started with a data dir).
    pub store: Option<SessionStore>,
}

/// Lock-free mirror of a durable session's storage counters, refreshed
/// after each logged mutation so `GET /stats` and `GET /metrics` never
/// take session locks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    /// Durable commitlog size, bytes.
    pub log_bytes: u64,
    /// Durable records in the commitlog.
    pub log_records: u64,
    /// Snapshots cut (including the one recovery loaded, if any).
    pub snapshots: u64,
    /// Unix milliseconds of the last snapshot cut by this process.
    pub last_snapshot_unix_ms: u64,
    /// Log bytes accumulated behind the latest snapshot.
    pub snapshot_lag_bytes: u64,
}

/// One named session: its mutex-guarded state plus lock-free metadata.
pub struct SessionSlot {
    /// Session name (the URL path segment).
    pub name: String,
    /// The session's execution config, fixed at creation: the engine
    /// every capture and debug run in this session uses (no more silent
    /// default-engine assumption between the cache and the driver) and
    /// the worker-budget cap applied to every execution (`threads`, `0`
    /// = the machine's parallelism). Operators set it on
    /// `POST /sessions`.
    pub opts: ExecOptions,
    state: Mutex<SessionState>,
    /// Observes how long callers block acquiring the session mutex, when
    /// the server wires its metrics registry in.
    lock_wait: Option<Arc<Sketch>>,
    /// Monotonic mutation counter (see the module docs).
    generation: AtomicU64,
    /// Lock-free mirror of the cache counters, refreshed after each
    /// cache-touching request.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_invalidations: AtomicU64,
    /// Sampling period for always-on profiling: every Nth query (and
    /// debug-run iteration) is traced into the profile ring. `0` = off:
    /// never sample (explicitly — the modulo path is not consulted).
    sample_every: AtomicU64,
    /// Slow-capture threshold in milliseconds (force-capture latency).
    /// `0` = force-capture *everything* (explicitly — not as an accident
    /// of every latency exceeding a zero threshold).
    slow_ms: AtomicU64,
    /// Queries seen so far — drives the 1-in-N sampling decision.
    query_seq: AtomicU64,
    /// Lock-free running totals of the prediction-memo counters across
    /// this session's debug runs (each run's [`DebugReport`] deltas are
    /// folded in after the run).
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    /// Whether this session writes a commitlog (fixed at creation).
    durable: bool,
    /// Whether this slot was rebuilt from disk at boot (re-attachable via
    /// `POST /sessions` without a 409).
    recovered: bool,
    /// Lock-free mirror of the store's counters (see
    /// [`SessionSlot::publish_storage_stats`]).
    log_bytes: AtomicU64,
    log_records: AtomicU64,
    snapshots: AtomicU64,
    last_snapshot_ms: AtomicU64,
    snapshot_lag: AtomicU64,
}

impl std::fmt::Debug for SessionSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionSlot")
            .field("name", &self.name)
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl SessionSlot {
    fn new(
        name: String,
        model: Box<dyn Classifier>,
        opts: ExecOptions,
        lock_wait: Option<Arc<Sketch>>,
    ) -> Self {
        let dim = model.dim();
        let sess = DebugSession::new(
            Database::new(),
            Dataset::new(
                rain_linalg::Matrix::zeros(0, dim),
                Vec::new(),
                model.n_classes().max(2),
            ),
            model,
        );
        SessionSlot::from_session(name, sess, opts, lock_wait, String::new(), None, false)
    }

    /// Build a slot around an already-assembled session — the fresh-create
    /// path above and the boot-recovery path both land here, so a
    /// recovered slot behaves exactly like a live one.
    fn from_session(
        name: String,
        sess: DebugSession,
        opts: ExecOptions,
        lock_wait: Option<Arc<Sketch>>,
        spec: String,
        store: Option<SessionStore>,
        recovered: bool,
    ) -> Self {
        let durable = store.is_some();
        let counters = store
            .as_ref()
            .map(|s| {
                (
                    s.log_bytes(),
                    s.log_records(),
                    s.snapshots_taken(),
                    s.last_snapshot_unix_ms(),
                    s.snapshot_lag_bytes(),
                )
            })
            .unwrap_or_default();
        SessionSlot {
            name,
            opts,
            state: Mutex::new(SessionState {
                sess,
                // The cache captures on the session's configured engine
                // under its thread cap — the same engine/budget debug
                // runs use, so cached skeletons and runs always agree.
                cache: QueryCache::new(opts.engine).with_threads(opts.threads),
                last_report: None,
                spec,
                store,
            }),
            lock_wait,
            generation: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_invalidations: AtomicU64::new(0),
            sample_every: AtomicU64::new(DEFAULT_SAMPLE_EVERY),
            slow_ms: AtomicU64::new(DEFAULT_SLOW_MS),
            query_seq: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            durable,
            recovered,
            log_bytes: AtomicU64::new(counters.0),
            log_records: AtomicU64::new(counters.1),
            snapshots: AtomicU64::new(counters.2),
            last_snapshot_ms: AtomicU64::new(counters.3),
            snapshot_lag: AtomicU64::new(counters.4),
        }
    }

    /// Whether this session writes a commitlog.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Whether this slot was rebuilt from disk at boot.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Mirror the store's counters into the lock-free snapshot; call
    /// while holding (or just before releasing) the state lock, after
    /// each logged mutation.
    pub fn publish_storage_stats(&self, store: &SessionStore) {
        self.log_bytes.store(store.log_bytes(), Ordering::Relaxed);
        self.log_records
            .store(store.log_records(), Ordering::Relaxed);
        self.snapshots
            .store(store.snapshots_taken(), Ordering::Relaxed);
        self.last_snapshot_ms
            .store(store.last_snapshot_unix_ms(), Ordering::Relaxed);
        self.snapshot_lag
            .store(store.snapshot_lag_bytes(), Ordering::Relaxed);
    }

    /// The lock-free storage-counter snapshot; `None` for ephemeral
    /// sessions.
    pub fn storage_snapshot(&self) -> Option<StorageCounters> {
        self.durable.then(|| StorageCounters {
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            log_records: self.log_records.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            last_snapshot_unix_ms: self.last_snapshot_ms.load(Ordering::Relaxed),
            snapshot_lag_bytes: self.snapshot_lag.load(Ordering::Relaxed),
        })
    }

    /// Configure always-on profiling for this session: trace 1-in-`every`
    /// queries/iterations (`0` disables sampling) and force-capture
    /// anything slower than `slow_ms` milliseconds (`0` force-captures
    /// everything).
    pub fn set_sampling(&self, every: u64, slow_ms: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
        self.slow_ms.store(slow_ms, Ordering::Relaxed);
    }

    /// The session's sampling period (`0` = sampling off).
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// The session's slow-capture threshold, in milliseconds.
    pub fn slow_ms(&self) -> u64 {
        self.slow_ms.load(Ordering::Relaxed)
    }

    /// The session's slow-capture threshold, in seconds.
    pub fn slow_threshold_s(&self) -> f64 {
        self.slow_ms.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Whether a request of `latency_s` seconds must be force-captured
    /// into the slow-profile ring. `slow_ms == 0` means "capture
    /// everything" **by decision**, not because every latency happens to
    /// clear a zero threshold — zero-duration captures (a clock that
    /// returned the same instant twice) are included either way.
    pub fn is_slow_capture(&self, latency_s: f64) -> bool {
        let ms = self.slow_ms.load(Ordering::Relaxed);
        ms == 0 || latency_s >= ms as f64 / 1e3
    }

    /// Sampling decision for the next query: true on the first query and
    /// every `sample_every`-th after it. `sample_every == 0` means
    /// "never sample" — decided before the sequence counter or its
    /// modulo are consulted (`x % 0` panics), so the knob is an explicit
    /// off switch, not an accident of guard ordering.
    pub fn should_sample(&self) -> bool {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        self.query_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }

    /// Fold one debug run's prediction-memo counters into the session's
    /// lifetime totals.
    pub fn add_memo_counters(&self, hits: u64, misses: u64) {
        self.memo_hits.fetch_add(hits, Ordering::Relaxed);
        self.memo_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// The session's lifetime `(hits, misses)` prediction-memo totals.
    pub fn memo_snapshot(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// Lock the session's state. Survives a poisoned mutex (a panicking
    /// job must not brick the session: state mutations are all
    /// whole-value swaps, so the state stays consistent).
    pub fn lock(&self) -> MutexGuard<'_, SessionState> {
        let t = self.lock_wait.as_ref().map(|_| Instant::now());
        let guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if let (Some(h), Some(t)) = (&self.lock_wait, t) {
            h.observe(t.elapsed().as_secs_f64());
        }
        guard
    }

    /// Record one observable mutation, returning the new generation.
    pub fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Mutations so far.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Mirror the cache counters into the lock-free snapshot; call while
    /// holding (or just before releasing) the state lock.
    pub fn publish_cache_stats(&self, stats: CacheStats) {
        self.cache_hits.store(stats.hits, Ordering::Relaxed);
        self.cache_misses.store(stats.misses, Ordering::Relaxed);
        self.cache_invalidations
            .store(stats.invalidations, Ordering::Relaxed);
    }

    /// The lock-free cache-counter snapshot.
    pub fn cache_stats_snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            invalidations: self.cache_invalidations.load(Ordering::Relaxed),
        }
    }

    /// The worker budget a run may actually use: the request's ask capped
    /// by the session's configured budget (`0` means "no preference" on
    /// the request side and "machine parallelism" on the session side).
    pub fn effective_threads(&self, requested: usize) -> usize {
        match (self.opts.threads, requested) {
            (0, r) => r,
            (cap, 0) => cap,
            (cap, r) => r.min(cap),
        }
    }

    /// Execute one debug run against this session, routing every query
    /// through the session's skeleton cache: skeletons are checked out,
    /// refreshed across all train–rank–fix iterations, and checked back
    /// in afterwards — so a *second* run over the same complaints starts
    /// from cache hits and skips planning and capture entirely.
    ///
    /// The run executes on the session's configured engine, and its
    /// worker budget is the request's `threads` capped by the session's
    /// (see [`SessionSlot::effective_threads`]).
    pub fn run_debug(&self, method: Method, cfg: &RunConfig) -> Result<DebugReport, ApiError> {
        let cfg = &RunConfig {
            engine: self.opts.engine,
            threads: self.effective_threads(cfg.threads),
            ..cfg.clone()
        };
        let mut st = self.lock();
        let st = &mut *st;
        if st.sess.train.is_empty() {
            return Err(ApiError::bad_request(
                "session has no training data; POST …/train first",
            ));
        }
        if st.sess.queries.is_empty() {
            return Err(ApiError::bad_request(
                "session has no complaints; POST …/complain first",
            ));
        }
        let result = if cfg.incremental {
            // Check out every query's skeleton first; if any checkout
            // fails (e.g. a re-registered table broke a later query),
            // the ones already checked out are returned to the cache
            // below instead of being silently dropped.
            //
            // A profiled run traces the checkout phase too — cache
            // lookups and (on a miss) skeleton capture happen here,
            // before the driver opens its own `debug-run` root — and the
            // harvested `checkout` subtree is grafted onto the report's
            // profile below so `?profile=1` covers prepare as well as
            // refresh/rank.
            let _checkout_trace = cfg.profile.then(rain_obs::activate);
            let checkout_span = rain_obs::Span::enter("checkout");
            let checkout_id = checkout_span.id();
            let mut checked = Vec::with_capacity(st.sess.queries.len());
            let mut checkout_err = None;
            for q in &st.sess.queries {
                // The run's (session-capped) budget governs capture too,
                // not only refreshes.
                match st.cache.checkout_threaded(
                    &st.sess.db,
                    st.sess.model.as_ref(),
                    &q.sql,
                    cfg.threads,
                ) {
                    Ok(cq) => checked.push(cq),
                    Err(e) => {
                        checkout_err = Some(ApiError::from(e));
                        break;
                    }
                }
            }
            drop(checkout_span);
            let checkout_tree = rain_obs::take_subtree(checkout_id);
            let result = match checkout_err {
                Some(e) => Err(e),
                None => {
                    let mut keys = Vec::with_capacity(checked.len());
                    let mut plans = Vec::with_capacity(checked.len());
                    let mut prepared = Vec::with_capacity(checked.len());
                    for cq in checked.drain(..) {
                        plans.push(cq.prepared.plan().clone());
                        keys.push(cq.key);
                        prepared.push(cq.prepared);
                    }
                    let mut pq = PreparedQueries::from_parts(plans, prepared);
                    let mut run = st.sess.run_prepared(method, cfg, &mut pq);
                    if let (Ok(report), Some(co)) = (&mut run, checkout_tree) {
                        if let Some(profile) = &mut report.profile {
                            // Offsets inside each grafted subtree stay
                            // relative to that subtree's own root.
                            profile.children.insert(0, co);
                        }
                    }
                    // Return the (possibly rebuilt) skeletons to the
                    // cache even when the run failed.
                    let (_, prepared) = pq.into_parts();
                    for (key, p) in keys.into_iter().zip(prepared) {
                        st.cache.checkin(rain_sql::CachedQuery {
                            key,
                            prepared: p,
                            event: rain_sql::CacheEvent::Hit,
                        });
                    }
                    run.map_err(ApiError::from)
                }
            };
            for cq in checked {
                st.cache.checkin(cq);
            }
            result
        } else {
            st.sess.run(method, cfg).map_err(ApiError::from)
        };
        // Stats and (on success) the mutation counter are published on
        // every exit path — a failed run still moved cache counters.
        self.publish_cache_stats(st.cache.stats());
        match result {
            Ok(report) => {
                self.add_memo_counters(report.memo_hits, report.memo_misses);
                st.last_report = Some(report.clone());
                self.bump_generation();
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }
}

/// Counters of removed sessions, folded into the pool's baseline so
/// pool-wide totals stay monotonic across session churn.
#[derive(Debug, Default, Clone, Copy)]
struct RetiredTotals {
    cache: CacheStats,
    memo_hits: u64,
    memo_misses: u64,
}

/// The pool: name → session slot. The map itself is behind an `RwLock`
/// held only for lookups/creation — request handling happens on the
/// slot's own mutex, outside the map lock.
#[derive(Default)]
pub struct SessionPool {
    slots: RwLock<HashMap<String, Arc<SessionSlot>>>,
    /// Handed to every created slot; see [`SessionSlot::lock`].
    lock_wait: Option<Arc<Sketch>>,
    /// Cache and memo counters of removed sessions, folded in by
    /// [`SessionPool::remove`] so pool-wide totals
    /// ([`SessionPool::cache_totals`], [`SessionPool::memo_totals`])
    /// stay monotonic across session churn. Locked *before* the slot map
    /// on both the fold and the total paths — that ordering is what
    /// makes a concurrent scrape see either the live slot or its retired
    /// counters, never neither.
    retired: Mutex<RetiredTotals>,
}

/// Valid session names: path-segment safe (and therefore safe as an
/// on-disk directory component — no separators, no `..`).
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

impl SessionPool {
    /// Empty pool.
    pub fn new() -> Self {
        SessionPool::default()
    }

    /// Empty pool whose sessions observe mutex acquisition time into
    /// `lock_wait` (the server wires its
    /// `rain_session_lock_wait_seconds` sketch here).
    pub fn with_lock_wait(lock_wait: Arc<Sketch>) -> Self {
        SessionPool {
            slots: RwLock::default(),
            lock_wait: Some(lock_wait),
            retired: Mutex::default(),
        }
    }

    /// Create a named session owning `model`, with the default execution
    /// config (vectorized engine, automatic worker budget). 409 when the
    /// name exists.
    pub fn create(
        &self,
        name: &str,
        model: Box<dyn Classifier>,
    ) -> Result<Arc<SessionSlot>, ApiError> {
        self.create_with(name, model, ExecOptions::default())
    }

    /// [`SessionPool::create`] with an explicit per-session execution
    /// config (engine + worker-budget cap).
    pub fn create_with(
        &self,
        name: &str,
        model: Box<dyn Classifier>,
        opts: ExecOptions,
    ) -> Result<Arc<SessionSlot>, ApiError> {
        if !valid_session_name(name) {
            return Err(ApiError::bad_request(
                "session names are 1-64 chars of [a-zA-Z0-9._-]",
            ));
        }
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        if slots.contains_key(name) {
            return Err(ApiError::conflict(format!(
                "session '{name}' already exists"
            )));
        }
        let slot = Arc::new(SessionSlot::new(
            name.to_string(),
            model,
            opts,
            self.lock_wait.clone(),
        ));
        slots.insert(name.to_string(), Arc::clone(&slot));
        Ok(slot)
    }

    /// [`SessionPool::create_with`] for a durable session: the slot owns
    /// `store` (its commitlog already holds the session-meta record) and
    /// remembers the verbatim creation `spec`.
    pub fn create_durable(
        &self,
        name: &str,
        model: Box<dyn Classifier>,
        opts: ExecOptions,
        spec: String,
        store: SessionStore,
    ) -> Result<Arc<SessionSlot>, ApiError> {
        if !valid_session_name(name) {
            return Err(ApiError::bad_request(
                "session names are 1-64 chars of [a-zA-Z0-9._-]",
            ));
        }
        let dim = model.dim();
        let sess = DebugSession::new(
            Database::new(),
            Dataset::new(
                rain_linalg::Matrix::zeros(0, dim),
                Vec::new(),
                model.n_classes().max(2),
            ),
            model,
        );
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        if slots.contains_key(name) {
            return Err(ApiError::conflict(format!(
                "session '{name}' already exists"
            )));
        }
        let slot = Arc::new(SessionSlot::from_session(
            name.to_string(),
            sess,
            opts,
            self.lock_wait.clone(),
            spec,
            Some(store),
            false,
        ));
        slots.insert(name.to_string(), Arc::clone(&slot));
        Ok(slot)
    }

    /// Insert a session rebuilt from disk at boot. The slot is flagged
    /// recovered, so `POST /sessions` against its name re-attaches (200)
    /// instead of conflicting (409).
    pub fn insert_recovered(
        &self,
        name: &str,
        sess: DebugSession,
        opts: ExecOptions,
        spec: String,
        store: SessionStore,
    ) -> Result<Arc<SessionSlot>, ApiError> {
        if !valid_session_name(name) {
            return Err(ApiError::bad_request(
                "session names are 1-64 chars of [a-zA-Z0-9._-]",
            ));
        }
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        if slots.contains_key(name) {
            return Err(ApiError::conflict(format!(
                "session '{name}' already exists"
            )));
        }
        let slot = Arc::new(SessionSlot::from_session(
            name.to_string(),
            sess,
            opts,
            self.lock_wait.clone(),
            spec,
            Some(store),
            true,
        ));
        slots.insert(name.to_string(), Arc::clone(&slot));
        Ok(slot)
    }

    /// Look up a session. 404 when missing.
    pub fn get(&self, name: &str) -> Result<Arc<SessionSlot>, ApiError> {
        self.slots
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no session '{name}'")))
    }

    /// Drop a session. In-flight requests holding the slot's `Arc` finish
    /// against the detached state. 404 when missing.
    ///
    /// The slot's final cache counters fold into the pool's retired
    /// totals under the `retired` lock *before* the slot leaves the map,
    /// so [`SessionPool::cache_totals`] (and with it `GET /metrics`)
    /// never regresses across a removal. Counter movement a detached
    /// in-flight request publishes after this point is not totaled —
    /// invisible growth, never a decrease.
    pub fn remove(&self, name: &str) -> Result<(), ApiError> {
        let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        let slot = self
            .slots
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .remove(name)
            .ok_or_else(|| ApiError::not_found(format!("no session '{name}'")))?;
        let s = slot.cache_stats_snapshot();
        retired.cache.hits += s.hits;
        retired.cache.misses += s.misses;
        retired.cache.invalidations += s.invalidations;
        let (mh, mm) = slot.memo_snapshot();
        retired.memo_hits += mh;
        retired.memo_misses += mm;
        Ok(())
    }

    /// Pool-wide cache totals: retired sessions plus every live slot's
    /// snapshot, read under the `retired` lock so a concurrent
    /// [`SessionPool::remove`] can't be double- or zero-counted. The
    /// result is monotonic over time (per-slot counters only grow, and
    /// removal folds them into `retired` atomically w.r.t. this read).
    pub fn cache_totals(&self) -> CacheStats {
        let retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        let mut total = retired.cache;
        for slot in self
            .slots
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            let s = slot.cache_stats_snapshot();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
        }
        total
    }

    /// Pool-wide prediction-memo `(hits, misses)` totals, monotonic
    /// across session churn for the same reason as
    /// [`SessionPool::cache_totals`].
    pub fn memo_totals(&self) -> (u64, u64) {
        let retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        let (mut hits, mut misses) = (retired.memo_hits, retired.memo_misses);
        for slot in self
            .slots
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            let (h, m) = slot.memo_snapshot();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    /// Snapshot of all slots, in name order.
    pub fn list(&self) -> Vec<Arc<SessionSlot>> {
        let mut slots: Vec<Arc<SessionSlot>> = self
            .slots
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        slots.sort_by(|a, b| a.name.cmp(&b.name));
        slots
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when no session exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_model::LogisticRegression;

    fn logistic() -> Box<dyn Classifier> {
        Box::new(LogisticRegression::new(2, 0.01))
    }

    #[test]
    fn create_get_remove_lifecycle() {
        let pool = SessionPool::new();
        assert!(pool.is_empty());
        pool.create("alpha", logistic()).unwrap();
        assert_eq!(pool.create("alpha", logistic()).unwrap_err().status, 409);
        assert_eq!(pool.create("no/slash", logistic()).unwrap_err().status, 400);
        assert_eq!(pool.create("", logistic()).unwrap_err().status, 400);
        assert_eq!(pool.get("alpha").unwrap().name, "alpha");
        assert_eq!(pool.get("beta").unwrap_err().status, 404);
        pool.create("beta", logistic()).unwrap();
        let names: Vec<String> = pool.list().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        pool.remove("alpha").unwrap();
        assert_eq!(pool.remove("alpha").unwrap_err().status, 404);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn session_exec_config_drives_the_cache_and_caps_run_threads() {
        use rain_sql::Engine;
        let pool = SessionPool::new();
        let slot = pool
            .create_with(
                "capped",
                logistic(),
                ExecOptions::default()
                    .with_engine(Engine::Tuple)
                    .with_threads(2),
            )
            .unwrap();
        assert_eq!(slot.opts.engine, Engine::Tuple);
        // The skeleton cache captures on the session's engine under its
        // thread cap — no silent default-engine assumption.
        let st = slot.lock();
        assert_eq!(st.cache.engine(), Engine::Tuple);
        assert_eq!(st.cache.threads(), 2);
        drop(st);
        // Request threads are capped by the session's budget; `0` means
        // "no preference" on the request side.
        assert_eq!(slot.effective_threads(0), 2);
        assert_eq!(slot.effective_threads(8), 2);
        assert_eq!(slot.effective_threads(1), 1);

        let uncapped = pool.create("open", logistic()).unwrap();
        assert_eq!(uncapped.opts.engine, Engine::Vectorized);
        assert_eq!(uncapped.lock().cache.engine(), Engine::Vectorized);
        assert_eq!(uncapped.effective_threads(0), 0);
        assert_eq!(uncapped.effective_threads(3), 3);
    }

    #[test]
    fn generations_count_mutations_exactly_once_each() {
        let pool = SessionPool::new();
        let slot = pool.create("s", logistic()).unwrap();
        assert_eq!(slot.generation(), 0);
        let gens: Vec<u64> = (0..5).map(|_| slot.bump_generation()).collect();
        assert_eq!(gens, [1, 2, 3, 4, 5]);
        assert_eq!(slot.generation(), 5);
    }

    #[test]
    fn failed_checkout_returns_earlier_skeletons_to_the_cache() {
        use rain_core::complaint::{Complaint, QuerySpec};
        use rain_linalg::Matrix;
        use rain_sql::table::{ColType, Column, Schema, Table};

        let pool = SessionPool::new();
        let slot = pool.create("s", logistic()).unwrap();
        {
            let mut st = slot.lock();
            let t = Table::from_columns(
                Schema::new(&[("id", ColType::Int)]),
                vec![Column::Int(vec![0, 1, 2, 3])],
            )
            .with_features(Matrix::from_rows(&[
                &[1.0, 0.0],
                &[1.0, 1.0],
                &[-1.0, 0.0],
                &[-1.0, -1.0],
            ]));
            st.sess.db.register("t", t);
            st.sess.train = rain_model::Dataset::new(
                Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0]]),
                vec![1, 0],
                2,
            );
            st.sess.queries = vec![
                QuerySpec::new("SELECT COUNT(*) FROM t WHERE predict(*) = 1")
                    .with_complaint(Complaint::scalar_eq(2.0)),
                QuerySpec::new("SELECT COUNT(*) FROM missing")
                    .with_complaint(Complaint::scalar_eq(1.0)),
            ];
        }
        // The second query's checkout fails (unknown table); the first
        // query's freshly prepared skeleton must land back in the cache.
        let err = slot
            .run_debug(Method::Loss, &RunConfig::paper(2))
            .unwrap_err();
        assert_eq!(err.status, 400);
        let st = slot.lock();
        assert_eq!(st.cache.len(), 1, "checked-out skeleton was not returned");
        // Both lookups missed (the broken query misses before its
        // prepare fails); only the first produced a resident entry.
        assert_eq!(st.cache.stats().misses, 2);
        drop(st);

        // Drop the broken query: the retained skeleton is a warm hit.
        slot.lock().sess.queries.truncate(1);
        slot.run_debug(Method::Loss, &RunConfig::paper(2)).unwrap();
        assert!(slot.cache_stats_snapshot().hits >= 1);
    }

    #[test]
    fn removal_folds_cache_counters_into_monotonic_totals() {
        let pool = SessionPool::new();
        let a = pool.create("a", logistic()).unwrap();
        let b = pool.create("b", logistic()).unwrap();
        a.publish_cache_stats(CacheStats {
            hits: 5,
            misses: 2,
            invalidations: 1,
        });
        b.publish_cache_stats(CacheStats {
            hits: 3,
            misses: 4,
            invalidations: 0,
        });
        let before = pool.cache_totals();
        assert_eq!(
            (before.hits, before.misses, before.invalidations),
            (8, 6, 1)
        );
        // Removing a session must not regress the pool-wide totals.
        pool.remove("a").unwrap();
        let after = pool.cache_totals();
        assert_eq!(before, after, "totals regressed across removal");
        // A second removal folds on top of the first.
        pool.remove("b").unwrap();
        assert_eq!(pool.cache_totals(), before);
        // New sessions add to the retired baseline.
        let c = pool.create("c", logistic()).unwrap();
        c.publish_cache_stats(CacheStats {
            hits: 1,
            misses: 0,
            invalidations: 0,
        });
        assert_eq!(pool.cache_totals().hits, 9);
    }

    #[test]
    fn sample_every_zero_means_never_sample() {
        // Regression: `{"sample_every": 0}` must be an explicit off
        // switch — decided before the sequence counter's modulo path
        // (`x % 0` panics), and stable over any number of queries.
        let pool = SessionPool::new();
        let slot = pool.create("s", logistic()).unwrap();
        slot.set_sampling(0, DEFAULT_SLOW_MS);
        assert!(!(0..1000).any(|_| slot.should_sample()), "0 samples none");
        // Re-enabling works; the first sampled query comes immediately
        // (the off window never consumed sequence numbers).
        slot.set_sampling(1, DEFAULT_SLOW_MS);
        assert!(slot.should_sample());
    }

    #[test]
    fn slow_ms_zero_means_force_capture_everything() {
        // Regression: `{"slow_ms": 0}` must capture every request by
        // decision — including zero-latency ones — not by the accident
        // of `latency >= 0.0` holding for non-negative clocks.
        let pool = SessionPool::new();
        let slot = pool.create("s", logistic()).unwrap();
        slot.set_sampling(DEFAULT_SAMPLE_EVERY, 0);
        assert!(slot.is_slow_capture(0.0), "zero latency still captures");
        assert!(slot.is_slow_capture(12.5));
        // A non-zero threshold is a real threshold again.
        slot.set_sampling(DEFAULT_SAMPLE_EVERY, 500);
        assert!(!slot.is_slow_capture(0.499));
        assert!(slot.is_slow_capture(0.5));
        assert!(!slot.is_slow_capture(0.0));
    }

    #[test]
    fn memo_counters_fold_into_monotonic_pool_totals() {
        let pool = SessionPool::new();
        let a = pool.create("a", logistic()).unwrap();
        let b = pool.create("b", logistic()).unwrap();
        a.add_memo_counters(10, 3);
        a.add_memo_counters(5, 1); // per-run deltas accumulate
        b.add_memo_counters(7, 2);
        assert_eq!(a.memo_snapshot(), (15, 4));
        assert_eq!(pool.memo_totals(), (22, 6));
        // Removal folds the slot's totals into the retired baseline.
        pool.remove("a").unwrap();
        assert_eq!(pool.memo_totals(), (22, 6), "totals regressed");
        pool.remove("b").unwrap();
        assert_eq!(pool.memo_totals(), (22, 6));
    }

    #[test]
    fn sampling_defaults_on_and_is_configurable() {
        let pool = SessionPool::new();
        let slot = pool.create("s", logistic()).unwrap();
        assert_eq!(slot.sample_every(), DEFAULT_SAMPLE_EVERY);
        assert!((slot.slow_threshold_s() - DEFAULT_SLOW_MS as f64 / 1e3).abs() < 1e-12);
        // 1-in-N: the first query samples, then every Nth.
        let hits: usize = (0..32).filter(|_| slot.should_sample()).count();
        assert_eq!(hits, 2, "32 queries at 1-in-16 sample twice");
        slot.set_sampling(1, 10);
        assert!((0..10).all(|_| slot.should_sample()), "1-in-1 samples all");
        slot.set_sampling(0, 10);
        assert!(!(0..10).any(|_| slot.should_sample()), "0 disables");
    }

    #[test]
    fn debug_run_without_data_is_a_client_error() {
        let pool = SessionPool::new();
        let slot = pool.create("s", logistic()).unwrap();
        let err = slot
            .run_debug(Method::Loss, &RunConfig::paper(4))
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("training data"));
    }
}
