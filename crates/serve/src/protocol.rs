//! The wire protocol: API errors plus JSON ↔ domain conversions.
//!
//! Everything a client sends or receives crosses this module, so the
//! shapes are documented here once:
//!
//! - **model spec** — `{"kind":"logistic","dim":D,"l2":λ}`,
//!   `{"kind":"softmax","dim":D,"classes":C,"l2":λ}`, or
//!   `{"kind":"mlp","dim":D,"hidden":H,"classes":C,"l2":λ,"seed":S}`.
//! - **table** — `{"name":N,"columns":[{"name":C,"type":"int"|"float"|
//!   "bool"|"str","values":[…]}…],"features":[[…]…]}`; `null` cells are
//!   allowed, `features` (one row per tuple) is required for tables that
//!   `predict()` touches.
//! - **training set** — `{"features":[[…]…],"labels":[…],"classes":C}`.
//! - **complaint** — `{"kind":"value","row":R,"agg":A,"op":"eq"|"le"|"ge",
//!   "target":T}`, `{"kind":"tuple_delete","row":R}`,
//!   `{"kind":"join_delete","left_table":…,"left_row":…,"right_table":…,
//!   "right_row":…}`, or `{"kind":"prediction_is","table":…,"row":…,
//!   "class":…}`.
//! - **run config** — `{"method":M,"budget":B,"k_per_iter":K,
//!   "stop_when_satisfied":bool,"incremental":bool,"threads":T,
//!   "profile":bool}` (method required, budget required, rest defaulted;
//!   `threads` `0`/absent = the session's budget, otherwise capped by
//!   it). `profile` (also settable as `?profile=1` on the debug-run URL)
//!   attaches the run's span tree to the finished report.
//! - **trace node** — `{"name":…,"start_ns":…,"dur_ns":…,
//!   "counters":{…},"children":[…]}`; `start_ns` is relative to the
//!   enclosing subtree's root.
//! - **session exec config** — optional on session creation:
//!   `{"engine":"vectorized"|"tuple","threads":T}`. The engine drives the
//!   session's skeleton cache and debug runs; `threads` caps the worker
//!   budget of every execution in the session (`0`/absent = the
//!   machine's available parallelism).

use crate::json::Json;
use rain_core::complaint::{Complaint, ValueOp};
use rain_core::driver::{DebugReport, RunConfig};
use rain_core::rank::Method;
use rain_linalg::Matrix;
use rain_model::{Classifier, Dataset, LogisticRegression, Mlp, SoftmaxRegression};
use rain_sql::table::{ColType, Schema, Table};
use rain_sql::{Engine, ExecOptions, QueryError, QueryOutput, Value};

/// A protocol-level failure: an HTTP status plus a message the client can
/// read. Every handler error funnels through this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable explanation, returned as `{"error": …}`.
    pub message: String,
}

impl ApiError {
    /// 400: the request itself is malformed or semantically invalid.
    pub fn bad_request(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: msg.into(),
        }
    }

    /// 404: the addressed session/job/route does not exist.
    pub fn not_found(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            message: msg.into(),
        }
    }

    /// 409: the request conflicts with current state (duplicate session).
    pub fn conflict(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 409,
            message: msg.into(),
        }
    }

    /// 500: the server broke (bug or poisoned state).
    pub fn internal(msg: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            message: msg.into(),
        }
    }

    /// The `{"error": …}` response body.
    pub fn body(&self) -> Json {
        Json::obj(vec![("error", Json::str(self.message.clone()))])
    }
}

impl From<QueryError> for ApiError {
    fn from(e: QueryError) -> Self {
        // Parse/bind/execution failures are the client's query, not a
        // server fault.
        ApiError::bad_request(e.to_string())
    }
}

/// A required field of `v`, with a field-path error message.
fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError::bad_request(format!("missing field '{key}'")))
}

fn str_field(v: &Json, key: &str) -> Result<String, ApiError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a string")))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, ApiError> {
    field(v, key)?.as_usize().ok_or_else(|| {
        ApiError::bad_request(format!("field '{key}' must be a non-negative integer"))
    })
}

fn f64_field(v: &Json, key: &str) -> Result<f64, ApiError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a number")))
}

/// Largest accepted model feature dimension. Caps what an unauthenticated
/// request can make the server allocate (parameter vectors are O(dim ×
/// classes); an unchecked huge `dim` would abort the whole process on
/// allocation failure).
pub const MAX_MODEL_DIM: usize = 1 << 20;
/// Largest accepted class count.
pub const MAX_MODEL_CLASSES: usize = 1 << 14;
/// Largest accepted MLP hidden width.
pub const MAX_MODEL_HIDDEN: usize = 1 << 14;

fn bounded(value: usize, what: &str, min: usize, max: usize) -> Result<usize, ApiError> {
    if (min..=max).contains(&value) {
        Ok(value)
    } else {
        Err(ApiError::bad_request(format!(
            "model {what} {value} outside [{min}, {max}]"
        )))
    }
}

/// Build a classifier from a model spec.
pub fn model_from_json(v: &Json) -> Result<Box<dyn Classifier>, ApiError> {
    let kind = str_field(v, "kind")?;
    let dim = bounded(usize_field(v, "dim")?, "dim", 1, MAX_MODEL_DIM)?;
    let l2 = v.get("l2").and_then(Json::as_f64).unwrap_or(0.01);
    match kind.as_str() {
        "logistic" => Ok(Box::new(LogisticRegression::new(dim, l2))),
        "softmax" => {
            let classes = bounded(usize_field(v, "classes")?, "classes", 2, MAX_MODEL_CLASSES)?;
            Ok(Box::new(SoftmaxRegression::new(dim, classes, l2)))
        }
        "mlp" => {
            let classes = bounded(usize_field(v, "classes")?, "classes", 2, MAX_MODEL_CLASSES)?;
            let hidden = bounded(
                v.get("hidden").and_then(Json::as_usize).unwrap_or(16),
                "hidden",
                1,
                MAX_MODEL_HIDDEN,
            )?;
            let seed = v.get("seed").and_then(Json::as_usize).unwrap_or(42) as u64;
            Ok(Box::new(Mlp::new(dim, hidden, classes, l2, seed)))
        }
        other => Err(ApiError::bad_request(format!(
            "unknown model kind '{other}'"
        ))),
    }
}

/// Largest accepted worker-thread request. Mirrors the engine's own
/// [`rain_sql::MAX_EXEC_THREADS`] clamp, but rejects over-asks at the
/// protocol boundary with a 400 instead of silently clamping — an
/// unauthenticated request must not even *ask* for a thread-spawn storm.
pub const MAX_THREADS: usize = rain_sql::MAX_EXEC_THREADS;

/// Parse a `"threads"` field: a non-negative integer up to
/// [`MAX_THREADS`] (`0` = automatic).
fn threads_field(v: &Json) -> Result<usize, ApiError> {
    let n = v
        .as_usize()
        .ok_or_else(|| ApiError::bad_request("field 'threads' must be a non-negative integer"))?;
    if n > MAX_THREADS {
        return Err(ApiError::bad_request(format!(
            "threads {n} above the maximum {MAX_THREADS}"
        )));
    }
    Ok(n)
}

/// Parse an engine name off the wire.
pub fn engine_from_str(s: &str) -> Result<Engine, ApiError> {
    match s.to_ascii_lowercase().as_str() {
        "vectorized" | "vexec" => Ok(Engine::Vectorized),
        "tuple" => Ok(Engine::Tuple),
        other => Err(ApiError::bad_request(format!(
            "unknown engine '{other}' (want vectorized/tuple)"
        ))),
    }
}

/// Wire name of an engine.
pub fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Vectorized => "vectorized",
        Engine::Tuple => "tuple",
    }
}

/// Parse the optional per-session execution config off a session-creation
/// body: `"engine"` selects the session's capture/execution engine,
/// `"threads"` caps its worker budget (`0`/absent = auto).
pub fn exec_options_from_json(v: &Json) -> Result<ExecOptions, ApiError> {
    let mut opts = ExecOptions::default();
    if let Some(e) = v.get("engine") {
        let name = e
            .as_str()
            .ok_or_else(|| ApiError::bad_request("field 'engine' must be a string"))?;
        opts = opts.with_engine(engine_from_str(name)?);
    }
    if let Some(t) = v.get("threads") {
        opts = opts.with_threads(threads_field(t)?);
    }
    Ok(opts)
}

fn coltype_from_str(s: &str) -> Result<ColType, ApiError> {
    match s {
        "bool" => Ok(ColType::Bool),
        "int" => Ok(ColType::Int),
        "float" => Ok(ColType::Float),
        "str" => Ok(ColType::Str),
        other => Err(ApiError::bad_request(format!(
            "unknown column type '{other}'"
        ))),
    }
}

fn coltype_name(ty: ColType) -> &'static str {
    match ty {
        ColType::Bool => "bool",
        ColType::Int => "int",
        ColType::Float => "float",
        ColType::Str => "str",
    }
}

fn cell_from_json(v: &Json, ty: ColType) -> Result<Value, ApiError> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match ty {
        ColType::Bool => v.as_bool().map(Value::Bool),
        ColType::Int => v.as_i64().map(Value::Int),
        ColType::Float => v.as_f64().map(Value::Float),
        ColType::Str => v.as_str().map(|s| Value::Str(s.to_string())),
    }
    .ok_or_else(|| ApiError::bad_request(format!("cell {v} does not fit column type")))
}

/// JSON form of a result cell.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Num(*i as f64),
        Value::Float(f) => Json::Num(*f),
        Value::Str(s) => Json::str(s.clone()),
    }
}

/// Parse a feature matrix: a non-ragged array of equal-length number rows.
fn matrix_from_json(v: &Json, what: &str) -> Result<Matrix, ApiError> {
    let rows = v
        .as_arr()
        .ok_or_else(|| ApiError::bad_request(format!("{what} must be an array of rows")))?;
    let mut data: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| ApiError::bad_request(format!("{what} row {i} must be an array")))?;
        let mut r = Vec::with_capacity(cells.len());
        for c in cells {
            r.push(c.as_f64().ok_or_else(|| {
                ApiError::bad_request(format!("{what} row {i} holds a non-number"))
            })?);
        }
        if let Some(first) = data.first() {
            if r.len() != first.len() {
                return Err(ApiError::bad_request(format!("{what} rows are ragged")));
            }
        }
        data.push(r);
    }
    if data.is_empty() {
        return Err(ApiError::bad_request(format!("{what} must not be empty")));
    }
    let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
    Ok(Matrix::from_rows(&refs))
}

/// Build a `(name, table)` pair from a table upload.
pub fn table_from_json(v: &Json) -> Result<(String, Table), ApiError> {
    let name = str_field(v, "name")?;
    let cols = field(v, "columns")?
        .as_arr()
        .ok_or_else(|| ApiError::bad_request("field 'columns' must be an array"))?;
    if cols.is_empty() {
        return Err(ApiError::bad_request("table needs at least one column"));
    }
    let mut schema = Schema::default();
    let mut types = Vec::with_capacity(cols.len());
    let mut values: Vec<&[Json]> = Vec::with_capacity(cols.len());
    let mut n_rows = None;
    for c in cols {
        let cname = str_field(c, "name")?;
        let ty = coltype_from_str(&str_field(c, "type")?)?;
        if schema.index_of(&cname).is_some() {
            return Err(ApiError::bad_request(format!("duplicate column '{cname}'")));
        }
        schema.push(&cname, ty);
        let vals = field(c, "values")?
            .as_arr()
            .ok_or_else(|| ApiError::bad_request("column 'values' must be an array"))?;
        match n_rows {
            None => n_rows = Some(vals.len()),
            Some(n) if n != vals.len() => {
                return Err(ApiError::bad_request("columns have differing lengths"))
            }
            _ => {}
        }
        types.push(ty);
        values.push(vals);
    }
    let n_rows = n_rows.unwrap_or(0);

    let features = match v.get("features") {
        None | Some(Json::Null) => None,
        Some(f) => {
            let m = matrix_from_json(f, "features")?;
            if m.rows() != n_rows {
                return Err(ApiError::bad_request(format!(
                    "features have {} rows, table has {n_rows}",
                    m.rows()
                )));
            }
            Some(m)
        }
    };

    // Assemble row-wise so NULL cells land in the null bitmaps.
    let dim = features.as_ref().map(|m| m.cols()).unwrap_or(0);
    let mut table = Table::empty(schema);
    if let Some(_m) = &features {
        table = table.with_features(Matrix::zeros(0, dim));
    }
    for r in 0..n_rows {
        let row: Vec<Value> = types
            .iter()
            .zip(&values)
            .map(|(&ty, vals)| cell_from_json(&vals[r], ty))
            .collect::<Result<_, _>>()?;
        table.push_row(row, features.as_ref().map(|m| m.row(r)));
    }
    Ok((name, table))
}

/// JSON form of a table (used by clients to upload generated workloads).
pub fn table_to_json(name: &str, table: &Table) -> Json {
    let mut cols = Vec::with_capacity(table.schema().len());
    for (ci, def) in table.schema().iter().enumerate() {
        let vals: Vec<Json> = (0..table.n_rows())
            .map(|r| value_to_json(&table.value(r, ci)))
            .collect();
        cols.push(Json::obj(vec![
            ("name", Json::str(def.name.clone())),
            ("type", Json::str(coltype_name(def.ty))),
            ("values", Json::Arr(vals)),
        ]));
    }
    let mut pairs = vec![("name", Json::str(name)), ("columns", Json::Arr(cols))];
    if let Some(m) = table.features() {
        let rows: Vec<Json> = m
            .iter_rows()
            .map(|r| Json::Arr(r.iter().map(|&x| Json::Num(x)).collect()))
            .collect();
        pairs.push(("features", Json::Arr(rows)));
    }
    Json::obj(pairs)
}

/// Parse the `"rows"` of an append request against the target table's
/// column types: an array of rows, each an array of cells (`null`
/// allowed) matching the schema's arity and types.
pub fn append_rows_from_json(v: &Json, types: &[ColType]) -> Result<Vec<Vec<Value>>, ApiError> {
    let rows = v
        .as_arr()
        .ok_or_else(|| ApiError::bad_request("field 'rows' must be an array of rows"))?;
    if rows.is_empty() {
        return Err(ApiError::bad_request("field 'rows' must not be empty"));
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| ApiError::bad_request(format!("row {i} must be an array")))?;
        if cells.len() != types.len() {
            return Err(ApiError::bad_request(format!(
                "row {i} has {} cells, table has {} columns",
                cells.len(),
                types.len()
            )));
        }
        let parsed: Vec<Value> = cells
            .iter()
            .zip(types)
            .map(|(c, &ty)| cell_from_json(c, ty))
            .collect::<Result<_, _>>()?;
        out.push(parsed);
    }
    Ok(out)
}

/// Parse the optional `"features"` of an append request: one number row
/// per appended tuple.
pub fn append_features_from_json(v: &Json) -> Result<Option<Vec<Vec<f64>>>, ApiError> {
    match v {
        Json::Null => Ok(None),
        _ => {
            let m = matrix_from_json(v, "features")?;
            Ok(Some(m.iter_rows().map(|r| r.to_vec()).collect()))
        }
    }
}

/// JSON form of a per-delta catalog version: `{"gen":…,"delta":…}`.
pub fn version_to_json(v: rain_sql::TableVersion) -> Json {
    Json::obj(vec![
        ("gen", Json::Num(v.gen as f64)),
        ("delta", Json::Num(v.delta as f64)),
    ])
}

/// Build a training set from an upload.
pub fn dataset_from_json(v: &Json) -> Result<Dataset, ApiError> {
    let features = matrix_from_json(field(v, "features")?, "features")?;
    let labels_json = field(v, "labels")?
        .as_arr()
        .ok_or_else(|| ApiError::bad_request("field 'labels' must be an array"))?;
    let labels: Vec<usize> = labels_json
        .iter()
        .map(|l| {
            l.as_usize()
                .ok_or_else(|| ApiError::bad_request("labels must be non-negative integers"))
        })
        .collect::<Result<_, _>>()?;
    let classes = usize_field(v, "classes")?;
    if labels.len() != features.rows() {
        return Err(ApiError::bad_request(format!(
            "{} labels for {} feature rows",
            labels.len(),
            features.rows()
        )));
    }
    if classes < 2 || labels.iter().any(|&y| y >= classes) {
        return Err(ApiError::bad_request("labels out of range for class count"));
    }
    Ok(Dataset::new(features, labels, classes))
}

/// JSON form of a training set.
pub fn dataset_to_json(data: &Dataset) -> Json {
    let rows: Vec<Json> = data
        .features()
        .iter_rows()
        .map(|r| Json::Arr(r.iter().map(|&x| Json::Num(x)).collect()))
        .collect();
    Json::obj(vec![
        ("features", Json::Arr(rows)),
        (
            "labels",
            Json::Arr(data.labels().iter().map(|&y| Json::Num(y as f64)).collect()),
        ),
        ("classes", Json::Num(data.n_classes() as f64)),
    ])
}

/// Parse one complaint.
pub fn complaint_from_json(v: &Json) -> Result<Complaint, ApiError> {
    match str_field(v, "kind")?.as_str() {
        "value" => {
            let op = match str_field(v, "op")?.as_str() {
                "eq" => ValueOp::Eq,
                "le" => ValueOp::Le,
                "ge" => ValueOp::Ge,
                other => {
                    return Err(ApiError::bad_request(format!(
                        "unknown value op '{other}' (want eq/le/ge)"
                    )))
                }
            };
            Ok(Complaint::Value {
                row: v.get("row").and_then(Json::as_usize).unwrap_or(0),
                agg: v.get("agg").and_then(Json::as_usize).unwrap_or(0),
                op,
                target: f64_field(v, "target")?,
            })
        }
        "tuple_delete" => Ok(Complaint::TupleDelete {
            row: usize_field(v, "row")?,
        }),
        "join_delete" => Ok(Complaint::JoinDelete {
            left: (str_field(v, "left_table")?, usize_field(v, "left_row")?),
            right: (str_field(v, "right_table")?, usize_field(v, "right_row")?),
        }),
        "prediction_is" => Ok(Complaint::PredictionIs {
            table: str_field(v, "table")?,
            row: usize_field(v, "row")?,
            class: usize_field(v, "class")?,
        }),
        other => Err(ApiError::bad_request(format!(
            "unknown complaint kind '{other}'"
        ))),
    }
}

/// Parse the ranking method of a debug-run request.
pub fn method_from_str(s: &str) -> Result<Method, ApiError> {
    match s.to_ascii_lowercase().as_str() {
        "loss" => Ok(Method::Loss),
        "infloss" => Ok(Method::InfLoss),
        "twostep" => Ok(Method::TwoStep),
        "holistic" => Ok(Method::Holistic),
        "auto" => Ok(Method::Auto),
        other => Err(ApiError::bad_request(format!("unknown method '{other}'"))),
    }
}

/// Parse a debug-run request into `(method, run config)`.
pub fn run_request_from_json(v: &Json) -> Result<(Method, RunConfig), ApiError> {
    let method = method_from_str(&str_field(v, "method")?)?;
    let budget = usize_field(v, "budget")?;
    if budget == 0 {
        return Err(ApiError::bad_request("budget must be positive"));
    }
    let mut cfg = RunConfig::paper(budget);
    if let Some(k) = v.get("k_per_iter").and_then(Json::as_usize) {
        if k == 0 {
            return Err(ApiError::bad_request("k_per_iter must be positive"));
        }
        cfg.k_per_iter = k;
    }
    if let Some(s) = v.get("stop_when_satisfied").and_then(Json::as_bool) {
        cfg.stop_when_satisfied = s;
    }
    if let Some(i) = v.get("incremental").and_then(Json::as_bool) {
        cfg.incremental = i;
    }
    if let Some(t) = v.get("threads") {
        cfg.threads = threads_field(t)?;
    }
    if let Some(p) = v.get("profile").and_then(Json::as_bool) {
        cfg.profile = p;
    }
    if let Some(n) = v.get("sample_every").and_then(Json::as_usize) {
        // `0` disables iteration sampling for this run.
        cfg.sample_every = n;
    }
    if let Some(m) = v.get("memo").and_then(Json::as_bool) {
        cfg.memo = m;
    }
    Ok((method, cfg))
}

/// JSON form of a harvested span tree.
pub fn trace_to_json(node: &rain_obs::TraceNode) -> Json {
    let counters: Vec<(String, Json)> = node
        .counters
        .iter()
        .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
        .collect();
    Json::obj(vec![
        ("name", Json::str(node.name)),
        ("start_ns", Json::Num(node.start_ns as f64)),
        ("dur_ns", Json::Num(node.dur_ns as f64)),
        ("counters", Json::Obj(counters)),
        (
            "children",
            Json::Arr(node.children.iter().map(trace_to_json).collect()),
        ),
    ])
}

/// JSON form of a query output: schema, rows, and shape metadata.
pub fn output_to_json(out: &QueryOutput) -> Json {
    let schema: Vec<Json> = out
        .table
        .schema()
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("name", Json::str(d.name.clone())),
                ("type", Json::str(coltype_name(d.ty))),
            ])
        })
        .collect();
    let rows: Vec<Json> = (0..out.table.n_rows())
        .map(|r| {
            Json::Arr(
                (0..out.table.schema().len())
                    .map(|c| value_to_json(&out.table.value(r, c)))
                    .collect(),
            )
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Arr(schema)),
        ("rows", Json::Arr(rows)),
        ("n_key_cols", Json::Num(out.n_key_cols as f64)),
        ("n_predvars", Json::Num(out.predvars.len() as f64)),
    ])
}

/// JSON form of a finished debug report.
pub fn report_to_json(report: &DebugReport) -> Json {
    let iterations: Vec<Json> = report
        .iterations
        .iter()
        .map(|it| {
            Json::obj(vec![
                ("train_s", Json::Num(it.train_s)),
                ("encode_s", Json::Num(it.encode_s)),
                ("rank_s", Json::Num(it.rank_s)),
                (
                    "removed",
                    Json::Arr(it.removed.iter().map(|&id| Json::Num(id as f64)).collect()),
                ),
                ("complaints_satisfied", Json::Bool(it.complaints_satisfied)),
                ("checks_skipped", Json::Num(it.checks_skipped as f64)),
                ("train_loss", Json::Num(it.train_loss)),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "removed",
            Json::Arr(
                report
                    .removed
                    .iter()
                    .map(|&id| Json::Num(id as f64))
                    .collect(),
            ),
        ),
        ("iterations", Json::Arr(iterations)),
        (
            "skeleton_rebuilds",
            Json::Num(report.skeleton_rebuilds as f64),
        ),
        ("memo_hits", Json::Num(report.memo_hits as f64)),
        ("memo_misses", Json::Num(report.memo_misses as f64)),
        (
            "failure",
            match &report.failure {
                Some(f) => Json::str(f.clone()),
                None => Json::Null,
            },
        ),
        (
            "profile",
            match &report.profile {
                Some(tree) => trace_to_json(tree),
                None => Json::Null,
            },
        ),
        (
            "iteration_profiles",
            Json::Arr(
                report
                    .iteration_profiles
                    .iter()
                    .map(|ip| {
                        Json::obj(vec![
                            ("iteration", Json::Num(ip.iteration as f64)),
                            ("profile", trace_to_json(&ip.profile)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn table_roundtrips_through_json_including_nulls_and_features() {
        let mut t = Table::empty(Schema::new(&[
            ("id", ColType::Int),
            ("score", ColType::Float),
            ("tag", ColType::Str),
            ("ok", ColType::Bool),
        ]))
        .with_features(Matrix::zeros(0, 2));
        t.push_row(
            vec![
                Value::Int(1),
                Value::Float(0.5),
                Value::Str("a".into()),
                Value::Bool(true),
            ],
            Some(&[1.0, -1.0]),
        );
        t.push_row(
            vec![Value::Int(2), Value::Null, Value::Null, Value::Bool(false)],
            Some(&[0.0, 2.0]),
        );
        let j = table_to_json("demo", &t);
        let reparsed = json::parse(&j.to_string()).unwrap();
        let (name, back) = table_from_json(&reparsed).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(back.to_tsv(), t.to_tsv());
        assert!(back.is_null(1, 1) && back.is_null(1, 2));
        assert_eq!(back.feature_row(1), Some(&[0.0, 2.0][..]));
    }

    #[test]
    fn dataset_roundtrips() {
        let d = Dataset::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]),
            vec![0, 1],
            2,
        );
        let back = dataset_from_json(&dataset_to_json(&d)).unwrap();
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.features().as_slice(), d.features().as_slice());
        assert_eq!(back.n_classes(), 2);
    }

    #[test]
    fn rejects_malformed_uploads() {
        for (what, text) in [
            ("no name", r#"{"columns":[]}"#),
            ("no columns", r#"{"name":"t"}"#),
            ("empty columns", r#"{"name":"t","columns":[]}"#),
            (
                "ragged columns",
                r#"{"name":"t","columns":[
                    {"name":"a","type":"int","values":[1,2]},
                    {"name":"b","type":"int","values":[1]}]}"#,
            ),
            (
                "bad type",
                r#"{"name":"t","columns":[{"name":"a","type":"uuid","values":[]}]}"#,
            ),
            (
                "cell type mismatch",
                r#"{"name":"t","columns":[{"name":"a","type":"int","values":["x"]}]}"#,
            ),
            (
                "feature row count",
                r#"{"name":"t","columns":[{"name":"a","type":"int","values":[1,2]}],
                    "features":[[0.0]]}"#,
            ),
            (
                "duplicate column",
                r#"{"name":"t","columns":[
                    {"name":"a","type":"int","values":[1]},
                    {"name":"a","type":"int","values":[1]}]}"#,
            ),
        ] {
            let v = json::parse(text).unwrap();
            let e = table_from_json(&v).unwrap_err();
            assert_eq!(e.status, 400, "{what}: wrong status");
        }
    }

    #[test]
    fn complaints_parse() {
        let v = json::parse(r#"{"kind":"value","op":"eq","target":42}"#).unwrap();
        assert_eq!(complaint_from_json(&v).unwrap(), Complaint::scalar_eq(42.0));
        let v = json::parse(
            r#"{"kind":"join_delete","left_table":"l","left_row":1,"right_table":"r","right_row":2}"#,
        )
        .unwrap();
        assert_eq!(
            complaint_from_json(&v).unwrap(),
            Complaint::join_delete("l", 1, "r", 2)
        );
        let v = json::parse(r#"{"kind":"prediction_is","table":"t","row":3,"class":1}"#).unwrap();
        assert_eq!(
            complaint_from_json(&v).unwrap(),
            Complaint::prediction_is("t", 3, 1)
        );
        let v = json::parse(r#"{"kind":"sue"}"#).unwrap();
        assert_eq!(complaint_from_json(&v).unwrap_err().status, 400);
    }

    #[test]
    fn session_exec_config_parses_with_defaults() {
        let v = json::parse(r#"{"name":"s","engine":"tuple","threads":2}"#).unwrap();
        let opts = exec_options_from_json(&v).unwrap();
        assert_eq!(opts.engine, Engine::Tuple);
        assert_eq!(opts.threads, 2);
        let v = json::parse(r#"{"name":"s"}"#).unwrap();
        let opts = exec_options_from_json(&v).unwrap();
        assert_eq!(opts.engine, Engine::Vectorized);
        assert_eq!(opts.threads, 0);
        let v = json::parse(r#"{"engine":"turbo"}"#).unwrap();
        assert_eq!(exec_options_from_json(&v).unwrap_err().status, 400);
        let v = json::parse(r#"{"threads":"many"}"#).unwrap();
        assert_eq!(exec_options_from_json(&v).unwrap_err().status, 400);
        // Thread-spawn storms are rejected at the protocol boundary.
        let v = json::parse(&format!(r#"{{"threads":{}}}"#, MAX_THREADS + 1)).unwrap();
        assert_eq!(exec_options_from_json(&v).unwrap_err().status, 400);
        let v = json::parse(&format!(r#"{{"threads":{MAX_THREADS}}}"#)).unwrap();
        assert_eq!(exec_options_from_json(&v).unwrap().threads, MAX_THREADS);
        assert_eq!(
            engine_from_str(engine_name(Engine::Tuple)).unwrap(),
            Engine::Tuple
        );
    }

    #[test]
    fn run_requests_parse_with_defaults() {
        let v = json::parse(r#"{"method":"holistic","budget":30}"#).unwrap();
        let (m, cfg) = run_request_from_json(&v).unwrap();
        assert_eq!(m, Method::Holistic);
        assert_eq!(cfg.budget, 30);
        assert_eq!(cfg.k_per_iter, 10);
        assert!(cfg.incremental);
        assert_eq!(cfg.threads, 0, "threads default to the session budget");
        let v = json::parse(r#"{"method":"loss","budget":5,"threads":3}"#).unwrap();
        let (_, cfg) = run_request_from_json(&v).unwrap();
        assert_eq!(cfg.threads, 3);
        let v = json::parse(r#"{"method":"loss","budget":5,"threads":true}"#).unwrap();
        assert_eq!(run_request_from_json(&v).unwrap_err().status, 400);
        let v = json::parse(r#"{"method":"loss","budget":5,"threads":1000000000}"#).unwrap();
        assert_eq!(run_request_from_json(&v).unwrap_err().status, 400);
        let v = json::parse(
            r#"{"method":"auto","budget":8,"k_per_iter":2,"stop_when_satisfied":true,"incremental":false}"#,
        )
        .unwrap();
        let (m, cfg) = run_request_from_json(&v).unwrap();
        assert_eq!(m, Method::Auto);
        assert_eq!(
            (cfg.k_per_iter, cfg.stop_when_satisfied, cfg.incremental),
            (2, true, false)
        );
        let v = json::parse(r#"{"method":"holistic","budget":0}"#).unwrap();
        assert!(run_request_from_json(&v).is_err());
        // Profile defaults off; the body flag switches it on.
        let v = json::parse(r#"{"method":"loss","budget":5}"#).unwrap();
        assert!(!run_request_from_json(&v).unwrap().1.profile);
        let v = json::parse(r#"{"method":"loss","budget":5,"profile":true}"#).unwrap();
        assert!(run_request_from_json(&v).unwrap().1.profile);
    }

    #[test]
    fn model_specs_build() {
        let v = json::parse(r#"{"kind":"logistic","dim":3,"l2":0.5}"#).unwrap();
        let m = model_from_json(&v).unwrap();
        assert_eq!((m.dim(), m.n_classes()), (3, 2));
        let v = json::parse(r#"{"kind":"softmax","dim":2,"classes":4}"#).unwrap();
        assert_eq!(model_from_json(&v).unwrap().n_classes(), 4);
        let v = json::parse(r#"{"kind":"mlp","dim":2,"classes":3,"hidden":4}"#).unwrap();
        assert_eq!(model_from_json(&v).unwrap().n_classes(), 3);
        let v = json::parse(r#"{"kind":"gpt","dim":2}"#).unwrap();
        assert!(model_from_json(&v).is_err());
    }
}
