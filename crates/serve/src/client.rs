//! A small blocking client for the wire protocol.
//!
//! One [`Client`] holds one keep-alive connection; requests on it are
//! sequential (that is the HTTP/1.1 contract) — spin up one client per
//! thread for concurrent load, the way the integration tests and the
//! `serve` bench do.

use crate::json::{self, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking JSON-over-HTTP client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A non-2xx response, surfaced as an error by the `expect_*` helpers.
#[derive(Debug, Clone)]
pub struct ClientError {
    /// HTTP status.
    pub status: u16,
    /// The response's `error` field (or the whole body).
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server returned {}: {}", self.status, self.message)
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// Open a connection (`TCP_NODELAY`: requests are small and
    /// latency-bound, never throughput-bound on the socket).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Issue one request; returns `(status, parsed body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> io::Result<(u16, Json)> {
        let body_text = body.map(Json::to_string).unwrap_or_default();
        // One write per request: a request split across two segments sits
        // out a delayed ACK under Nagle's algorithm.
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: rain\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body_text.len(),
        );
        message.push_str(&body_text);
        self.writer.write_all(message.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, Json)> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        self.request("POST", path, Some(body))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> io::Result<(u16, Json)> {
        self.request("DELETE", path, None)
    }

    /// `POST` that must return 2xx; non-2xx becomes a [`ClientError`].
    pub fn post_ok(&mut self, path: &str, body: &Json) -> io::Result<Json> {
        let (status, v) = self.post(path, body)?;
        expect_2xx(status, v)
    }

    /// `GET` that must return 2xx.
    pub fn get_ok(&mut self, path: &str) -> io::Result<Json> {
        let (status, v) = self.get(path)?;
        expect_2xx(status, v)
    }

    /// `GET path` returning the raw body text, unparsed.
    ///
    /// For non-JSON endpoints — notably `GET /metrics`, which serves the
    /// Prometheus text exposition format.
    pub fn get_text(&mut self, path: &str) -> io::Result<(u16, String)> {
        let message = format!("GET {path} HTTP/1.1\r\nHost: rain\r\nContent-Length: 0\r\n\r\n",);
        self.writer.write_all(message.as_bytes())?;
        self.writer.flush()?;
        self.read_raw_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, Json)> {
        let (status, text) = self.read_raw_response()?;
        let v = if text.trim().is_empty() {
            Json::Null
        } else {
            json::parse(&text).map_err(|e| bad(format!("invalid JSON body: {e}")))?
        };
        Ok((status, v))
    }

    fn read_raw_response(&mut self) -> io::Result<(u16, String)> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?;
        Ok((status, text))
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-response"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn expect_2xx(status: u16, v: Json) -> io::Result<Json> {
    if (200..300).contains(&status) {
        return Ok(v);
    }
    let message = v
        .get("error")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| v.to_string());
    Err(io::Error::other(ClientError { status, message }))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}
