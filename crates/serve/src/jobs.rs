//! The job runner: debug runs execute off the accept path.
//!
//! A train–rank–fix run takes seconds to minutes — far too long to hold
//! an HTTP connection (or its handler thread) hostage. `POST …/debug-run`
//! therefore just enqueues a job and returns its id; a fixed pool of
//! `std::thread` workers drains the queue, and clients poll
//! `GET /jobs/{id}` for status and the finished report.
//!
//! A worker executes a job by taking the target session's mutex
//! ([`SessionSlot::run_debug`]), so jobs against the same session
//! serialize exactly like any other request, while jobs against different
//! sessions occupy different workers concurrently — the runner tracks the
//! observed concurrency high-water mark (`peak_running`), which the
//! integration tests assert to pin cross-session parallelism. Worker
//! panics are caught and surface as failed jobs, never dead workers.

use crate::pool::SessionSlot;
use crate::profiles::ProfileRing;
use crate::protocol::ApiError;
use rain_core::driver::{DebugReport, RunConfig};
use rain_core::rank::Method;
use rain_obs::Sketch;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Where a job is in its life.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker holds the session lock and is running the loop.
    Running,
    /// Finished; the report is ready to fetch.
    Done(DebugReport),
    /// Failed with a message (client error, run failure, or panic).
    Failed(String),
}

impl JobState {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Public job metadata.
#[derive(Debug, Clone)]
pub struct JobInfo {
    /// Session the job runs against.
    pub session: String,
    /// Client-supplied request id off the debug-run body, echoed on
    /// `GET /jobs/{id}` and stamped on the run's iteration profiles.
    pub request_id: Option<String>,
    /// Current state (with the report when done).
    pub state: JobState,
}

struct Job {
    id: u64,
    slot: Arc<SessionSlot>,
    method: Method,
    cfg: RunConfig,
    request_id: Option<String>,
    /// When the job entered the queue; the dequeue-time delta feeds the
    /// queue-wait histogram.
    enqueued: Instant,
}

/// The message carried by a worker panic, for the job's `Failed` status.
/// `panic!` payloads are `&str` or `String` in practice; anything exotic
/// falls back to a generic message rather than being dropped.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".into())
}

/// Aggregate runner counters for `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Most jobs ever observed executing at once.
    pub peak_running: usize,
}

struct Inner {
    queue: Mutex<VecDeque<Job>>,
    wake: Condvar,
    jobs: Mutex<JobTable>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    running: AtomicUsize,
    peak_running: AtomicUsize,
    done: AtomicUsize,
    failed: AtomicUsize,
    /// Observes queue residence time (enqueue → dequeue) when the server
    /// wires its metrics registry in.
    queue_wait: Option<Arc<Sketch>>,
    /// Sampled iteration profiles of finished runs land here when the
    /// server wires its profile ring in (see [`crate::profiles`]).
    profiles: Option<Arc<ProfileRing>>,
}

/// Most recent settled (done/failed) jobs kept pollable; older ones are
/// evicted so a resident server's job table stays bounded no matter how
/// many runs it has served.
const MAX_SETTLED_JOBS: usize = 512;

/// The job map plus the settled-order queue driving bounded retention.
#[derive(Default)]
struct JobTable {
    map: HashMap<u64, JobInfo>,
    settled: VecDeque<u64>,
}

impl Inner {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, JobTable> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn set_state(&self, id: u64, state: JobState) {
        let settled = matches!(state, JobState::Done(_) | JobState::Failed(_));
        let mut table = self.lock_jobs();
        if let Some(info) = table.map.get_mut(&id) {
            info.state = state;
        }
        if settled {
            table.settled.push_back(id);
            while table.settled.len() > MAX_SETTLED_JOBS {
                let evict = table.settled.pop_front().expect("non-empty");
                table.map.remove(&evict);
            }
        }
    }
}

/// The worker pool + queue + job table.
pub struct JobRunner {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobRunner {
    /// Spawn `n_workers` worker threads (at least one).
    pub fn new(n_workers: usize) -> Self {
        JobRunner::with_observability(n_workers, None, None)
    }

    /// [`JobRunner::new`] with a latency sketch observing how long jobs
    /// sit queued before a worker picks them up, and a profile ring
    /// receiving the sampled iteration traces of finished runs.
    pub fn with_observability(
        n_workers: usize,
        queue_wait: Option<Arc<Sketch>>,
        profiles: Option<Arc<ProfileRing>>,
    ) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            jobs: Mutex::new(JobTable::default()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            peak_running: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            queue_wait,
            profiles,
        });
        let workers = (0..n_workers.max(1))
            .map(|wi| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rain-serve-job-{wi}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn job worker")
            })
            .collect();
        JobRunner {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueue a debug run against `slot`, returning the job id.
    pub fn submit(&self, slot: Arc<SessionSlot>, method: Method, cfg: RunConfig) -> u64 {
        self.submit_tagged(slot, method, cfg, None)
    }

    /// [`JobRunner::submit`] carrying the client's request id, echoed on
    /// job status and stamped on the run's sampled iteration profiles.
    pub fn submit_tagged(
        &self,
        slot: Arc<SessionSlot>,
        method: Method,
        cfg: RunConfig,
        request_id: Option<String>,
    ) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.lock_jobs().map.insert(
            id,
            JobInfo {
                session: slot.name.clone(),
                request_id: request_id.clone(),
                state: JobState::Queued,
            },
        );
        self.inner.lock_queue().push_back(Job {
            id,
            slot,
            method,
            cfg,
            request_id,
            enqueued: Instant::now(),
        });
        self.inner.wake.notify_one();
        id
    }

    /// Metadata of one job. 404 for ids never issued (or settled so long
    /// ago they aged out of the bounded retention window).
    pub fn info(&self, id: u64) -> Result<JobInfo, ApiError> {
        self.inner
            .lock_jobs()
            .map
            .get(&id)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no job {id}")))
    }

    /// Current counters.
    pub fn stats(&self) -> JobStats {
        JobStats {
            queued: self.inner.lock_queue().len(),
            running: self.inner.running.load(Ordering::Relaxed),
            done: self.inner.done.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            peak_running: self.inner.peak_running.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting queue pops and join the workers. Queued jobs that
    /// never ran are marked failed; the running ones finish first.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for w in workers {
            let _ = w.join();
        }
        let orphans: Vec<u64> = self.inner.lock_queue().drain(..).map(|j| j.id).collect();
        for id in orphans {
            self.inner
                .set_state(id, JobState::Failed("server shut down".into()));
            self.inner.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.lock_queue();
            loop {
                // Shutdown wins over a non-empty queue: workers stop
                // popping, and `shutdown()` fails the leftover backlog
                // instead of running it to completion.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inner.wake.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
        };

        if let Some(h) = &inner.queue_wait {
            h.observe(job.enqueued.elapsed().as_secs_f64());
        }
        inner.set_state(job.id, JobState::Running);
        let now = inner.running.fetch_add(1, Ordering::SeqCst) + 1;
        inner.peak_running.fetch_max(now, Ordering::SeqCst);

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.slot.run_debug(job.method, &job.cfg)
        }));
        inner.running.fetch_sub(1, Ordering::SeqCst);

        match outcome {
            Ok(Ok(report)) => {
                if let Some(ring) = &inner.profiles {
                    let slow_s = job.slot.slow_threshold_s();
                    for ip in &report.iteration_profiles {
                        let latency_s = ip.profile.dur_ns as f64 / 1e9;
                        ring.push(
                            "iteration",
                            &job.slot.name,
                            format!("{:?} iteration={}", job.method, ip.iteration),
                            latency_s,
                            job.request_id.clone(),
                            Some(ip.profile.clone()),
                            latency_s >= slow_s,
                        );
                    }
                }
                inner.done.fetch_add(1, Ordering::Relaxed);
                inner.set_state(job.id, JobState::Done(report));
            }
            Ok(Err(e)) => {
                inner.failed.fetch_add(1, Ordering::Relaxed);
                inner.set_state(job.id, JobState::Failed(e.message));
            }
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                inner.failed.fetch_add(1, Ordering::Relaxed);
                inner.set_state(job.id, JobState::Failed(format!("panic: {msg}")));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_payloads_are_extracted_for_failed_job_status() {
        let p: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p: Box<dyn Any + Send> = Box::new(String::from("kaput"));
        assert_eq!(panic_message(p.as_ref()), "kaput");
        // Exotic payloads fall back instead of being dropped.
        let p: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(p.as_ref()), "job panicked");
        // `panic!` with format args carries a `String` payload — the case
        // the worker loop actually sees.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let payload = std::panic::catch_unwind(|| panic!("exploded: {}", 7)).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(panic_message(payload.as_ref()), "exploded: 7");
    }

    #[test]
    fn queue_wait_sketch_observes_each_dequeued_job() {
        use rain_model::LogisticRegression;
        let hist = Arc::new(Sketch::new());
        let pool = crate::pool::SessionPool::new();
        let slot = pool
            .create("s", Box::new(LogisticRegression::new(2, 0.01)))
            .unwrap();
        let runner = JobRunner::with_observability(1, Some(Arc::clone(&hist)), None);
        for _ in 0..3 {
            runner.submit(Arc::clone(&slot), Method::Loss, RunConfig::paper(4));
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while hist.snapshot().count < 3 {
            assert!(Instant::now() < deadline, "jobs never dequeued");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert!(snap.sum >= 0.0);
        runner.shutdown();
    }

    #[test]
    fn unknown_job_ids_are_not_found() {
        let runner = JobRunner::new(1);
        assert_eq!(runner.info(99).unwrap_err().status, 404);
        runner.shutdown();
    }

    #[test]
    fn jobs_against_empty_sessions_fail_cleanly() {
        use rain_model::LogisticRegression;
        let pool = crate::pool::SessionPool::new();
        let slot = pool
            .create("s", Box::new(LogisticRegression::new(2, 0.01)))
            .unwrap();
        let runner = JobRunner::new(2);
        let id = runner.submit(slot, Method::Loss, RunConfig::paper(4));
        // Poll until the worker settles the job.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match runner.info(id).unwrap().state {
                JobState::Failed(msg) => {
                    assert!(msg.contains("training data"), "unexpected failure: {msg}");
                    break;
                }
                JobState::Done(_) => panic!("job must fail without training data"),
                _ if std::time::Instant::now() > deadline => panic!("job never settled"),
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
        assert_eq!(runner.stats().failed, 1);
        runner.shutdown();
    }

    #[test]
    fn shutdown_fails_queued_backlog_instead_of_running_it() {
        use rain_model::LogisticRegression;
        let pool = crate::pool::SessionPool::new();
        let slot = pool
            .create("s", Box::new(LogisticRegression::new(2, 0.01)))
            .unwrap();
        let runner = std::sync::Arc::new(JobRunner::new(1));

        // Hold the session lock so the single worker blocks inside job A
        // while B and C sit in the queue.
        let guard = slot.lock();
        let a = runner.submit(
            std::sync::Arc::clone(&slot),
            Method::Loss,
            RunConfig::paper(4),
        );
        let b = runner.submit(
            std::sync::Arc::clone(&slot),
            Method::Loss,
            RunConfig::paper(4),
        );
        let c = runner.submit(
            std::sync::Arc::clone(&slot),
            Method::Loss,
            RunConfig::paper(4),
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
        let shutter = {
            let runner = std::sync::Arc::clone(&runner);
            std::thread::spawn(move || runner.shutdown())
        };
        // Give shutdown() time to set the flag, then unblock job A.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard);
        shutter.join().expect("shutdown panicked");

        // A ran (and failed on the empty session); B and C must have been
        // failed as shut-down orphans, not executed.
        for (id, want) in [(a, "training data"), (b, "shut down"), (c, "shut down")] {
            match runner.info(id).unwrap().state {
                JobState::Failed(msg) => {
                    assert!(
                        msg.contains(want),
                        "job {id}: expected '{want}', got '{msg}'"
                    )
                }
                other => panic!("job {id}: expected Failed, got {}", other.label()),
            }
        }
    }

    #[test]
    fn settled_jobs_age_out_of_the_bounded_table() {
        let runner = JobRunner::new(1);
        // Drive set_state directly through Inner: retention is a table
        // property, independent of how jobs settle.
        for id in 0..(MAX_SETTLED_JOBS as u64 + 10) {
            runner.inner.lock_jobs().map.insert(
                id,
                JobInfo {
                    session: "s".into(),
                    request_id: None,
                    state: JobState::Queued,
                },
            );
            runner.inner.set_state(id, JobState::Failed("x".into()));
        }
        let table = runner.inner.lock_jobs();
        assert_eq!(table.map.len(), MAX_SETTLED_JOBS);
        assert!(!table.map.contains_key(&0), "oldest settled job evicted");
        assert!(table.map.contains_key(&(MAX_SETTLED_JOBS as u64 + 9)));
        drop(table);
        runner.shutdown();
    }
}
