//! Minimal HTTP/1.1 framing over `TcpStream`.
//!
//! The server speaks just enough HTTP for a JSON API: request line +
//! headers + `Content-Length` body in, status line + JSON body out, with
//! keep-alive connections (the client holds one connection for its whole
//! session). Anything fancier — chunked encoding, multipart, TLS — is out
//! of scope by design; the interesting machinery lives in the session
//! pool and job runner, not the framing.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (64 MiB — a featured table upload).
pub const MAX_BODY: usize = 64 << 20;

/// Largest accepted request line / header line.
const MAX_LINE: usize = 16 << 10;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request path, without the query string.
    pub path: String,
    /// Raw query string (everything after `?`, empty when absent). The
    /// protocol uses it only for boolean flags — see
    /// [`Request::query_flag`].
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// False when the client sent `Connection: close`.
    pub keep_alive: bool,
}

impl Request {
    /// True when the query string enables flag `name`: bare (`?profile`),
    /// `=1`, or `=true`. `=0`/`=false` (or absence) leave it off.
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            let (k, v) = match pair.split_once('=') {
                Some((k, v)) => (k, v),
                None => (pair, ""),
            };
            k == name && matches!(v, "" | "1" | "true")
        })
    }
}

/// Read one request off a keep-alive connection. Returns `Ok(None)` on a
/// clean EOF between requests (client hung up), an error on malformed
/// framing mid-request.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let line = match read_line(reader, true)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_string(), v)
        }
        _ => return Err(bad(format!("malformed request line {line:?}"))),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    loop {
        let header = read_line(reader, false)?.ok_or_else(|| bad("eof in headers"))?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad(format!("malformed header {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| bad("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(bad("body too large"));
                }
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

/// One CRLF (or bare-LF) terminated line, without the terminator.
/// `at_request_boundary` turns a clean EOF into `None` instead of an
/// error.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    at_request_boundary: bool,
) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return if at_request_boundary && buf.is_empty() {
                Ok(None)
            } else {
                Err(bad("eof mid-line"))
            };
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                buf.extend_from_slice(&available[..nl]);
                reader.consume(nl + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                let line = String::from_utf8(buf).map_err(|_| bad("non-utf8 header"))?;
                return Ok(Some(line));
            }
            None => {
                buf.extend_from_slice(available);
                let n = available.len();
                reader.consume(n);
                if buf.len() > MAX_LINE {
                    return Err(bad("header line too long"));
                }
            }
        }
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reason phrase for the status codes the protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a JSON response. Head and body go out in one `write` so a
/// response is never split across two TCP segments waiting on Nagle +
/// delayed ACK (callers also set `TCP_NODELAY`, but one write keeps the
/// fast path fast even without it).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_typed(stream, status, "application/json", body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — the `/metrics`
/// endpoint answers in Prometheus text exposition format, not JSON.
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let mut message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    message.push_str(body);
    stream.write_all(message.as_bytes())?;
    stream.flush()
}
