//! A minimal JSON value, parser, and serializer.
//!
//! The workspace carries no external dependencies, so the wire protocol
//! hand-rolls its JSON the way PR 1 hand-rolled the rand/criterion
//! replacements: one [`Json`] enum, a recursive-descent [`parse`] with
//! byte-offset errors and a nesting-depth limit, and a serializer that
//! always emits valid JSON (non-finite numbers degrade to `null`).
//! Objects preserve insertion order — responses render the way handlers
//! build them.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, both are serialized — parse never produces duplicates
    /// worth preserving, and handlers never insert them).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number inside as an integer, if it is one (within f64's exact
    /// integer range).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The number inside as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|v| usize::try_from(v).ok())
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array inside, if any.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null` (including a missing optional field's default).
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting (arrays/objects) accepted from the wire.
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits at the cursor, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_string();
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse of {text} failed: {e}"));
        assert_eq!(v, &back, "round-trip through {text}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.25),
            Json::Num(1e300),
            Json::Num(-2.5e-5),
            Json::str(""),
            Json::str("plain"),
            Json::str("quote \" backslash \\ newline \n tab \t unicode λ→∞ 😀"),
            Json::str("\u{1}control"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::obj(vec![
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::obj(vec![("k", Json::Arr(vec![Json::Null, Json::Bool(false)]))]),
                    Json::str("s"),
                ]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn seeded_random_documents_roundtrip() {
        let mut rng = rain_linalg::RainRng::seed_from_u64(99);
        for _ in 0..200 {
            roundtrip(&random_json(&mut rng, 0));
        }
    }

    fn random_json(rng: &mut rain_linalg::RainRng, depth: usize) -> Json {
        let max = if depth >= 4 { 4 } else { 6 };
        match rng.below(max) {
            0 => Json::Null,
            1 => Json::Bool(rng.bernoulli(0.5)),
            2 => Json::Num((rng.uniform_range(-1e6, 1e6) * 8.0).round() / 8.0),
            3 => {
                let chars = ["a", "λ", "\"", "\\", "\n", " ", "0", "😀", "\u{7}"];
                let n = rng.below(8);
                Json::Str((0..n).map(|_| chars[rng.below(chars.len())]).collect())
            }
            4 => Json::Arr(
                (0..rng.below(4))
                    .map(|_| random_json(rng, depth + 1))
                    .collect(),
            ),
            _ => Json::Obj(
                (0..rng.below(4))
                    .map(|i| (format!("k{i}"), random_json(rng, depth + 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn parses_standard_syntax() {
        let v = parse(r#" { "a" : [ 1 , 2.5e1 , -3 ] , "b" : { } , "c" : "\u0041\ud83d\ude00" } "#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(25.0));
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "A😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "\u{1}",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "nan",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
        // Depth bomb.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "b": true, "a": [1], "dup": 1, "dup": 2}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("dup").unwrap().as_i64(), Some(2), "last key wins");
        assert_eq!(Json::Num(1.5).as_i64(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
