//! The sampled-profile ring: "the profile already exists when you ask".
//!
//! The serving layer traces 1-in-N queries and debug-run iterations
//! (per-session knobs, on by default — see
//! [`SessionSlot`](crate::pool::SessionSlot)) and parks the harvested
//! span trees here, in a fixed-size ring of recent profiles served at
//! `GET /debug/profiles` (list) and `GET /debug/profiles/{id}` (full
//! entry with the tree). A second ring holds **slow** entries:
//! anything over the session's latency threshold is force-captured —
//! with its span tree when that request happened to be sampled, as a
//! bare latency record otherwise (a trace cannot be reconstructed
//! retroactively).
//!
//! Both rings are bounded ([`RECENT_CAP`] / [`SLOW_CAP`]); pushes are a
//! short mutex hold on an already-harvested tree, never on the query
//! hot path's lock.

use rain_obs::TraceNode;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

/// Entries retained in the recent-profiles ring.
pub const RECENT_CAP: usize = 64;
/// Entries retained in the slow-captures ring.
pub const SLOW_CAP: usize = 32;

/// One captured profile.
#[derive(Debug, Clone)]
pub struct ProfileEntry {
    /// Server-unique, monotonically increasing id (fetch-by-id key).
    pub id: u64,
    /// `"query"` or `"iteration"` (a debug-run loop pass).
    pub kind: &'static str,
    /// Session the work ran in.
    pub session: String,
    /// What ran: the SQL text for queries, `method iteration=N` for
    /// debug-run iterations.
    pub detail: String,
    /// Wall-clock latency of the captured work, in seconds.
    pub latency_s: f64,
    /// Client-supplied request id of the triggering request, when one
    /// rode on the query/debug-run body — correlates profile entries with
    /// the client's own logs.
    pub request_id: Option<String>,
    /// Capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The harvested span tree; `None` for slow captures of unsampled
    /// requests (latency recorded, trace unavailable retroactively).
    pub trace: Option<TraceNode>,
}

#[derive(Default)]
struct Rings {
    recent: VecDeque<Arc<ProfileEntry>>,
    slow: VecDeque<Arc<ProfileEntry>>,
    next_id: u64,
}

/// The two bounded rings plus the id counter, behind one short mutex.
#[derive(Default)]
pub struct ProfileRing {
    inner: Mutex<Rings>,
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl ProfileRing {
    /// Empty rings.
    pub fn new() -> ProfileRing {
        ProfileRing::default()
    }

    fn lock(&self) -> MutexGuard<'_, Rings> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Park a sampled profile in the recent ring (evicting the oldest
    /// past [`RECENT_CAP`]); returns its id. `slow` additionally
    /// references the entry from the slow ring — callers decide by
    /// comparing latency to the session's threshold.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        kind: &'static str,
        session: &str,
        detail: String,
        latency_s: f64,
        request_id: Option<String>,
        trace: Option<TraceNode>,
        slow: bool,
    ) -> u64 {
        let mut rings = self.lock();
        rings.next_id += 1;
        let id = rings.next_id;
        let entry = Arc::new(ProfileEntry {
            id,
            kind,
            session: session.to_string(),
            detail,
            latency_s,
            request_id,
            unix_ms: now_unix_ms(),
            trace,
        });
        // Slow captures without a trace are latency records only — they
        // live in the slow ring alone, keeping the recent ring pure
        // "here is a span tree" material.
        if entry.trace.is_some() {
            rings.recent.push_back(Arc::clone(&entry));
            while rings.recent.len() > RECENT_CAP {
                rings.recent.pop_front();
            }
        }
        if slow {
            rings.slow.push_back(entry);
            while rings.slow.len() > SLOW_CAP {
                rings.slow.pop_front();
            }
        }
        id
    }

    /// Snapshot both rings, newest last: `(recent, slow)`.
    pub fn list(&self) -> (Vec<Arc<ProfileEntry>>, Vec<Arc<ProfileEntry>>) {
        let rings = self.lock();
        (
            rings.recent.iter().cloned().collect(),
            rings.slow.iter().cloned().collect(),
        )
    }

    /// Fetch one entry by id, searching both rings.
    pub fn get(&self, id: u64) -> Option<Arc<ProfileEntry>> {
        let rings = self.lock();
        rings
            .recent
            .iter()
            .chain(rings.slow.iter())
            .find(|e| e.id == id)
            .cloned()
    }

    /// Entries currently in the recent ring.
    pub fn len(&self) -> usize {
        self.lock().recent.len()
    }

    /// True when nothing has been captured (either ring).
    pub fn is_empty(&self) -> bool {
        let rings = self.lock();
        rings.recent.is_empty() && rings.slow.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &'static str) -> TraceNode {
        TraceNode {
            name,
            start_ns: 0,
            dur_ns: 1,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    #[test]
    fn rings_are_bounded_and_ids_fetch() {
        let ring = ProfileRing::new();
        assert!(ring.is_empty());
        let mut last = 0;
        for i in 0..(RECENT_CAP + 10) {
            last = ring.push(
                "query",
                "s",
                format!("SELECT {i}"),
                0.001,
                None,
                Some(leaf("query")),
                false,
            );
        }
        assert_eq!(ring.len(), RECENT_CAP);
        let (recent, slow) = ring.list();
        assert_eq!(recent.len(), RECENT_CAP);
        assert!(slow.is_empty());
        // Oldest evicted, newest retained and fetchable by id.
        assert_eq!(recent.last().unwrap().id, last);
        let got = ring.get(last).expect("newest entry fetchable");
        assert_eq!(got.detail, format!("SELECT {}", RECENT_CAP + 9));
        assert!(got.trace.is_some());
        assert!(ring.get(recent[0].id - 1).is_none(), "evicted id is gone");
    }

    #[test]
    fn slow_captures_without_traces_stay_out_of_the_recent_ring() {
        let ring = ProfileRing::new();
        let id = ring.push("query", "s", "SELECT slow".into(), 2.5, None, None, true);
        assert_eq!(ring.len(), 0, "traceless capture is slow-ring only");
        assert!(!ring.is_empty());
        let (recent, slow) = ring.list();
        assert!(recent.is_empty());
        assert_eq!(slow.len(), 1);
        let e = ring.get(id).unwrap();
        assert!(e.trace.is_none());
        assert!(e.latency_s > 2.0);
        // A sampled slow capture appears in both rings as one entry.
        let id2 = ring.push(
            "query",
            "s",
            "SELECT both".into(),
            3.0,
            Some("req-7".into()),
            Some(leaf("query")),
            true,
        );
        let (recent, slow) = ring.list();
        assert_eq!((recent.len(), slow.len()), (1, 2));
        assert_eq!(recent[0].id, id2);
        assert_eq!(slow[1].id, id2);
    }
}
