//! The server: TCP accept loop, connection threads, endpoint dispatch.
//!
//! ## Endpoints
//!
//! | method & path                     | body → effect |
//! |-----------------------------------|---------------|
//! | `GET  /healthz`                   | liveness probe |
//! | `GET  /stats`                     | server-wide counters (sessions, requests, cache + prediction-memo totals, job runner, per-endpoint latency quantiles) |
//! | `GET  /metrics`                   | Prometheus text exposition (per-endpoint request-latency summaries with p50/p95/p99/p999, queue/lock waits, cache + memo + job counters) |
//! | `GET  /debug/profiles`            | the always-on sampled profile ring: recent + slow captures (see [`crate::profiles`]) |
//! | `GET  /debug/profiles/{id}`       | one captured profile with its full span tree |
//! | `POST /debug/profiles/flush`      | dump both rings (full span trees) to a JSON file under the data dir |
//! | `POST /sessions`                  | `{"name":…,"model":…[,"engine":…,"threads":…,"sample_every":…,"slow_ms":…]}` → create a session (engine + worker-budget cap fixed at creation; sampling knobs adjustable); against a recovered session the same request *re-attaches* (200 with `"recovered":true`) instead of conflicting |
//! | `GET  /sessions`                  | list sessions (generation + cache + storage counters) |
//! | `DELETE /sessions/{s}`            | drop a session (and its on-disk directory, in durable mode) |
//! | `POST /sessions/{s}/tables`       | table upload → register (replacing invalidates cached skeletons) |
//! | `POST /sessions/{s}/tables/{t}/append` | `{"rows":[[…]…][,"features":[[…]…]]}` → append rows; bumps the table's per-delta catalog version |
//! | `POST /sessions/{s}/tables/{t}/index` | `{"column":…,"kind":"hash"\|"sorted"}` → create a secondary index; the definition is durable, the data is rebuilt on recovery |
//! | `GET  /sessions/{s}/tables/{t}/stats` | planner statistics (row count, per-column distinct/nulls/min/max) plus the table's index list |
//! | `POST /sessions/{s}/train`        | training-set upload |
//! | `POST /sessions/{s}/query`        | `{"sql":…[,"analyze":true]}` → debug-mode execution through the skeleton cache; `analyze` adds an `EXPLAIN ANALYZE`-style plan + span tree |
//! | `POST /sessions/{s}/complain`     | `{"sql":…,"complaints":[…]}` → attach complaints |
//! | `POST /sessions/{s}/debug-run`    | `{"method":…,"budget":…}` → enqueue job, `202 {"job":id}`; `?profile=1` (or `"profile":true`) attaches the run's span tree to the report |
//! | `GET  /jobs/{id}`                 | poll status; the report rides on `"done"` |
//!
//! Connections are HTTP/1.1 keep-alive, one thread per connection; every
//! request against a session serializes on that session's mutex while
//! distinct sessions proceed in parallel (see [`crate::pool`]). Long
//! debug runs never execute on a connection thread — they go through the
//! job runner ([`crate::jobs`]).
//!
//! ## Durable mode
//!
//! Started with a `data_dir`, every session writes a commitlog (plus
//! periodic snapshots) under `<data_dir>/sessions/<name>/`, and boot
//! replays whatever is on disk back into the pool before the listener
//! accepts — tables, null bitmaps, per-delta catalog versions, training
//! set, and model weights come back bit-identical (see
//! [`rain_core::durable`]). Recovered sessions answer `POST /sessions`
//! with `200 {"recovered":true}` so restart-safe clients just re-POST
//! and continue; cached queries re-prepare on first use and serve
//! without re-registration.

use crate::http::{read_request, write_response, write_response_typed, Request};
use crate::jobs::{JobRunner, JobState};
use crate::json::{self, Json};
use crate::pool::{SessionPool, SessionSlot, SessionState, StorageCounters};
use crate::profiles::{ProfileEntry, ProfileRing};
use crate::protocol::{
    append_features_from_json, append_rows_from_json, complaint_from_json, dataset_from_json,
    engine_name, exec_options_from_json, model_from_json, output_to_json, report_to_json,
    run_request_from_json, table_from_json, trace_to_json, version_to_json, ApiError,
};
use rain_model::Classifier;
use rain_obs::{Counter, Gauge, Registry, Sketch};
use rain_sql::table::ColType;
use rain_sql::QueryCache;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back off
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing debug-run jobs.
    pub job_workers: usize,
    /// Root of the server's persistent state. `None` (the default) keeps
    /// every session in memory only; `Some(dir)` makes sessions durable —
    /// commitlog + snapshots under `<dir>/sessions/<name>/`, recovered
    /// into the pool at the next boot — and gives `POST
    /// /debug/profiles/flush` somewhere to write.
    pub data_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            job_workers: 4,
            data_dir: None,
        }
    }
}

/// The server's metrics registry plus the instruments hot paths update.
/// Request latency and queue/lock waits are observed where they happen;
/// scrape-only values (session count, cache totals, job counters) are
/// refreshed into their instruments at `GET /metrics` time instead of
/// being double-counted on the request path.
struct ServerMetrics {
    registry: Registry,
    /// Per-endpoint request-latency sketches (label `endpoint`), one per
    /// entry of [`ENDPOINTS`], pre-registered so the request path never
    /// takes the registry lock. Rendered as a `summary` family with
    /// p50/p95/p99/p999 quantile series.
    http_request_seconds: Vec<(&'static str, Arc<Sketch>)>,
    http_requests_total: Arc<Counter>,
    job_queue_wait_seconds: Arc<Sketch>,
    session_lock_wait_seconds: Arc<Sketch>,
    sessions: Arc<Gauge>,
    uptime_seconds: Arc<Gauge>,
    jobs_queued: Arc<Gauge>,
    jobs_running: Arc<Gauge>,
    jobs_done_total: Arc<Counter>,
    jobs_failed_total: Arc<Counter>,
    cache_hits_total: Arc<Counter>,
    cache_misses_total: Arc<Counter>,
    cache_invalidations_total: Arc<Counter>,
    cache_hit_ratio: Arc<Gauge>,
    memo_hits_total: Arc<Counter>,
    memo_misses_total: Arc<Counter>,
    storage_log_bytes: Arc<Gauge>,
    storage_log_records: Arc<Gauge>,
    storage_snapshots_total: Arc<Counter>,
    storage_snapshot_lag_bytes: Arc<Gauge>,
    storage_snapshot_age_seconds: Arc<Gauge>,
    storage_recovered_sessions: Arc<Gauge>,
    storage_recovery_seconds: Arc<Gauge>,
}

/// The fixed endpoint-label set for `rain_http_request_seconds`. Routes
/// map onto these via [`endpoint_label`]; anything unroutable lands in
/// `other` so the label cardinality stays bounded no matter what clients
/// throw at the listener.
const ENDPOINTS: &[&str] = &[
    "healthz",
    "stats",
    "metrics",
    "sessions",
    "tables",
    "append",
    "index",
    "table_stats",
    "train",
    "query",
    "complain",
    "debug_run",
    "jobs",
    "debug_profiles",
    "profiles_flush",
    "other",
];

/// Which [`ENDPOINTS`] bucket a request belongs to.
fn endpoint_label(method: &str, path: &str) -> &'static str {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segs.as_slice()) {
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["stats"]) => "stats",
        ("GET", ["metrics"]) => "metrics",
        (_, ["sessions"]) | ("DELETE", ["sessions", _]) => "sessions",
        ("POST", ["sessions", _, "tables"]) => "tables",
        ("POST", ["sessions", _, "tables", _, "append"]) => "append",
        ("POST", ["sessions", _, "tables", _, "index"]) => "index",
        ("GET", ["sessions", _, "tables", _, "stats"]) => "table_stats",
        ("POST", ["sessions", _, "train"]) => "train",
        ("POST", ["sessions", _, "query"]) => "query",
        ("POST", ["sessions", _, "complain"]) => "complain",
        ("POST", ["sessions", _, "debug-run"]) => "debug_run",
        ("GET", ["jobs", _]) => "jobs",
        ("POST", ["debug", "profiles", "flush"]) => "profiles_flush",
        ("GET", ["debug", "profiles", ..]) => "debug_profiles",
        _ => "other",
    }
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        ServerMetrics {
            http_request_seconds: ENDPOINTS
                .iter()
                .map(|ep| {
                    (
                        *ep,
                        registry.sketch_with("rain_http_request_seconds", &[("endpoint", ep)]),
                    )
                })
                .collect(),
            http_requests_total: registry.counter("rain_http_requests_total"),
            job_queue_wait_seconds: registry.sketch("rain_job_queue_wait_seconds"),
            session_lock_wait_seconds: registry.sketch("rain_session_lock_wait_seconds"),
            sessions: registry.gauge("rain_sessions"),
            uptime_seconds: registry.gauge("rain_uptime_seconds"),
            jobs_queued: registry.gauge("rain_jobs_queued"),
            jobs_running: registry.gauge("rain_jobs_running"),
            jobs_done_total: registry.counter("rain_jobs_done_total"),
            jobs_failed_total: registry.counter("rain_jobs_failed_total"),
            cache_hits_total: registry.counter("rain_cache_hits_total"),
            cache_misses_total: registry.counter("rain_cache_misses_total"),
            cache_invalidations_total: registry.counter("rain_cache_invalidations_total"),
            cache_hit_ratio: registry.gauge("rain_cache_hit_ratio"),
            memo_hits_total: registry.counter("rain_memo_hits_total"),
            memo_misses_total: registry.counter("rain_memo_misses_total"),
            storage_log_bytes: registry.gauge("rain_storage_log_bytes"),
            storage_log_records: registry.gauge("rain_storage_log_records"),
            storage_snapshots_total: registry.counter("rain_storage_snapshots_total"),
            storage_snapshot_lag_bytes: registry.gauge("rain_storage_snapshot_lag_bytes"),
            storage_snapshot_age_seconds: registry.gauge("rain_storage_snapshot_age_seconds"),
            storage_recovered_sessions: registry.gauge("rain_storage_recovered_sessions"),
            storage_recovery_seconds: registry.gauge("rain_storage_recovery_seconds"),
            registry,
        }
    }

    /// Observe one request's latency into its endpoint's sketch.
    fn observe_request(&self, endpoint: &str, seconds: f64) {
        let sketch = self
            .http_request_seconds
            .iter()
            .find(|(ep, _)| *ep == endpoint)
            .or_else(|| {
                self.http_request_seconds
                    .iter()
                    .find(|(ep, _)| *ep == "other")
            });
        if let Some((_, s)) = sketch {
            s.observe(seconds);
        }
    }
}

/// Shared server state: the session pool, the job runner, and counters.
pub struct ServerState {
    pool: SessionPool,
    jobs: JobRunner,
    /// Always-on sampled profiles (1-in-N queries and debug-run
    /// iterations, plus slow captures), served at `GET /debug/profiles`.
    profiles: Arc<ProfileRing>,
    requests: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
    /// Persistent-state root, when the server runs durable.
    data_dir: Option<PathBuf>,
    /// Sessions rebuilt from disk at boot.
    recovered_sessions: u64,
    /// Wall-clock seconds boot recovery took (all sessions).
    recovery_seconds: f64,
    /// Sequence for `POST /debug/profiles/flush` output files.
    profile_flush_seq: AtomicU64,
    metrics: ServerMetrics,
}

/// Rebuild the model of a recovered session from its verbatim creation
/// JSON — the exact parser `POST /sessions` used the first time.
fn model_factory(spec: &str) -> Result<Box<dyn Classifier>, String> {
    let v = json::parse(spec).map_err(|e| format!("creation spec does not parse: {e}"))?;
    let model = v
        .get("model")
        .ok_or_else(|| "creation spec has no 'model'".to_string())?;
    model_from_json(model).map_err(|e| e.message)
}

/// Replay every session directory under `<data_dir>/sessions` into the
/// pool. A session that fails to recover is reported on stderr and
/// skipped — one corrupt directory must not keep the server down.
/// Returns `(sessions recovered, wall-clock seconds)`.
fn recover_sessions(data_dir: &Path, pool: &SessionPool) -> (u64, f64) {
    let t0 = Instant::now();
    let mut recovered = 0u64;
    let Ok(entries) = std::fs::read_dir(data_dir.join("sessions")) else {
        return (0, t0.elapsed().as_secs_f64());
    };
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
            continue;
        };
        match rain_core::durable::recover(&dir, &model_factory) {
            Ok(rec) => {
                // The exec config and sampling knobs ride on the same
                // verbatim spec the model was rebuilt from.
                let spec_json = json::parse(&rec.spec).ok();
                let opts = spec_json
                    .as_ref()
                    .and_then(|v| exec_options_from_json(v).ok())
                    .unwrap_or_default();
                match pool.insert_recovered(&name, rec.sess, opts, rec.spec, rec.store) {
                    Ok(slot) => {
                        if let Some(v) = &spec_json {
                            apply_sampling_knobs(&slot, v);
                        }
                        recovered += 1;
                    }
                    Err(e) => eprintln!(
                        "rain-serve: recovered session '{name}' not inserted: {}",
                        e.message
                    ),
                }
            }
            Err(e) => eprintln!("rain-serve: session '{name}' failed to recover: {e}"),
        }
    }
    (recovered, t0.elapsed().as_secs_f64())
}

/// Apply the optional `sample_every`/`slow_ms` knobs of a creation (or
/// recovered) spec; anything omitted keeps the always-on defaults.
fn apply_sampling_knobs(slot: &SessionSlot, body: &Json) {
    let sample_every = body.get("sample_every").and_then(Json::as_i64);
    let slow_ms = body.get("slow_ms").and_then(Json::as_i64);
    if sample_every.is_some() || slow_ms.is_some() {
        slot.set_sampling(
            sample_every.map_or_else(|| slot.sample_every(), |v| v.max(0) as u64),
            slow_ms.map_or_else(|| slot.slow_ms(), |v| v.max(0) as u64),
        );
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads serving until process
/// exit.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

/// Bind and start serving in background threads; returns immediately.
/// With a configured data dir, on-disk sessions are recovered into the
/// pool *before* the first connection is accepted.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let metrics = ServerMetrics::new();
    let profiles = Arc::new(ProfileRing::new());
    let pool = SessionPool::with_lock_wait(Arc::clone(&metrics.session_lock_wait_seconds));
    let data_dir = cfg.data_dir.as_ref().map(PathBuf::from);
    let (recovered_sessions, recovery_seconds) = match &data_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir.join("sessions"))?;
            recover_sessions(dir, &pool)
        }
        None => (0, 0.0),
    };
    let state = Arc::new(ServerState {
        pool,
        jobs: JobRunner::with_observability(
            cfg.job_workers,
            Some(Arc::clone(&metrics.job_queue_wait_seconds)),
            Some(Arc::clone(&profiles)),
        ),
        profiles,
        requests: AtomicU64::new(0),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        data_dir,
        recovered_sessions,
        recovery_seconds,
        profile_flush_seq: AtomicU64::new(0),
        metrics,
    });
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("rain-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state))?;
    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
    })
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, drain the job workers, and join the
    /// accept thread. Open connections see `503` on their next request.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.state.jobs.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("rain-serve-conn".to_string())
            .spawn(move || handle_conn(stream, state));
    }
}

fn handle_conn(stream: TcpStream, state: Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF between requests
            Err(_) => {
                let body = ApiError::bad_request("malformed HTTP request").body();
                let _ = write_response(&mut stream, 400, &body.to_string(), false);
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let t_req = Instant::now();
        if state.shutdown.load(Ordering::SeqCst) {
            let body = ApiError::internal("shutting down").body();
            let _ = write_response(&mut stream, 503, &body.to_string(), false);
            return;
        }
        // `/metrics` answers in Prometheus text exposition format; every
        // other route speaks JSON.
        let endpoint = endpoint_label(&req.method, &req.path);
        let write_ok = if req.method == "GET" && req.path == "/metrics" {
            let text = render_metrics(&state);
            state
                .metrics
                .observe_request(endpoint, t_req.elapsed().as_secs_f64());
            write_response_typed(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                &text,
                req.keep_alive,
            )
            .is_ok()
        } else {
            let (status, body) = match handle(&state, &req) {
                Ok((status, body)) => (status, body),
                Err(e) => (e.status, e.body()),
            };
            state
                .metrics
                .observe_request(endpoint, t_req.elapsed().as_secs_f64());
            write_response(&mut stream, status, &body.to_string(), req.keep_alive).is_ok()
        };
        if !write_ok || !req.keep_alive {
            return;
        }
    }
}

/// Parse a request body as JSON (empty bodies are an error for routes
/// that call this).
fn body_json(req: &Request) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(ApiError::bad_request("request body must be JSON"));
    }
    json::parse(text).map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))
}

fn str_field(v: &Json, key: &str) -> Result<String, ApiError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request(format!("missing string field '{key}'")))
}

/// Route and execute one request.
fn handle(state: &ServerState, req: &Request) -> Result<(u16, Json), ApiError> {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => Ok((200, Json::obj(vec![("ok", Json::Bool(true))]))),
        ("GET", ["stats"]) => Ok((200, stats(state))),
        ("POST", ["sessions"]) => create_session(state, req),
        ("GET", ["sessions"]) => Ok((200, list_sessions(state))),
        ("DELETE", ["sessions", name]) => {
            state.pool.remove(name)?;
            // The pool held the only record of the name's validity; now
            // that removal succeeded, the matching directory (if any) is
            // safe to drop too.
            if let Some(root) = &state.data_dir {
                let dir = root.join("sessions").join(name);
                if let Err(e) = std::fs::remove_dir_all(&dir) {
                    if e.kind() != io::ErrorKind::NotFound {
                        eprintln!("rain-serve: failed to remove {}: {e}", dir.display());
                    }
                }
            }
            Ok((200, Json::obj(vec![("dropped", Json::str(*name))])))
        }
        ("POST", ["sessions", name, "tables"]) => register_table(state, name, req),
        ("POST", ["sessions", name, "tables", table, "append"]) => {
            append_to_table(state, name, table, req)
        }
        ("POST", ["sessions", name, "tables", table, "index"]) => {
            create_table_index(state, name, table, req)
        }
        ("GET", ["sessions", name, "tables", table, "stats"]) => table_stats(state, name, table),
        ("POST", ["sessions", name, "train"]) => upload_train(state, name, req),
        ("POST", ["sessions", name, "query"]) => query(state, name, req),
        ("POST", ["sessions", name, "complain"]) => complain(state, name, req),
        ("POST", ["sessions", name, "debug-run"]) => debug_run(state, name, req),
        ("GET", ["jobs", id]) => job_status(state, id),
        ("GET", ["debug", "profiles"]) => Ok((200, profiles_list(state))),
        ("POST", ["debug", "profiles", "flush"]) => profiles_flush(state),
        ("GET", ["debug", "profiles", id]) => profile_by_id(state, id),
        _ => Err(ApiError::not_found(format!(
            "no route {} {}",
            req.method, req.path
        ))),
    }
}

/// Refresh the scrape-time instruments and render the registry.
///
/// The mirrored counters load from the same sources as `GET /stats`
/// (request counter, the pool's churn-proof cache totals, job-runner
/// counters), so the two endpoints always agree and counters stay
/// monotonic without double bookkeeping on hot paths. Cache totals come
/// from [`SessionPool::cache_totals`], which folds removed sessions'
/// counters into a retired baseline — concurrent create/remove churn can
/// no longer make a scrape see a counter regress.
/// Sum every durable slot's lock-free storage counters, plus the Unix
/// milliseconds of the *oldest* last-snapshot among sessions that have
/// cut one (0 when none has) — the worst-case snapshot age is the number
/// an operator alerts on.
fn storage_totals(state: &ServerState) -> (StorageCounters, u64) {
    let mut agg = StorageCounters::default();
    let mut oldest_ms = 0u64;
    for slot in state.pool.list() {
        if let Some(s) = slot.storage_snapshot() {
            agg.log_bytes += s.log_bytes;
            agg.log_records += s.log_records;
            agg.snapshots += s.snapshots;
            agg.snapshot_lag_bytes += s.snapshot_lag_bytes;
            if s.last_snapshot_unix_ms > 0 {
                oldest_ms = if oldest_ms == 0 {
                    s.last_snapshot_unix_ms
                } else {
                    oldest_ms.min(s.last_snapshot_unix_ms)
                };
            }
        }
    }
    (agg, oldest_ms)
}

fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn render_metrics(state: &ServerState) -> String {
    let m = &state.metrics;
    m.http_requests_total
        .store(state.requests.load(Ordering::Relaxed));
    m.sessions.set(state.pool.len() as f64);
    m.uptime_seconds.set(state.started.elapsed().as_secs_f64());
    let cache = state.pool.cache_totals();
    m.cache_hits_total.store(cache.hits);
    m.cache_misses_total.store(cache.misses);
    m.cache_invalidations_total.store(cache.invalidations);
    let lookups = cache.hits + cache.misses;
    m.cache_hit_ratio.set(if lookups == 0 {
        0.0
    } else {
        cache.hits as f64 / lookups as f64
    });
    let (memo_hits, memo_misses) = state.pool.memo_totals();
    m.memo_hits_total.store(memo_hits);
    m.memo_misses_total.store(memo_misses);
    let jobs = state.jobs.stats();
    m.jobs_queued.set(jobs.queued as f64);
    m.jobs_running.set(jobs.running as f64);
    m.jobs_done_total.store(jobs.done as u64);
    m.jobs_failed_total.store(jobs.failed as u64);
    let (storage, oldest_snapshot_ms) = storage_totals(state);
    m.storage_log_bytes.set(storage.log_bytes as f64);
    m.storage_log_records.set(storage.log_records as f64);
    m.storage_snapshots_total.store(storage.snapshots);
    m.storage_snapshot_lag_bytes
        .set(storage.snapshot_lag_bytes as f64);
    m.storage_snapshot_age_seconds
        .set(if oldest_snapshot_ms == 0 {
            0.0
        } else {
            now_unix_ms().saturating_sub(oldest_snapshot_ms) as f64 / 1e3
        });
    m.storage_recovered_sessions
        .set(state.recovered_sessions as f64);
    m.storage_recovery_seconds.set(state.recovery_seconds);
    m.registry.render()
}

fn stats(state: &ServerState) -> Json {
    let cache = state.pool.cache_totals();
    let memo = state.pool.memo_totals();
    let jobs = state.jobs.stats();
    // Per-endpoint latency quantiles from the same sketches `/metrics`
    // renders; endpoints nothing has hit yet are omitted.
    let latency: Vec<(String, Json)> = state
        .metrics
        .http_request_seconds
        .iter()
        .filter_map(|(ep, sketch)| {
            let snap = sketch.snapshot();
            (snap.count > 0).then(|| {
                (
                    ep.to_string(),
                    Json::obj(vec![
                        ("count", Json::Num(snap.count as f64)),
                        ("p50", Json::Num(snap.quantile(0.5))),
                        ("p95", Json::Num(snap.quantile(0.95))),
                        ("p99", Json::Num(snap.quantile(0.99))),
                    ]),
                )
            })
        })
        .collect();
    Json::obj(vec![
        ("sessions", Json::Num(state.pool.len() as f64)),
        (
            "requests",
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("invalidations", Json::Num(cache.invalidations as f64)),
            ]),
        ),
        (
            "memo",
            Json::obj(vec![
                ("hits", Json::Num(memo.0 as f64)),
                ("misses", Json::Num(memo.1 as f64)),
            ]),
        ),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::Num(jobs.queued as f64)),
                ("running", Json::Num(jobs.running as f64)),
                ("done", Json::Num(jobs.done as f64)),
                ("failed", Json::Num(jobs.failed as f64)),
                ("peak_running", Json::Num(jobs.peak_running as f64)),
            ]),
        ),
        ("latency_s", Json::Obj(latency)),
        (
            "profiles",
            Json::obj(vec![("recent", Json::Num(state.profiles.len() as f64))]),
        ),
        (
            "storage",
            match &state.data_dir {
                Some(dir) => {
                    let (storage, _) = storage_totals(state);
                    Json::obj(vec![
                        ("data_dir", Json::str(dir.display().to_string())),
                        ("log_bytes", Json::Num(storage.log_bytes as f64)),
                        ("log_records", Json::Num(storage.log_records as f64)),
                        ("snapshots", Json::Num(storage.snapshots as f64)),
                        (
                            "snapshot_lag_bytes",
                            Json::Num(storage.snapshot_lag_bytes as f64),
                        ),
                        (
                            "recovered_sessions",
                            Json::Num(state.recovered_sessions as f64),
                        ),
                        ("recovery_seconds", Json::Num(state.recovery_seconds)),
                    ])
                }
                None => Json::Null,
            },
        ),
    ])
}

/// Summary JSON of one profile-ring entry (no span tree; fetch by id for
/// the full capture).
fn profile_summary(e: &ProfileEntry) -> Vec<(&'static str, Json)> {
    vec![
        ("id", Json::Num(e.id as f64)),
        ("kind", Json::str(e.kind)),
        ("session", Json::str(e.session.clone())),
        ("detail", Json::str(e.detail.clone())),
        ("latency_s", Json::Num(e.latency_s)),
        (
            "request_id",
            match &e.request_id {
                Some(rid) => Json::str(rid.clone()),
                None => Json::Null,
            },
        ),
        ("unix_ms", Json::Num(e.unix_ms as f64)),
        (
            "spans",
            Json::Num(e.trace.as_ref().map_or(0, |t| t.size()) as f64),
        ),
    ]
}

fn profiles_list(state: &ServerState) -> Json {
    let (recent, slow) = state.profiles.list();
    let summarize = |entries: Vec<Arc<ProfileEntry>>| {
        Json::Arr(
            entries
                .iter()
                .map(|e| Json::obj(profile_summary(e)))
                .collect(),
        )
    };
    Json::obj(vec![
        ("recent", summarize(recent)),
        ("slow", summarize(slow)),
    ])
}

fn profile_by_id(state: &ServerState, id: &str) -> Result<(u16, Json), ApiError> {
    let id: u64 = id
        .parse()
        .map_err(|_| ApiError::bad_request("profile ids are integers"))?;
    let entry = state
        .profiles
        .get(id)
        .ok_or_else(|| ApiError::not_found(format!("no profile {id} (rings are bounded)")))?;
    let mut pairs = profile_summary(&entry);
    pairs.push((
        "profile",
        match &entry.trace {
            Some(t) => trace_to_json(t),
            None => Json::Null,
        },
    ));
    Ok((200, Json::obj(pairs)))
}

/// `POST /debug/profiles/flush`: dump both rings — summaries *and* full
/// span trees — to a JSON file under `<data_dir>/profiles/`, so a capture
/// worth keeping survives ring eviction and restarts.
fn profiles_flush(state: &ServerState) -> Result<(u16, Json), ApiError> {
    let Some(root) = &state.data_dir else {
        return Err(ApiError::bad_request(
            "profile flush needs a server data dir (start with data_dir set)",
        ));
    };
    let dir = root.join("profiles");
    std::fs::create_dir_all(&dir)
        .map_err(|e| ApiError::internal(format!("create {}: {e}", dir.display())))?;
    // The in-process sequence restarts at zero each boot; skip over files
    // an earlier process left behind instead of overwriting them.
    let path = loop {
        let seq = state.profile_flush_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let p = dir.join(format!("profiles-{seq:06}.json"));
        if !p.exists() {
            break p;
        }
    };
    let (recent, slow) = state.profiles.list();
    let full = |entries: &[Arc<ProfileEntry>]| {
        Json::Arr(
            entries
                .iter()
                .map(|e| {
                    let mut pairs = profile_summary(e);
                    pairs.push((
                        "profile",
                        match &e.trace {
                            Some(t) => trace_to_json(t),
                            None => Json::Null,
                        },
                    ));
                    Json::obj(pairs)
                })
                .collect(),
        )
    };
    let doc = Json::obj(vec![
        ("flushed_unix_ms", Json::Num(now_unix_ms() as f64)),
        ("recent", full(&recent)),
        ("slow", full(&slow)),
    ]);
    std::fs::write(&path, doc.to_string())
        .map_err(|e| ApiError::internal(format!("write {}: {e}", path.display())))?;
    Ok((
        200,
        Json::obj(vec![
            ("path", Json::str(path.display().to_string())),
            ("recent", Json::Num(recent.len() as f64)),
            ("slow", Json::Num(slow.len() as f64)),
        ]),
    ))
}

fn list_sessions(state: &ServerState) -> Json {
    let sessions: Vec<Json> = state
        .pool
        .list()
        .iter()
        .map(|slot| {
            let s = slot.cache_stats_snapshot();
            let (memo_hits, memo_misses) = slot.memo_snapshot();
            Json::obj(vec![
                ("name", Json::str(slot.name.clone())),
                ("generation", Json::Num(slot.generation() as f64)),
                ("engine", Json::str(engine_name(slot.opts.engine))),
                ("threads", Json::Num(slot.opts.threads as f64)),
                (
                    "cache",
                    Json::obj(vec![
                        ("hits", Json::Num(s.hits as f64)),
                        ("misses", Json::Num(s.misses as f64)),
                        ("invalidations", Json::Num(s.invalidations as f64)),
                    ]),
                ),
                (
                    "memo",
                    Json::obj(vec![
                        ("hits", Json::Num(memo_hits as f64)),
                        ("misses", Json::Num(memo_misses as f64)),
                    ]),
                ),
                ("recovered", Json::Bool(slot.recovered())),
                (
                    "storage",
                    match slot.storage_snapshot() {
                        Some(s) => Json::obj(vec![
                            ("log_bytes", Json::Num(s.log_bytes as f64)),
                            ("log_records", Json::Num(s.log_records as f64)),
                            ("snapshots", Json::Num(s.snapshots as f64)),
                            ("snapshot_lag_bytes", Json::Num(s.snapshot_lag_bytes as f64)),
                        ]),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::obj(vec![("sessions", Json::Arr(sessions))])
}

fn create_session(state: &ServerState, req: &Request) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let name = str_field(&body, "name")?;
    // Re-attach: a session recovered from disk at boot answers the same
    // creation request with 200 and its live config, instead of 409 —
    // restart-safe clients just re-POST and continue where they left off
    // (tables, training set, and cached queries are already resident).
    if let Ok(slot) = state.pool.get(&name) {
        if slot.recovered() {
            let kind = slot.lock().sess.model.name();
            return Ok((
                200,
                Json::obj(vec![
                    ("session", Json::str(name)),
                    ("model", Json::str(kind)),
                    ("engine", Json::str(engine_name(slot.opts.engine))),
                    ("threads", Json::Num(slot.opts.threads as f64)),
                    ("sample_every", Json::Num(slot.sample_every() as f64)),
                    ("slow_ms", Json::Num(slot.slow_ms() as f64)),
                    ("recovered", Json::Bool(true)),
                ]),
            ));
        }
    }
    let model = model_from_json(
        body.get("model")
            .ok_or_else(|| ApiError::bad_request("missing field 'model'"))?,
    )?;
    let opts = exec_options_from_json(&body)?;
    let kind = model.name();
    let slot = match &state.data_dir {
        Some(root) => {
            // Validate the name before it becomes a path component; the
            // pool enforces the same rule, but only after the store (and
            // its directory) would already exist.
            if !crate::pool::valid_session_name(&name) {
                return Err(ApiError::bad_request(
                    "session names are 1-64 chars of [a-zA-Z0-9._-]",
                ));
            }
            let dir = root.join("sessions").join(&name);
            let spec = String::from_utf8_lossy(&req.body).into_owned();
            let store = rain_core::durable::create_store(&dir, &spec)
                .map_err(|e| ApiError::internal(format!("open session store: {e}")))?;
            state.pool.create_durable(&name, model, opts, spec, store)?
        }
        None => state.pool.create_with(&name, model, opts)?,
    };
    // Optional sampling knobs; anything omitted keeps the always-on
    // defaults (1-in-16, 500 ms slow threshold).
    apply_sampling_knobs(&slot, &body);
    Ok((
        200,
        Json::obj(vec![
            ("session", Json::str(name)),
            ("model", Json::str(kind)),
            ("engine", Json::str(engine_name(opts.engine))),
            ("threads", Json::Num(opts.threads as f64)),
            ("sample_every", Json::Num(slot.sample_every() as f64)),
            ("slow_ms", Json::Num(slot.slow_ms() as f64)),
            ("recovered", Json::Bool(false)),
        ]),
    ))
}

/// Cut a snapshot when the session store's policy says so, and refresh
/// the slot's lock-free storage counters. Call with the session lock
/// held, after a logged mutation; a no-op for ephemeral sessions.
fn publish_durability(slot: &SessionSlot, st: &mut SessionState) -> Result<(), ApiError> {
    if let Some(store) = st.store.as_mut() {
        rain_core::durable::maybe_snapshot(&st.sess, store, &st.spec)
            .map_err(|e| ApiError::internal(format!("cut snapshot: {e}")))?;
        slot.publish_storage_stats(store);
    }
    Ok(())
}

fn register_table(state: &ServerState, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let (table_name, table) = table_from_json(&body)?;
    let slot = state.pool.get(name)?;
    let mut guard = slot.lock();
    let st = &mut *guard;
    let rows = table.n_rows();
    let (_, version) =
        rain_core::durable::register_table(&mut st.sess.db, st.store.as_mut(), &table_name, table)
            .map_err(|e| ApiError::internal(format!("log table registration: {e}")))?;
    publish_durability(&slot, st)?;
    let generation = slot.bump_generation();
    drop(guard);
    Ok((
        200,
        Json::obj(vec![
            ("table", Json::str(table_name)),
            ("rows", Json::Num(rows as f64)),
            ("version", version_to_json(version)),
            ("generation", Json::Num(generation as f64)),
        ]),
    ))
}

/// `POST /sessions/{s}/tables/{t}/append`: append a batch of rows (and,
/// for predict-visible tables, their feature rows) to a registered table.
/// The batch validates against the table's schema *before* anything is
/// logged or applied, bumps the table's per-delta catalog version on
/// success, and is durable before the response in durable mode.
fn append_to_table(
    state: &ServerState,
    name: &str,
    table_name: &str,
    req: &Request,
) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let slot = state.pool.get(name)?;
    let mut guard = slot.lock();
    let st = &mut *guard;
    let types: Vec<ColType> = st
        .sess
        .db
        .table(table_name)
        .ok_or_else(|| ApiError::bad_request(format!("no table '{table_name}'")))?
        .schema()
        .iter()
        .map(|d| d.ty)
        .collect();
    let rows = append_rows_from_json(
        body.get("rows")
            .ok_or_else(|| ApiError::bad_request("missing field 'rows'"))?,
        &types,
    )?;
    let features = match body.get("features") {
        None => None,
        Some(f) => append_features_from_json(f)?,
    };
    let appended = rows.len();
    let (id, version) = rain_core::durable::append_rows(
        &mut st.sess.db,
        st.store.as_mut(),
        table_name,
        rows,
        features,
    )
    .map_err(|e| match e {
        rain_core::durable::AppendError::Invalid(msg) => ApiError::bad_request(msg),
        rain_core::durable::AppendError::Storage(e) => {
            ApiError::internal(format!("log append: {e}"))
        }
    })?;
    let total = st.sess.db.table_by_id(id).n_rows();
    publish_durability(&slot, st)?;
    let generation = slot.bump_generation();
    drop(guard);
    Ok((
        200,
        Json::obj(vec![
            ("table", Json::str(table_name)),
            ("appended", Json::Num(appended as f64)),
            ("rows", Json::Num(total as f64)),
            ("version", version_to_json(version)),
            ("generation", Json::Num(generation as f64)),
        ]),
    ))
}

/// `POST /sessions/{s}/tables/{t}/index`: create (or rebuild) a secondary
/// index on one column. Validation happens before anything is logged, so
/// a bad column or kind leaves catalog and log untouched; on success the
/// *definition* is durable while the data is rebuilt from the table on
/// recovery and on every later table mutation.
fn create_table_index(
    state: &ServerState,
    name: &str,
    table_name: &str,
    req: &Request,
) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let column = str_field(&body, "column")?;
    let kind_str = str_field(&body, "kind")?;
    let kind = rain_sql::IndexKind::parse(&kind_str).ok_or_else(|| {
        ApiError::bad_request(format!(
            "unknown index kind '{kind_str}' (expected 'hash' or 'sorted')"
        ))
    })?;
    let slot = state.pool.get(name)?;
    let mut guard = slot.lock();
    let st = &mut *guard;
    let (_, entries) = rain_core::durable::create_index(
        &mut st.sess.db,
        st.store.as_mut(),
        table_name,
        &column,
        kind,
    )
    .map_err(|e| match e {
        rain_core::durable::AppendError::Invalid(msg) => ApiError::bad_request(msg),
        rain_core::durable::AppendError::Storage(e) => {
            ApiError::internal(format!("log index creation: {e}"))
        }
    })?;
    publish_durability(&slot, st)?;
    // Cached plans were costed without this index; bump the generation so
    // the next checkout re-optimizes and can pick the new access path.
    let generation = slot.bump_generation();
    drop(guard);
    Ok((
        200,
        Json::obj(vec![
            ("table", Json::str(table_name)),
            ("column", Json::str(column)),
            ("kind", Json::str(kind.as_str())),
            ("entries", Json::Num(entries as f64)),
            ("generation", Json::Num(generation as f64)),
        ]),
    ))
}

/// `GET /sessions/{s}/tables/{t}/stats`: the planner's view of one table —
/// the statistics the cost model reads (row count, per-column distinct
/// estimates, null counts, numeric min/max) plus the secondary indexes
/// currently built over it.
fn table_stats(state: &ServerState, name: &str, table_name: &str) -> Result<(u16, Json), ApiError> {
    let slot = state.pool.get(name)?;
    let guard = slot.lock();
    let entry = guard
        .sess
        .db
        .entry(table_name)
        .ok_or_else(|| ApiError::bad_request(format!("no table '{table_name}'")))?;
    let columns = entry
        .table
        .schema()
        .iter()
        .zip(&entry.stats.columns)
        .map(|(def, c)| {
            Json::obj(vec![
                ("name", Json::str(&def.name)),
                ("distinct", Json::Num(c.distinct as f64)),
                ("nulls", Json::Num(c.null_count as f64)),
                ("min", c.min.map_or(Json::Null, Json::Num)),
                ("max", c.max.map_or(Json::Null, Json::Num)),
            ])
        })
        .collect();
    let indexes = entry
        .indexes
        .iter()
        .map(|ix| {
            Json::obj(vec![
                ("column", Json::str(&ix.column)),
                ("kind", Json::str(ix.kind.as_str())),
                ("entries", Json::Num(ix.len() as f64)),
            ])
        })
        .collect();
    Ok((
        200,
        Json::obj(vec![
            ("table", Json::str(&entry.name)),
            ("rows", Json::Num(entry.stats.row_count as f64)),
            ("version", version_to_json(entry.version)),
            ("columns", Json::Arr(columns)),
            ("indexes", Json::Arr(indexes)),
        ]),
    ))
}

fn upload_train(state: &ServerState, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let data = dataset_from_json(&body)?;
    let slot = state.pool.get(name)?;
    let mut st = slot.lock();
    if data.dim() != st.sess.model.dim() {
        return Err(ApiError::bad_request(format!(
            "training dim {} does not match model dim {}",
            data.dim(),
            st.sess.model.dim()
        )));
    }
    if data.n_classes() != st.sess.model.n_classes() {
        return Err(ApiError::bad_request(format!(
            "training classes {} do not match model classes {}",
            data.n_classes(),
            st.sess.model.n_classes()
        )));
    }
    let n = data.len();
    let st = &mut *st;
    rain_core::durable::set_train(&mut st.sess, st.store.as_mut(), data)
        .map_err(|e| ApiError::internal(format!("log training set: {e}")))?;
    publish_durability(&slot, st)?;
    let generation = slot.bump_generation();
    Ok((
        200,
        Json::obj(vec![
            ("train_records", Json::Num(n as f64)),
            ("generation", Json::Num(generation as f64)),
        ]),
    ))
}

fn query(state: &ServerState, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let sql = str_field(&body, "sql")?;
    let request_id = body
        .get("request_id")
        .and_then(Json::as_str)
        .map(str::to_string);
    let analyze =
        body.get("analyze").and_then(Json::as_bool).unwrap_or(false) || req.query_flag("analyze");
    let slot = state.pool.get(name)?;
    // Always-on sampling: 1-in-N queries per session get the analyze
    // path's tracing treatment and land in the profile ring. The sampler
    // stands down while any trace is already live — an `analyze` request
    // or a `?profile=1` run owns the collector then, and stealing its
    // window would perturb *its* profile.
    let sampled = !analyze && slot.should_sample() && !rain_obs::enabled();
    let t_exec = Instant::now();
    let mut st = slot.lock();
    let st = &mut *st;
    // `EXPLAIN ANALYZE` flavor: the response carries the executed plan —
    // the *cached skeleton's* plan, with resolved engine, thread, and
    // morsel counts plus estimated-vs-actual row counts per scan and
    // join step — and the harvested span tree of this execution. Results
    // are bit-identical either way — tracing is a pure observer.
    let (out, event, analysis, sampled_trace) = if analyze {
        let _on = rain_obs::activate();
        let root = rain_obs::Span::enter("query");
        let root_id = root.id();
        let res = (|| {
            let cq = st
                .cache
                .checkout(&st.sess.db, st.sess.model.as_ref(), &sql)?;
            let out = cq.prepared.refresh_threaded(
                &st.sess.db,
                st.sess.model.as_ref(),
                st.cache.threads(),
            )?;
            let sk = cq.prepared.stats();
            let join_rows: Vec<usize> = sk.join_steps.iter().map(|&(_, n)| n).collect();
            let explain = cq.prepared.plan().explain_analyze(
                &st.sess.db,
                slot.opts.engine,
                st.cache.threads(),
                &sk.scan_rows,
                &join_rows,
            );
            let event = cq.event;
            st.cache.checkin(cq);
            Ok::<_, rain_sql::QueryError>((out, event, explain))
        })();
        drop(root);
        let trace = rain_obs::take_subtree(root_id);
        let (out, event, explain) = res?;
        (out, event, Some((explain, trace)), None)
    } else if sampled {
        let _on = rain_obs::activate();
        let root = rain_obs::Span::enter("query");
        let root_id = root.id();
        let res = st.cache.execute(&st.sess.db, st.sess.model.as_ref(), &sql);
        drop(root);
        let trace = rain_obs::take_subtree(root_id);
        let (out, event) = res?;
        (out, event, None, trace)
    } else {
        let (out, event) = st
            .cache
            .execute(&st.sess.db, st.sess.model.as_ref(), &sql)?;
        (out, event, None, None)
    };
    let stats = st.cache.stats();
    slot.publish_cache_stats(stats);
    // Park the capture (sampled or analyze) in the profile ring; slow
    // queries the sampler skipped still get a traceless slow-ring entry
    // (the latency is known, the trace can't be reconstructed after the
    // fact). While a sampling window is open here, *other* sessions'
    // untraced spans can record orphan records nobody will harvest —
    // drain the buffer when it crosses half capacity and no trace is
    // live, so always-on sampling never pins stale records.
    let latency_s = t_exec.elapsed().as_secs_f64();
    let slow = slot.is_slow_capture(latency_s);
    let captured = sampled_trace.or_else(|| analysis.as_ref().and_then(|(_, t)| t.clone()));
    if let Some(trace) = captured {
        state.profiles.push(
            "query",
            &slot.name,
            sql.clone(),
            latency_s,
            request_id.clone(),
            Some(trace),
            slow,
        );
    } else if slow {
        state.profiles.push(
            "query",
            &slot.name,
            sql.clone(),
            latency_s,
            request_id.clone(),
            None,
            true,
        );
    }
    if !rain_obs::enabled() && rain_obs::buffered_records() > rain_obs::MAX_RECORDS / 2 {
        rain_obs::clear();
    }
    let mut pairs = vec![
        ("result", output_to_json(&out)),
        ("cache", Json::str(event.as_str())),
        (
            "cache_stats",
            Json::obj(vec![
                ("hits", Json::Num(stats.hits as f64)),
                ("misses", Json::Num(stats.misses as f64)),
                ("invalidations", Json::Num(stats.invalidations as f64)),
            ]),
        ),
    ];
    if let Some((explain, trace)) = analysis {
        pairs.push(("explain", Json::str(explain)));
        pairs.push((
            "profile",
            match trace {
                Some(t) => trace_to_json(&t),
                None => Json::Null,
            },
        ));
    }
    Ok((200, Json::obj(pairs)))
}

fn complain(state: &ServerState, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let sql = str_field(&body, "sql")?;
    // Reject unparseable SQL up front (also yields the canonical key used
    // to merge complaints against the same statement).
    let key = QueryCache::normalize(&sql).map_err(ApiError::from)?;
    let mut complaints = Vec::new();
    if let Some(one) = body.get("complaint") {
        complaints.push(complaint_from_json(one)?);
    }
    if let Some(many) = body.get("complaints").and_then(Json::as_arr) {
        for c in many {
            complaints.push(complaint_from_json(c)?);
        }
    }
    if complaints.is_empty() {
        return Err(ApiError::bad_request(
            "provide 'complaint' or a non-empty 'complaints' array",
        ));
    }
    let slot = state.pool.get(name)?;
    let mut st = slot.lock();
    let n = complaints.len();
    let spec = st
        .sess
        .queries
        .iter_mut()
        .find(|q| QueryCache::normalize(&q.sql).as_deref() == Ok(key.as_str()));
    let (sql_out, total) = match spec {
        Some(q) => {
            q.complaints.extend(complaints);
            (q.sql.clone(), q.complaints.len())
        }
        None => {
            let mut q = rain_core::complaint::QuerySpec::new(sql);
            q.complaints = complaints;
            let out = (q.sql.clone(), q.complaints.len());
            st.sess.queries.push(q);
            out
        }
    };
    let n_queries = st.sess.queries.len();
    let generation = slot.bump_generation();
    drop(st);
    Ok((
        200,
        Json::obj(vec![
            ("sql", Json::str(sql_out)),
            ("added", Json::Num(n as f64)),
            ("total_complaints", Json::Num(total as f64)),
            ("queries", Json::Num(n_queries as f64)),
            ("generation", Json::Num(generation as f64)),
        ]),
    ))
}

fn debug_run(state: &ServerState, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
    let body = body_json(req)?;
    let (method, mut cfg) = run_request_from_json(&body)?;
    let request_id = body
        .get("request_id")
        .and_then(Json::as_str)
        .map(str::to_string);
    if req.query_flag("profile") {
        cfg.profile = true;
    }
    let slot = state.pool.get(name)?;
    // The session's sampling period governs iteration profiling unless
    // the request pins its own.
    if body.get("sample_every").is_none() {
        cfg.sample_every = slot.sample_every() as usize;
    }
    let id = state.jobs.submit_tagged(slot, method, cfg, request_id);
    Ok((
        202,
        Json::obj(vec![
            ("job", Json::Num(id as f64)),
            ("status", Json::str("queued")),
        ]),
    ))
}

fn job_status(state: &ServerState, id: &str) -> Result<(u16, Json), ApiError> {
    let id: u64 = id
        .parse()
        .map_err(|_| ApiError::bad_request("job ids are integers"))?;
    let info = state.jobs.info(id)?;
    let mut pairs = vec![
        ("job", Json::Num(id as f64)),
        ("session", Json::str(info.session)),
        ("status", Json::str(info.state.label())),
    ];
    if let Some(rid) = info.request_id {
        pairs.push(("request_id", Json::str(rid)));
    }
    match info.state {
        JobState::Done(report) => pairs.push(("report", report_to_json(&report))),
        JobState::Failed(msg) => pairs.push(("error", Json::str(msg))),
        _ => {}
    }
    Ok((
        200,
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
    ))
}
