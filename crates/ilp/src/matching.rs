//! Bipartite maximum matching (Hopcroft–Karp) and König minimum vertex
//! cover.
//!
//! TwoStep's presolve maps systems of join-disequality complaints — "this
//! pair of predictions must not be equal" — onto a bipartite conflict
//! graph. A minimum set of prediction changes that satisfies all pairs is
//! exactly a minimum vertex cover, which König's theorem reduces to
//! maximum matching. This gives the *exact* ILP optimum in `O(E√V)`
//! instead of exponential branch-and-bound.

/// A bipartite graph with `n_left`/`n_right` vertices and edges from left
/// to right.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Empty graph with the given sides.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteGraph {
            n_left,
            n_right,
            adj: vec![Vec::new(); n_left],
        }
    }

    /// Add an edge `(l, r)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.n_left && r < self.n_right, "edge out of range");
        self.adj[l].push(r);
    }

    /// Left side size.
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Right side size.
    pub fn n_right(&self) -> usize {
        self.n_right
    }
}

/// Maximum-matching result: `pair_left[l] = Some(r)` etc.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Matched partner per left vertex.
    pub pair_left: Vec<Option<usize>>,
    /// Matched partner per right vertex.
    pub pair_right: Vec<Option<usize>>,
    /// Matching size.
    pub size: usize,
}

/// Hopcroft–Karp maximum bipartite matching in `O(E√V)`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    const INF: usize = usize::MAX;
    let mut pair_left = vec![None; g.n_left];
    let mut pair_right = vec![None; g.n_right];
    let mut dist = vec![INF; g.n_left];
    let mut size = 0;

    loop {
        // BFS layering from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for l in 0..g.n_left {
            if pair_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &g.adj[l] {
                match pair_right[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmenting along the layering.
        fn try_augment(
            l: usize,
            g: &BipartiteGraph,
            dist: &mut [usize],
            pair_left: &mut [Option<usize>],
            pair_right: &mut [Option<usize>],
        ) -> bool {
            for &r in &g.adj[l] {
                let ok = match pair_right[r] {
                    None => true,
                    Some(l2) => {
                        dist[l2] == dist[l].wrapping_add(1)
                            && try_augment(l2, g, dist, pair_left, pair_right)
                    }
                };
                if ok {
                    pair_left[l] = Some(r);
                    pair_right[r] = Some(l);
                    return true;
                }
            }
            dist[l] = usize::MAX;
            false
        }
        for l in 0..g.n_left {
            if pair_left[l].is_none()
                && try_augment(l, g, &mut dist, &mut pair_left, &mut pair_right)
            {
                size += 1;
            }
        }
    }
    Matching {
        pair_left,
        pair_right,
        size,
    }
}

/// König's construction: a minimum vertex cover from a maximum matching.
/// Returns `(left_cover, right_cover)` index sets; their combined size
/// equals the matching size.
pub fn konig_min_vertex_cover(g: &BipartiteGraph) -> (Vec<usize>, Vec<usize>) {
    let m = hopcroft_karp(g);
    // Alternating reachability from unmatched left vertices.
    let mut vis_left = vec![false; g.n_left];
    let mut vis_right = vec![false; g.n_right];
    let mut stack: Vec<usize> = (0..g.n_left)
        .filter(|&l| m.pair_left[l].is_none())
        .collect();
    for &l in &stack {
        vis_left[l] = true;
    }
    while let Some(l) = stack.pop() {
        for &r in &g.adj[l] {
            if !vis_right[r] {
                vis_right[r] = true;
                if let Some(l2) = m.pair_right[r] {
                    if !vis_left[l2] {
                        vis_left[l2] = true;
                        stack.push(l2);
                    }
                }
            }
        }
    }
    // Cover = unvisited left ∪ visited right.
    let left: Vec<usize> = (0..g.n_left).filter(|&l| !vis_left[l]).collect();
    let right: Vec<usize> = (0..g.n_right).filter(|&r| vis_right[r]).collect();
    debug_assert_eq!(left.len() + right.len(), m.size, "König size mismatch");
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::RainRng;

    /// Brute-force minimum vertex cover size by bitmask enumeration
    /// (n_left + n_right ≤ ~16).
    fn brute_cover(g: &BipartiteGraph) -> usize {
        let edges: Vec<(usize, usize)> = (0..g.n_left())
            .flat_map(|l| g.adj[l].iter().map(move |&r| (l, r)))
            .collect();
        let total = g.n_left() + g.n_right();
        let mut best = total;
        for mask in 0u32..(1 << total) {
            let covers = edges
                .iter()
                .all(|&(l, r)| mask & (1 << l) != 0 || mask & (1 << (g.n_left() + r)) != 0);
            if covers {
                best = best.min(mask.count_ones() as usize);
            }
        }
        best
    }

    #[test]
    fn simple_matching() {
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 3);
    }

    #[test]
    fn star_graph_cover_is_center() {
        // One left vertex connected to 5 rights: cover = {left 0}.
        let mut g = BipartiteGraph::new(1, 5);
        for r in 0..5 {
            g.add_edge(0, r);
        }
        let (left, right) = konig_min_vertex_cover(&g);
        assert_eq!(left, vec![0]);
        assert!(right.is_empty());
    }

    #[test]
    fn cover_touches_every_edge() {
        let mut rng = RainRng::seed_from_u64(11);
        for _ in 0..30 {
            let nl = 1 + rng.below(5);
            let nr = 1 + rng.below(5);
            let mut g = BipartiteGraph::new(nl, nr);
            let mut edges = Vec::new();
            for l in 0..nl {
                for r in 0..nr {
                    if rng.bernoulli(0.4) {
                        g.add_edge(l, r);
                        edges.push((l, r));
                    }
                }
            }
            let (left, right) = konig_min_vertex_cover(&g);
            let lset: std::collections::HashSet<_> = left.iter().collect();
            let rset: std::collections::HashSet<_> = right.iter().collect();
            for (l, r) in &edges {
                assert!(
                    lset.contains(l) || rset.contains(r),
                    "edge ({l},{r}) uncovered"
                );
            }
            // König: cover size equals matching size (minimality).
            let m = hopcroft_karp(&g);
            assert_eq!(left.len() + right.len(), m.size);
        }
    }

    #[test]
    fn matching_size_equals_brute_cover() {
        let mut rng = RainRng::seed_from_u64(13);
        for _ in 0..10 {
            let nl = 1 + rng.below(4);
            let nr = 1 + rng.below(4);
            let mut g = BipartiteGraph::new(nl, nr);
            for l in 0..nl {
                for r in 0..nr {
                    if rng.bernoulli(0.5) {
                        g.add_edge(l, r);
                    }
                }
            }
            let m = hopcroft_karp(&g);
            assert_eq!(m.size, brute_cover(&g), "graph {g:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(4, 4);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 0);
        let (l, r) = konig_min_vertex_cover(&g);
        assert!(l.is_empty() && r.is_empty());
    }

    #[test]
    fn matching_is_consistent() {
        let mut g = BipartiteGraph::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                if (l + r) % 2 == 0 {
                    g.add_edge(l, r);
                }
            }
        }
        let m = hopcroft_karp(&g);
        for l in 0..4 {
            if let Some(r) = m.pair_left[l] {
                assert_eq!(m.pair_right[r], Some(l));
            }
        }
    }
}
