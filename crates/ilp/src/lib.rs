//! Optimization substrate for TwoStep (the paper uses Gurobi/CPLEX [23, 27];
//! we build the pieces ourselves).
//!
//! - [`lp`] — a dense two-phase primal **simplex** solver with Bland's
//!   anti-cycling rule, for the LP relaxations that bound the search.
//! - [`bb`] — an exact 0/1 **branch-and-bound** ILP solver with LP
//!   bounding, rounding-aware pruning for integral objectives, seeded
//!   branching order (this is how we reproduce "the solver opaquely picks
//!   one of the optima", §5.2.2 of the paper), and a node budget that
//!   reproduces the paper's 30-minute ILP timeouts on high-ambiguity
//!   instances.
//! - [`model`] — the problem-builder API shared by both.
//! - [`matching`] — Hopcroft–Karp bipartite maximum matching and the
//!   König minimum vertex cover, used by TwoStep's presolve to solve
//!   join-disequality complaint systems exactly at scale.

pub mod bb;
pub mod lp;
pub mod matching;
pub mod model;

pub use bb::{solve_ilp, BbConfig, IlpOutcome, IlpSolution};
pub use lp::{solve_lp, LpOutcome};
pub use matching::{hopcroft_karp, konig_min_vertex_cover, BipartiteGraph};
pub use model::{Constraint, IlpProblem, Sense};
